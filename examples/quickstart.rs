//! Quickstart: open a database, run transactions, query, survive a crash.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use esdb::core::{Database, EngineConfig};
use esdb::core::query::QueryEngine;
use esdb::staged::{AggFunc, CmpOp};

fn main() {
    // 1. Open an in-memory database with the default engine configuration
    //    (conventional 2PL execution, consolidation-array logging).
    let db = Database::open(EngineConfig::default());
    println!("engine config: {}", db.config().label());

    // 2. DDL: a table of accounts with two i64 columns (balance, flags).
    let accounts = db.create_table("accounts", 2).unwrap();

    // 3. ACID transactions via closures: commit on Ok, rollback on Err,
    //    automatic retry when chosen as a deadlock victim.
    db.execute(|txn| {
        for k in 0..10u64 {
            txn.insert(accounts, k, &[1_000, 0])?;
        }
        Ok(())
    })
    .expect("populate");

    // A transfer that maintains the total-balance invariant.
    db.execute(|txn| {
        let from = txn.read_for_update(accounts, 1)?;
        let to = txn.read_for_update(accounts, 2)?;
        txn.update(accounts, 1, &[from[0] - 250, from[1]])?;
        txn.update(accounts, 2, &[to[0] + 250, to[1]])?;
        Ok(())
    })
    .expect("transfer");

    println!("account 1 = {:?}", db.read_committed(accounts, 1).unwrap());
    println!("account 2 = {:?}", db.read_committed(accounts, 2).unwrap());

    // 4. An aborted transaction leaves no trace.
    let result = db.execute(|txn| {
        txn.update(accounts, 3, &[0, 0])?;
        txn.read(accounts, 999_999).map(|_| ()) // fails → whole txn rolls back
    });
    assert!(result.is_err());
    assert_eq!(db.read_committed(accounts, 3).unwrap()[0], 1_000);
    println!("aborted transaction rolled back cleanly");

    // 5. Analytics over the same tables: total balance, via the staged
    //    query engine (and the Volcano baseline agrees).
    let plan = db
        .scan_plan(accounts)
        .filter(1, CmpOp::Ge, 0) // col 1 = balance
        .aggregate(None, 1, AggFunc::Sum);
    let staged = db.query(&plan, QueryEngine::Staged { batch: 128 });
    let volcano = db.query(&plan, QueryEngine::Volcano);
    assert_eq!(staged, volcano);
    println!("total balance (staged == volcano): {}", staged[0][0]);

    // 6. Crash: volatile state is lost, the page store + durable log
    //    survive, ARIES-style recovery restores every committed change.
    let recovered = db.simulate_crash(false);
    assert_eq!(recovered.read_committed(accounts, 1).unwrap()[0], 750);
    assert_eq!(recovered.read_committed(accounts, 2).unwrap()[0], 1_250);
    println!("crash recovery: committed state intact");
}
