//! Conventional 2PL vs DORA on identical TATP and TPC-B request streams.
//!
//! Runs the same deterministic workload against both execution models and
//! prints per-transaction-type reports plus engine statistics. (On a
//! single-core host the absolute throughputs are close; the scalability gap
//! is what `cargo run -p esdb-bench --bin fig1_scaling` shows on the
//! simulator.)
//!
//! ```text
//! cargo run --release --example oltp_showdown
//! ```

use esdb::core::{Database, EngineConfig};
use esdb::workload::{Tatp, Tpcb, Workload};
use std::sync::Arc;

fn run(name: &str, cfg: EngineConfig, workload: &mut dyn Workload, threads: usize, txns: u64) {
    let db = Arc::new(Database::open(cfg));
    db.load_population(workload).expect("population load");
    let report = db.run_workload(workload, threads, txns);
    println!("--- {name} [{}] ---", db.config().label());
    print!("{report}");
    let wal = db.wal();
    println!(
        "  wal: buffer={} durable_bytes={}",
        wal.buffer_name(),
        wal.durable_lsn()
    );
    if let Some((commits, aborts)) = match db.config().execution {
        esdb::core::ExecutionModel::Conventional { .. } => {
            let s = db.txn_manager().stats();
            Some((s.commits, s.aborts))
        }
        _ => None,
    } {
        let locks = db.txn_manager().locks().stats();
        println!(
            "  txn: commits={commits} aborts={aborts}; locks: acq={} waits={} deadlocks={}",
            locks.acquisitions, locks.waits, locks.deadlocks
        );
    }
    println!();
}

fn main() {
    const THREADS: usize = 4;
    const TXNS: u64 = 2_000;

    println!("== TATP (read-mostly telecom mix, 10k subscribers) ==\n");
    run(
        "TATP / conventional",
        EngineConfig::conventional_baseline(),
        &mut Tatp::new(10_000, 42),
        THREADS,
        TXNS,
    );
    run(
        "TATP / DORA",
        EngineConfig::scalable(4),
        &mut Tatp::new(10_000, 42),
        THREADS,
        TXNS,
    );

    println!("== TPC-B (update-heavy debit/credit, hot branch rows) ==\n");
    run(
        "TPC-B / conventional",
        EngineConfig::conventional_baseline(),
        &mut Tpcb::new(4, 42),
        THREADS,
        TXNS,
    );
    run(
        "TPC-B / DORA",
        EngineConfig::scalable(4),
        &mut Tpcb::new(4, 42),
        THREADS,
        TXNS,
    );
}
