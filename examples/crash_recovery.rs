//! Crash-recovery walkthrough: winners, losers, and the durable log.
//!
//! Builds a bank, commits some transfers, leaves one transaction in flight,
//! then crashes with and without dirty-page steal and shows what ARIES-style
//! recovery restores in each case.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use esdb::core::{Database, EngineConfig};
use esdb::wal::recovery::analyze;

fn total(db: &Database, table: u32, accounts: u64) -> i64 {
    (0..accounts)
        .map(|k| db.read_committed(table, k).map(|r| r[0]).unwrap_or(0))
        .sum()
}

fn main() {
    const ACCOUNTS: u64 = 8;
    let db = Database::open(EngineConfig::conventional_baseline());
    let bank = db.create_table("bank", 1).unwrap();

    db.execute(|txn| {
        for k in 0..ACCOUNTS {
            txn.insert(bank, k, &[1_000])?;
        }
        Ok(())
    })
    .unwrap();

    // Committed transfers.
    for (from, to, amt) in [(0u64, 1u64, 100i64), (2, 3, 250), (4, 5, 50)] {
        db.execute(|txn| {
            let f = txn.read_for_update(bank, from)?;
            let t = txn.read_for_update(bank, to)?;
            txn.update(bank, from, &[f[0] - amt])?;
            txn.update(bank, to, &[t[0] + amt])?;
            Ok(())
        })
        .unwrap();
    }
    println!("before crash: total = {}", total(&db, bank, ACCOUNTS));
    assert_eq!(total(&db, bank, ACCOUNTS), 8_000);

    // An in-flight transaction at crash time: its records may reach the log
    // (and its dirty pages may be stolen), but it never commits.
    let mgr = db.txn_manager().clone();
    let mut in_flight = mgr.begin();
    in_flight.update(bank, 6, &[0]).unwrap(); // would vaporize 1000
    in_flight.insert(bank, 99, &[777]).unwrap();
    db.wal().wait_durable(db.wal().current_lsn()); // records ARE durable
    std::mem::forget(in_flight); // the crash: no rollback runs

    let records = db.wal().durable_records();
    let analysis = analyze(&records);
    println!(
        "durable log: {} records; winners={} losers={}",
        records.len(),
        analysis.winners.len(),
        analysis.losers.len()
    );

    // Case A: crash WITHOUT page steal (buffer pool lost, store stale).
    let recovered = db.simulate_crash(false);
    println!(
        "recovered (no steal):   total = {}  account6 = {:?}  key99 exists = {}",
        total(&recovered, bank, ACCOUNTS),
        recovered.read_committed(bank, 6).unwrap(),
        recovered.read_committed(bank, 99).is_ok(),
    );
    assert_eq!(total(&recovered, bank, ACCOUNTS), 8_000);
    assert_eq!(recovered.read_committed(bank, 6).unwrap(), vec![1_000]);
    assert!(recovered.read_committed(bank, 99).is_err());

    // Case B: crash WITH page steal — the loser's dirty pages hit the store
    // and must be rolled back from the before-images in the log.
    let recovered = db.simulate_crash(true);
    println!(
        "recovered (with steal): total = {}  account6 = {:?}  key99 exists = {}",
        total(&recovered, bank, ACCOUNTS),
        recovered.read_committed(bank, 6).unwrap(),
        recovered.read_committed(bank, 99).is_ok(),
    );
    assert_eq!(total(&recovered, bank, ACCOUNTS), 8_000);
    assert_eq!(recovered.read_committed(bank, 6).unwrap(), vec![1_000]);
    assert!(recovered.read_committed(bank, 99).is_err());

    println!("loser rolled back in both cases; money conserved");
}
