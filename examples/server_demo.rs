//! Serve a database over TCP, drive it with pipelined clients, read the
//! STATS counters, and shut down gracefully.
//!
//! Run with: `cargo run --release --example server_demo`

use esdb::core::{Database, EngineConfig};
use esdb::net::{run_load, Client, LoadConfig, Server, ServerConfig};
use esdb::workload::Tatp;
use std::sync::Arc;

fn main() {
    // An engine instance plus a TCP front door on an ephemeral port.
    let mut workload = Tatp::new(1_000, 7);
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    db.load_population(&workload).expect("population load");
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions: 8, ..ServerConfig::default() },
    )
    .expect("bind ephemeral port");
    println!("serving on {}", server.local_addr());

    // A short TATP burst: 2 connections, 500 transactions each, 8 in flight
    // per connection so commits batch into shared group-commit flushes.
    let report = run_load(
        server.local_addr(),
        &mut workload,
        &LoadConfig {
            connections: 2,
            txns_per_conn: 500,
            pipeline_depth: 8,
            connect_attempts: 10,
        },
    )
    .expect("load run");
    println!("\nclient-side report:\n{report}");

    // The server's own view, over the wire.
    let mut probe = Client::connect(server.local_addr()).expect("connect probe");
    let stats = probe.stats().expect("stats");
    println!("server-side STATS:");
    println!("  sessions: accepted={} shed={}", stats.sessions_accepted, stats.sessions_shed);
    println!("  txns:     executed={} committed={}", stats.txns_executed, stats.txns_committed);
    println!(
        "  wal:      flushes={} commits/flush={:.1} durable_lsn={}",
        stats.engine.wal_flushes,
        stats.engine.commits as f64 / stats.engine.wal_flushes.max(1) as f64,
        stats.engine.durable_lsn,
    );
    println!("\nsummary: {}", esdb::net::summarize(&report, &stats));

    // Graceful shutdown drains sessions and forces the log durable.
    server.shutdown();
    let wal = db.wal();
    assert!(wal.durable_lsn() >= wal.current_lsn());
    println!("shutdown complete; log durable to {}", wal.durable_lsn());
}
