//! Staged vs Volcano query execution over a star-schema-ish dataset.
//!
//! Loads a fact table and a dimension table, then runs a
//! join → filter → group-by query with both engines, sweeping the staged
//! packet size. Batch size 1 approximates Volcano's row-at-a-time behaviour;
//! larger packets amortize dispatch and keep each operator's code hot.
//!
//! ```text
//! cargo run --release --example staged_analytics
//! ```

use esdb::core::query::QueryEngine;
use esdb::core::{Database, EngineConfig};
use esdb::staged::{AggFunc, CmpOp};
use std::time::Instant;

fn main() {
    let db = Database::open(EngineConfig::default());
    let fact = db.create_table("sales", 3).unwrap(); // [region, amount, discount]
    let dim = db.create_table("regions", 1).unwrap(); // [population]

    const ROWS: u64 = 100_000;
    const REGIONS: u64 = 32;
    db.execute(|txn| {
        for r in 0..REGIONS {
            txn.insert(dim, r, &[(r as i64 + 1) * 10_000])?;
        }
        Ok(())
    })
    .expect("dim load");
    // Bulk-load the fact table in chunks to keep transactions bounded.
    for chunk in 0..(ROWS / 10_000) {
        db.execute(|txn| {
            for i in 0..10_000u64 {
                let k = chunk * 10_000 + i;
                let region = (k * 2_654_435_761) % REGIONS;
                txn.insert(fact, k, &[region as i64, (k % 500) as i64, (k % 7) as i64])?;
            }
            Ok(())
        })
        .expect("fact load");
    }

    // Revenue by region for populous regions, discounted sales excluded:
    //   dim ⋈ fact ON region, filter discount == 0, sum(amount) by region.
    // Scan rows are [key, cols...]: dim = [r, pop], fact = [k, region, amount, discount].
    let plan = db
        .scan_plan(dim)
        .filter(1, CmpOp::Ge, 100_000) // populous regions
        .hash_join(db.scan_plan(fact), 0, 1)
        .filter(5, CmpOp::Eq, 0) // discount == 0
        .aggregate(Some(0), 4, AggFunc::Sum)
        .sort(0);

    let t = Instant::now();
    let volcano = db.query(&plan, QueryEngine::Volcano);
    let volcano_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("volcano            : {volcano_ms:8.1} ms  ({} groups)", volcano.len());

    for batch in [1usize, 16, 256, 4_096] {
        let t = Instant::now();
        let staged = db.query(&plan, QueryEngine::Staged { batch });
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(staged, volcano, "engines must agree");
        println!("staged  batch={batch:<5}: {ms:8.1} ms");
    }

    let t = Instant::now();
    let parallel = db.query(&plan, QueryEngine::StagedParallel { batch: 1_024 });
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(parallel, volcano);
    println!("staged  parallel   : {ms:8.1} ms");

    println!("\nsample output (region, revenue):");
    for row in volcano.iter().take(5) {
        println!("  {row:?}");
    }
}
