//! A miniature of the keynote's headline figure, runnable in seconds:
//! TATP throughput vs simulated hardware contexts for the conventional
//! engine vs the "embarrassingly scalable" configuration.
//!
//! The full experiment set lives in `esdb-bench` (`fig1_scaling` etc.);
//! this example shows the simulator bridge API.
//!
//! ```text
//! cargo run --release --example cmp_scaling
//! ```

use esdb::core::{run_sim_workload, EngineConfig, SimRunConfig};
use esdb::workload::Tatp;

fn main() {
    let configs = [
        ("conventional/serial-log", EngineConfig::conventional_baseline()),
        ("dora/consolidated+elr", EngineConfig::scalable(64)),
    ];

    println!("{:>8} {:>28} {:>28}", "contexts", configs[0].0, configs[1].0);
    println!("{:>8} {:>14} {:>13} {:>14} {:>13}", "", "txn/Mcycle", "speedup", "txn/Mcycle", "speedup");

    let mut base = [0.0f64; 2];
    for contexts in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut row = format!("{contexts:>8}");
        for (i, (_, cfg)) in configs.iter().enumerate() {
            // Fresh deterministic workload per cell: every cell sees the
            // same request distribution.
            let mut workload = Tatp::new(100_000, 7);
            let report = run_sim_workload(&mut workload, cfg, &SimRunConfig::at_contexts(contexts));
            let tpmc = report.tpmc();
            if contexts == 1 {
                base[i] = tpmc;
            }
            row.push_str(&format!("{:>14.0} {:>12.1}x", tpmc, tpmc / base[i]));
        }
        println!("{row}");
    }

    println!(
        "\nShape check (the keynote's claim): the conventional engine's speedup\n\
         flattens as contexts grow — \"current parallelism methods are of bounded\n\
         utility\" — while the DORA + consolidated-log + ELR design keeps scaling."
    );
}
