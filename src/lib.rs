//! # esdb — Embarrassingly Scalable Database Systems
//!
//! Umbrella crate for the `esdb` workspace, a reproduction of the ICDE 2011
//! keynote *"Embarrassingly scalable database systems"* (A. Ailamaki): a
//! multicore-scalable main-memory storage manager with data-oriented
//! transaction execution, consolidation-array logging, staged query
//! processing, and a deterministic chip-multiprocessor simulator for
//! scalability studies beyond the host's core count.
//!
//! Most users want [`esdb_core`], re-exported here as [`core`], which exposes
//! the [`core::Database`] facade. The individual subsystems are also
//! re-exported for direct use.
//!
//! ```
//! use esdb::core::{Database, EngineConfig};
//!
//! let db = Database::open(EngineConfig::default());
//! let accounts = db.create_table("accounts", 2).unwrap();
//! db.execute(|txn| {
//!     txn.insert(accounts, 1, &[100, 0])?;
//!     txn.insert(accounts, 2, &[250, 0])?;
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(db.read_committed(accounts, 1).unwrap()[0], 100);
//! ```

pub use esdb_core as core;
pub use esdb_dora as dora;
pub use esdb_lock as lock;
pub use esdb_net as net;
pub use esdb_obs as obs;
pub use esdb_rebal as rebal;
pub use esdb_repl as repl;
pub use esdb_shard as shard;
pub use esdb_sim as sim;
pub use esdb_staged as staged;
pub use esdb_storage as storage;
pub use esdb_sync as sync;
pub use esdb_txn as txn;
pub use esdb_wal as wal;
pub use esdb_workload as workload;
