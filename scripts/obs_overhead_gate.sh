#!/usr/bin/env bash
# Observability must be (nearly) free: tab3_server loopback throughput with
# esdb-obs enabled must stay within 5% of a build with it compiled out
# (RUSTFLAGS="--cfg obs_disabled", separate target dir so the two builds
# never thrash each other's caches). Seeded TATP, depth-4 pipeline,
# best-of-N per variant to tame single-CPU scheduler noise.
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=${OBS_GATE_RUNS:-3}
TOLERANCE=${OBS_GATE_TOLERANCE:-0.95}
export TAB3_CONNS=${OBS_GATE_CONNS:-2}
export TAB3_TXNS=${OBS_GATE_TXNS:-400}
export TAB3_SUBSCRIBERS=${OBS_GATE_SUBSCRIBERS:-500}
export TAB3_DEPTHS=4
# tab3_server also emits BENCH_tab3_server.json, and with ESDB_BENCH_DIR
# unset that lands in the repo root — overwriting the committed regression
# baseline with this gate's depth-4-only smoke numbers. Park it in target/.
export ESDB_BENCH_DIR=target/obs-gate
mkdir -p "$ESDB_BENCH_DIR"

echo "-- building tab3_server, obs enabled --"
cargo build --release -q -p esdb-bench --bin tab3_server
echo "-- building tab3_server, obs compiled out --"
RUSTFLAGS="--cfg obs_disabled" CARGO_TARGET_DIR=target/obs-off \
    cargo build --release -q -p esdb-bench --bin tab3_server

best_tps() {
    local bin=$1 best=0 tps
    for _ in $(seq "$RUNS"); do
        tps=$("$bin" | awk -F'\t' '$1 == "server/depth-4" { print $4 }')
        if [ -z "$tps" ]; then
            echo "no server/depth-4 row in $bin output" >&2
            exit 1
        fi
        best=$(awk -v a="$best" -v b="$tps" 'BEGIN { print (b > a) ? b : a }')
    done
    echo "$best"
}

on=$(best_tps target/release/tab3_server)
off=$(best_tps target/obs-off/release/tab3_server)
echo "obs-enabled best-of-$RUNS: $on tps; obs-disabled best-of-$RUNS: $off tps"
awk -v on="$on" -v off="$off" -v tol="$TOLERANCE" 'BEGIN {
    if (on < tol * off) {
        printf "FAIL: obs overhead exceeds budget (enabled %.0f < %.2f x disabled %.0f)\n", on, tol, off
        exit 1
    }
    printf "OK: enabled/disabled = %.3f (>= %.2f)\n", on / off, tol
}'
