#!/usr/bin/env bash
# Runs the headline benchmark tables at CI-smoke sizes and writes their
# machine-readable BENCH_<name>.json results into the given directory
# (default bench_out). Two callers:
#
#   scripts/ci.sh            — writes to bench_out/, then gates the fresh
#                              numbers against the committed snapshots with
#                              bench_regress;
#   baseline refresh         — run the FULL scripts/ci.sh on the CI box,
#                              then `cp bench_out/BENCH_*.json .` and commit.
#                              Don't regenerate the baseline with a bare
#                              `scripts/bench_tables.sh .` on an idle box:
#                              CI's fresh numbers are measured under the
#                              pipeline's ambient load, and an idle-box
#                              baseline sits systematically above them.
#
# Knob values here are the single source of truth: fresh runs and committed
# snapshots must be generated with identical sizes or the diff is noise.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-bench_out}"
mkdir -p "$out"

echo "== bench: tab3_server (TATP in-process vs wire) =="
TAB3_CONNS=2 TAB3_TXNS=4000 TAB3_SUBSCRIBERS=2000 TAB3_REPS=3 \
    ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin tab3_server

echo "== bench: tab_repl (read offload onto one replica + commit modes) =="
TABR_READERS=2 TABR_READS=4000 TABR_WRITES=500 TABR_REPLICAS=0,1 TABR_REPS=3 TABR_COMMITS=4000 \
    ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin tab_repl

echo "== bench: tab_htap (follower OLAP vs primary write throughput) =="
TABH_WRITERS=2 TABH_WRITES=2000 TABH_REPS=3 \
    ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin tab_htap

echo "== bench: tab_rebal (foreground writes ± a live slot migration) =="
TABREB_WRITERS=2 TABREB_WRITES=20000 TABREB_REPS=3 \
    ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin tab_rebal

echo "== bench: tab_shard (sharded TPC-B, 1/2/4 shards x 0/10/50% cross) =="
ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin tab_shard

echo "== bench: tab1_engine (native engine matrix) =="
TAB1_TXNS=5000 TAB1_REPS=3 \
    ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin tab1_engine

echo "== bench: fig6_breakdown (wait shares: measured threads + modeled contexts) =="
FIG6_THREADS=1,2,4 FIG6_CONTEXTS=2,8,32 FIG6_TXNS=2000 FIG6_REPS=3 \
    ESDB_BENCH_DIR="$out" \
    cargo run --release -p esdb-bench --bin fig6_breakdown
