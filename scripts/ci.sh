#!/usr/bin/env bash
# CI gate for esdb: tier-1 correctness plus a fast smoke of the experiment
# binaries that exercise the full stack (simulator sweep + TCP server).
#
# Tier 1 (must stay green): release build + full test suite.
# Smoke (seconds, not minutes): reduced fig1 scaling sweep and a short
# loopback tab3_server run, both via the env knobs the binaries expose.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build =="
cargo build --release

echo "== tier 1: tests =="
cargo test -q

echo "== smoke: fig1_scaling (reduced sweep) =="
FIG1_CONTEXTS="1,4" FIG1_SUBSCRIBERS=1000 \
    cargo run --release -p esdb-bench --bin fig1_scaling

echo "== smoke: checker (300 seeded schedules + mutation detection) =="
# Clean sweep over ~300 deterministic schedules plus one chaos-mutation run
# that must be caught with a replayable shrunk trace. Release mode keeps the
# whole stage well under a minute.
CHECK_SCHEDULES=300 cargo test --release -q -p esdb-check --test check_engine \
    clean_engine_passes_seeded_schedules
cargo test --release -q -p esdb-check --test check_engine \
    detects_early_lock_release_mutation

echo "== smoke: crash_torture (seeded, reduced iterations) =="
CRASH_ITERS=10 CRASH_SEED=42 CRASH_TXNS=50 \
    cargo run --release -p esdb-bench --bin crash_torture

echo "== gate: obs overhead (tab3 loopback, depth-4, enabled within 5% of compiled-out) =="
scripts/obs_overhead_gate.sh

echo "== smoke: replication (loopback primary + replica, TPC-B burst, RYW) =="
# The repl_net integration test is the smoke: snapshot bootstrap over TCP, a
# TPC-B burst shipped live, per-table content equality, read-your-writes
# honored under a commit token, and feed survival across a server bounce.
cargo test --release -q -p esdb-repl --test repl_net

echo "== smoke: failover (quorum commit, fencing, promotion torture matrix) =="
# failover_torture sweeps {primary crash, follower crash, partition, old
# primary returns} x {before ship, after ship/before ack, after quorum} x 3
# seeds (36 seeded rounds) plus the double-promotion split-brain scenario;
# the oracle asserts no quorum-acked commit is lost and no divergent commit
# survives. net_failover covers the same machinery at the wire level
# (typed QuorumTimeout/Fenced frames, stalled-peer timeout, dead-feed reads).
cargo test --release -q -p esdb-repl --test failover_torture
cargo test --release -q -p esdb-net --test net_failover

echo "== smoke: reactor scale (tab3 loopback at 1 and 2 reactors + reduced herd) =="
# The same tab3 loopback run pinned to one reactor and then two: numbers
# may differ, behavior may not — every row must complete with zero failures
# however sessions shard across event loops. The reduced net_scale run then
# holds a 300-connection idle herd against an active session (p99 bounded)
# and drains pipelined in-flight txns through a shutdown. reactor_sm pins
# the nonblocking decoder's split-point properties. The herd row here is
# smoke-sized; the committed 1000-connection snapshot row comes from
# bench_tables.sh below.
TAB3_CONNS=2 TAB3_TXNS=1000 TAB3_SUBSCRIBERS=1000 TAB3_REPS=1 \
    TAB3_REACTORS=1 TAB3_MAX_CONNS=300 ESDB_BENCH_DIR=bench_out/reactor_smoke \
    cargo run --release -q -p esdb-bench --bin tab3_server
TAB3_CONNS=2 TAB3_TXNS=1000 TAB3_SUBSCRIBERS=1000 TAB3_REPS=1 \
    TAB3_REACTORS=2 TAB3_MAX_CONNS=300 ESDB_BENCH_DIR=bench_out/reactor_smoke \
    cargo run --release -q -p esdb-bench --bin tab3_server
NET_SCALE_CONNS=300 cargo test --release -q -p esdb-net --test net_scale
cargo test --release -q -p esdb-net --test reactor_sm

echo "== smoke: htap (follower OLAP under primary writes, index=scan + token-pinned query) =="
# Reduced tab_htap run (<10 s): one rep, small burst. The run itself asserts
# the correctness cells — every index-assisted probe equal to its full-scan
# twin, and a commit-token-pinned analytical query served by the follower.
TABH_WRITERS=2 TABH_WRITES=500 TABH_REPS=1 ESDB_BENCH_DIR=bench_out/htap_smoke \
    cargo run --release -q -p esdb-bench --bin tab_htap

echo "== smoke: sharding (2-shard loopback cluster, 2PC burst, coordinator crash + recover) =="
# The shard_net integration test is the smoke: two shard servers over TCP, a
# mixed single/cross-shard TPC-B burst through the router, one cross-shard
# transaction abandoned in its in-doubt window, a coordinator crash, and
# wire-protocol resolution — then cross-shard conservation. Seconds, not
# minutes.
cargo test --release -q -p esdb-shard --test shard_net

echo "== smoke: rebalancing (crash-torture matrix + wire-level migration) =="
# migration_torture sweeps {coordinator, source, dest} crashes x {copy,
# catch-up, fence, after cutover} x 3 seeds against the migration oracle
# (no lost/duplicated/ghost rows, no dual ownership, writes blocked only
# during the fence), plus in-doubt-2PC resolution at the fence and the
# blocked-writer -> WrongShard -> retry-to-dest path. rebal_net runs a
# live migration under wire traffic with a stale client recovering
# through the typed refusal + RoutingSnapshot refresh.
cargo test --release -q -p esdb-rebal --test migration_torture
cargo test --release -q -p esdb-rebal --test rebal_net

echo "== bench: headline tables (fresh BENCH_*.json into bench_out/) =="
scripts/bench_tables.sh bench_out

echo "== gate: bench regression (fresh numbers vs committed snapshots) =="
# The tool's contract is a 10% band, but this runner is a single-vCPU
# microVM whose absolute throughput drifts with host load; 35% catches
# real collapses without flaking on steal-time. Tighten on dedicated
# hardware. tpmc comes from the deterministic CMP simulator (fig6b), so it
# is gated alongside the throughput family — it cannot flake on load.
# commit_tps/write_tps (tab_repl) join the gate: their cells run 1-4
# loopback connections, which a single vCPU schedules stably, and they are
# the rows a reactor/ship-loop regression would show up in first. Still
# ungated (see EXPERIMENTS.md "What is gated"): tab1/fig6's measured
# engine_tps cells — the consolidation-array cells are bimodal under
# single-vCPU preemption (3-5x swings that survive best-of-N) — and the
# latency-family cells (p50_us, lag_p99_bytes), where lower-is-better
# inverts the gate's drop test and host jitter dominates at these sizes.
# tab_htap's deterministic cells join the gate: degradation_ratio (primary
# tps while a zero-CPU thread pins the follower's apply gate for the whole
# burst, over the unpinned baseline — the pin costs no CPU, so the ratio
# isolates commit-path coupling from single-vCPU time-sharing; clamped at
# 1.0 since a pin can only help on a shared core) and index_fullscan_match
# (exactly 1.0 unless an index-assisted query diverged from its full-scan
# twin). The busy-OLAP olap_ratio and measured primary_tps/olap_qps cells
# stay ungated context. tab_rebal joins the gate on the same terms:
# degradation_ratio (foreground tps while a full live slot migration
# completes during the burst, over the no-migration baseline — the
# catch-up pump sleeps between rounds, so the ratio isolates migration
# coupling from time-sharing; clamped at 1.0) and fence_bound_ok (1.0 iff
# the write-blocked fence+cutover window held its 250 ms bound — a
# boolean, so any flip to 0.0 is a 100% drop and always trips the band).
# The measured fence_ms/copy_rows_per_s/catchup_lag_bytes cells stay
# ungated context.
BENCH_NEW_DIR=bench_out BENCH_GATE_PCT=35 \
    BENCH_GATE_METRICS="tps,read_tps,write_tps,commit_tps,tpmc,degradation_ratio,index_fullscan_match,fence_bound_ok" \
    cargo run --release -p esdb-bench --bin bench_regress

echo "== ci: all green =="
