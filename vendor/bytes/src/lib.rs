//! Offline stand-in for `bytes`, providing the [`Buf`]/[`BufMut`] subset
//! esdb's codecs use: little-endian integer reads on `&[u8]` cursors and
//! little-endian integer writes on `Vec<u8>`.
//!
//! Like the real crate, `get_*` panics on underflow — callers that face
//! untrusted input (the network wire codec) must length-check before
//! reading, exactly as they would against the real `bytes`.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current readable contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for encoded bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrip() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEADBEEF);
        out.put_u64_le(u64::MAX - 1);
        out.put_i64_le(-42);
        let mut buf = out.as_slice();
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEADBEEF);
        assert_eq!(buf.get_u64_le(), u64::MAX - 1);
        assert_eq!(buf.get_i64_le(), -42);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
