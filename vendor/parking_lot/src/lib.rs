//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *API subset it actually uses* — `Mutex`, `RwLock`, and their guards,
//! with parking_lot's panic-free (non-poisoning) signatures. Poisoned std
//! locks are transparently recovered, which matches parking_lot's behavior
//! of not propagating poisoning.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock with parking_lot's non-poisoning signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
