//! Offline stand-in for `criterion`, covering the API subset esdb's benches
//! use: `Criterion`, benchmark groups with `sample_size`/`warm_up_time`/
//! `measurement_time`, `bench_function`/`bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of the real crate's statistical sampling it runs a short warm-up
//! followed by a bounded timed loop and prints median-free mean ns/iter —
//! enough to compare alternatives on one host, cheap enough that building
//! and running benches under `cargo test` stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark (kept deliberately small).
const MEASURE_BUDGET: Duration = Duration::from_millis(40);
const WARMUP_BUDGET: Duration = Duration::from_millis(5);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbench group: {name}");
        BenchmarkGroup { group: name.to_string() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one("", name, f);
    }
}

/// A named set of benchmarks sharing display configuration.
pub struct BenchmarkGroup {
    group: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; sampling is fixed-budget here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is fixed-budget here.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement is fixed-budget here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(&self.group, &name.to_string(), f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.group, &id.to_string(), |b| f(b, input));
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` within the measurement budget.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        // Check the clock every batch, not every iteration, so sub-ns
        // operations aren't dominated by `Instant::now` overhead.
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..64 {
                black_box(f());
            }
            iters += 64;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(group: &str, name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iters == 0 {
        println!("  {label:<48} (no iterations recorded)");
    } else {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("  {label:<48} {ns:>12.1} ns/iter ({} iters)", b.iters);
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(10).warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
        assert!(ran);
    }
}
