//! Offline stand-in for `proptest`: a deterministic mini property-testing
//! framework covering the API subset esdb's tests use.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! this reimplementation: `proptest!`, `prop_oneof!`, `prop_assert*!`,
//! `Strategy` with `prop_map`/`boxed`, integer-range and tuple strategies,
//! `any::<T>()`, `Just`, `prop::collection::vec`, and `proptest::bool::ANY`.
//!
//! Differences from the real crate, by design:
//! * No shrinking — a failing case panics with its deterministic case index,
//!   which is enough to replay (`TestRng` is seeded from test name + index).
//! * `prop_assert*!` panic instead of returning `Err`, so failures surface
//!   as ordinary test panics.

/// Deterministic RNG (SplitMix64) seeding each generated case.
pub mod test_runner {
    /// Per-case deterministic random source.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds a generator from the test path and case index, so every
        /// run of the suite explores the same cases.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng(h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)))
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Runner configuration (cases per property).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Prints the failing case index if the property body panics, so the
    /// deterministic case can be replayed under a debugger.
    pub struct CaseGuard<'a> {
        /// Test path being run.
        pub test_path: &'a str,
        /// Case index being run.
        pub case: u32,
    }

    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: property {} failed at deterministic case {}",
                    self.test_path, self.case
                );
            }
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternative strategies (see `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over `alternatives` (must be nonempty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` — full-range arbitrary values.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding either boolean uniformly.
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform `bool` strategy.
    pub const ANY: BoolAny = BoolAny;
}

/// Namespaced strategies (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length bounds for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            start: usize,
            end: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { start: n, end: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { start: r.start, end: r.end }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { start: *r.start(), end: *r.end() + 1 }
            }
        }

        /// Strategy for `Vec<E::Value>` with length drawn from `size`.
        pub struct VecStrategy<E> {
            element: E,
            size: SizeRange,
        }

        /// Vector of values from `element`, length within `size`.
        pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy { element, size: size.into() }
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub use crate::bool;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn` runs its body over deterministic
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let _guard = $crate::test_runner::CaseGuard { test_path, case };
                let mut rng = $crate::test_runner::TestRng::for_case(test_path, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Get(u64),
        Put(u64, i64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..10).prop_map(Op::Get),
            (0u64..10, -5i64..5).prop_map(|(k, v)| Op::Put(k, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -50i64..50, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-50..50).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(0i64..3, 4)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|x| (0..3).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(ops in prop::collection::vec(arb_op(), 1..20), b in crate::bool::ANY) {
            prop_assert!(!ops.is_empty());
            prop_assert!(b || !b);
            for op in ops {
                match op {
                    Op::Get(k) => prop_assert!(k < 10),
                    Op::Put(k, v) => {
                        prop_assert!(k < 10);
                        prop_assert!((-5..5).contains(&v));
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..10).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..10).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn just_yields_value() {
        use crate::strategy::{Just, Strategy};
        let mut rng = crate::test_runner::TestRng::for_case("just", 0);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
