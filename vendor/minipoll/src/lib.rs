//! Offline stand-in for a `mio`/`polling`-style readiness poller.
//!
//! The build container has no registry access, so — like the other `vendor/`
//! stubs — this crate reimplements exactly the API subset the workspace
//! uses: register a raw fd with a token and an interest set, block for
//! readiness events with a timeout, and wake the blocked poller from another
//! thread.
//!
//! On Linux it is a thin wrapper over **epoll**, declared through
//! `extern "C"` against the libc symbols that `std` already links — no new
//! dependency, which is the whole point of the stub. Everywhere else a
//! degraded level-triggered fallback reports every registered fd as ready
//! after a short capped sleep; callers that treat readiness as a *hint*
//! (retrying `WouldBlock` reads/writes, as the esdb reactor does) stay
//! correct, just less efficient.
//!
//! Events are **level-triggered** in both backends: a socket with unread
//! bytes keeps reporting readable. The reactor's contract is therefore
//! "drain until `WouldBlock`", never "count wakeups".

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of a request/response session.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Readable and writable — armed while an outbox has pending bytes.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness event: which registration fired and how.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer hangup/error: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Direct `extern "C"` declarations against the libc that `std` links.
    use std::os::raw::c_int;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
}

/// A readiness poller over raw fds.
///
/// Linux: an epoll instance. Fallback: a registration table whose `wait`
/// sleeps (capped) and then reports everything ready — level-triggered
/// correctness for `WouldBlock`-tolerant callers, without the syscalls.
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: i32,
    #[cfg(not(target_os = "linux"))]
    registered: std::sync::Mutex<Vec<(i32, u64, Interest)>>,
    woken: AtomicBool,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates a poller.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd, woken: AtomicBool::new(false) })
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, interest: Option<Interest>) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.map_or(0, |i| {
                let mut bits = sys::EPOLLRDHUP;
                if i.readable {
                    bits |= sys::EPOLLIN;
                }
                if i.writable {
                    bits |= sys::EPOLLOUT;
                }
                bits
            }),
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with `interest`.
    pub fn add(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, Some(interest))
    }

    /// Changes an existing registration's interest set.
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, Some(interest))
    }

    /// Removes a registration. Safe to call for an fd about to be closed.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, None)
    }

    /// Blocks until readiness events arrive, `timeout` expires, or
    /// [`Poller::notify`] was called. Appends into `events` (cleared first).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        if self.woken.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs request never becomes a busy spin at 0ms.
            Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as i32,
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    /// Creates a poller (fallback: registration table, no kernel object).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { registered: std::sync::Mutex::new(Vec::new()), woken: AtomicBool::new(false) })
    }

    /// Registers `fd` under `token` with `interest`.
    pub fn add(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.registered.lock().unwrap().push((fd, token, interest));
        Ok(())
    }

    /// Changes an existing registration's interest set.
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        let mut reg = self.registered.lock().unwrap();
        for slot in reg.iter_mut() {
            if slot.0 == fd {
                *slot = (fd, token, interest);
                return Ok(());
            }
        }
        reg.push((fd, token, interest));
        Ok(())
    }

    /// Removes a registration.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.registered.lock().unwrap().retain(|&(f, _, _)| f != fd);
        Ok(())
    }

    /// Degraded wait: sleep up to `timeout` (capped at 5ms so readiness is
    /// never starved), then report every registered fd as ready per its
    /// interest. Correct for callers that tolerate `WouldBlock`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        if !self.woken.swap(false, Ordering::AcqRel) {
            let cap = Duration::from_millis(5);
            std::thread::sleep(timeout.map_or(cap, |t| t.min(cap)));
            self.woken.store(false, Ordering::Release);
        }
        for &(_, token, interest) in self.registered.lock().unwrap().iter() {
            events.push(Event { token, readable: interest.readable, writable: interest.writable });
        }
        Ok(())
    }
}

impl Poller {
    /// Marks the poller as woken: the next (or current) `wait` returns
    /// promptly with whatever is ready. Used by [`Waker`]; also callable
    /// directly for same-thread "skip the next sleep" hints.
    pub fn set_woken(&self) {
        self.woken.store(true, Ordering::Release);
    }
}

/// Cross-thread wakeup for a [`Poller`] blocked in `wait`.
///
/// Built on a nonblocking `UnixStream` pair (std-portable on unix): the read
/// end is registered with the poller under a caller-chosen token, the write
/// end is cloned into producer threads. On non-unix platforms the fallback
/// poller's capped sleep bounds wake latency instead and `Waker::wake` only
/// sets the woken flag.
pub struct Waker {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    /// Creates a waker and registers its read end under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        use std::os::unix::io::AsRawFd;
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poller.add(rx.as_raw_fd(), token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Wakes the poller. Never blocks; a full pipe already guarantees a
    /// pending wakeup, so `WouldBlock` is success.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drains pending wake bytes; call when the waker token fires.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// A clonable handle that can wake from other threads.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle { tx: self.tx.try_clone()? })
    }
}

#[cfg(not(unix))]
impl Waker {
    /// Creates a waker (fallback: flag only; the capped sleep bounds latency).
    pub fn new(_poller: &Poller, _token: u64) -> io::Result<Waker> {
        Ok(Waker {})
    }

    /// Wakes the poller (flag only on this platform).
    pub fn wake(&self) {}

    /// Drains pending wake bytes (no-op on this platform).
    pub fn drain(&self) {}

    /// A clonable handle that can wake from other threads.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle {})
    }
}

/// Clonable cross-thread wake handle (see [`Waker::handle`]).
#[derive(Debug)]
pub struct WakeHandle {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
}

impl WakeHandle {
    /// Wakes the poller this handle's waker is registered with.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

impl Clone for WakeHandle {
    fn clone(&self) -> Self {
        #[cfg(unix)]
        {
            WakeHandle { tx: self.tx.try_clone().expect("clone wake handle") }
        }
        #[cfg(not(unix))]
        {
            WakeHandle {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[cfg(unix)]
    #[test]
    fn readable_event_fires_on_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(sock.as_raw_fd(), 7, Interest::READABLE).unwrap();

        // Nothing to read yet: a short wait times out empty.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        #[cfg(target_os = "linux")]
        assert!(events.is_empty(), "no bytes, no event");

        peer.write_all(b"x").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readable event never fired");
        }
        let mut buf = [0u8; 8];
        let sock_ref = &sock;
        assert_eq!({ sock_ref }.read(&mut buf).unwrap(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn waker_interrupts_a_long_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 0).unwrap();
        let handle = waker.handle().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        // A 5s wait must be cut short by the wake.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            if events.iter().any(|e| e.token == 0) || Instant::now() >= deadline {
                break;
            }
        }
        assert!(start.elapsed() < Duration::from_secs(4), "wake did not interrupt the wait");
        waker.drain();
        t.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn write_interest_toggles_via_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _peer = TcpStream::connect(addr).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(sock.as_raw_fd(), 3, Interest::READABLE).unwrap();
        poller.modify(sock.as_raw_fd(), 3, Interest::BOTH).unwrap();
        // An idle socket with buffer space is immediately writable.
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
            if events.iter().any(|e| e.token == 3 && e.writable) {
                break;
            }
            assert!(Instant::now() < deadline, "writable event never fired");
        }
        poller.delete(sock.as_raw_fd()).unwrap();
    }
}
