//! Offline stand-in for `crossbeam`, providing the `channel` subset esdb
//! uses: `bounded`/`unbounded` MPMC channels with blocking `send`/`recv`.
//!
//! The build container has no access to crates.io; this implementation is a
//! plain `Mutex` + `Condvar` queue. It favors obvious correctness over the
//! real crate's lock-free performance — executors and stages exchange
//! batched packages, so channel overhead is not on the measured hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    fn shared<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full. Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.capacity.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .0
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value, blocking while the channel is empty.
        /// Fails only when the channel is drained and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Returns `true` if the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .is_empty()
        }

        /// Returns `true` if every sender has been dropped.
        pub fn is_disconnected(&self) -> bool {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders
                == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_when_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_when_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let h = std::thread::spawn(move || tx.send(3).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            h.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn multi_consumer_partitions_items() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
                if let Ok(v) = rx2.try_recv() {
                    got.push(v);
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }
    }
}
