//! Property tests for the log-bucketed histogram: the algebra the
//! observability layer leans on (mergeability, monotone quantiles,
//! conservative bucketing) must hold for arbitrary inputs, not just the
//! hand-picked unit-test values.

use esdb_obs::{bucket_index, bucket_lower_bound, Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;

fn values() -> BoxedStrategy<Vec<u64>> {
    // Mix small values (dense low buckets) with full-range ones so the
    // tests exercise both ends of the bucket table.
    prop::collection::vec(
        prop_oneof![0u64..1024, any::<u64>()],
        0..64,
    )
    .boxed()
}

fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let (sa, sb) = (snap(&a), snap(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        // (a ∪ b) ∪ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ∪ (b ∪ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_never_loses_counts(a in values(), b in values()) {
        let mut merged = snap(&a);
        merged.merge(&snap(&b));
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        let bucket_total: u64 = merged.buckets.iter().sum();
        prop_assert_eq!(bucket_total, merged.count);
    }

    #[test]
    fn quantiles_are_monotone_in_q(vs in values()) {
        let s = snap(&vs);
        let qs = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(
                s.quantile(pair[0]) <= s.quantile(pair[1]),
                "q{} = {} > q{} = {}",
                pair[0], s.quantile(pair[0]), pair[1], s.quantile(pair[1]),
            );
        }
    }

    #[test]
    fn quantile_never_exceeds_any_recorded_ceiling(vs in values()) {
        // A quantile is reported as its bucket's lower bound, so it can never
        // exceed the largest recorded value.
        if let Some(&max) = vs.iter().max() {
            let s = snap(&vs);
            for q in [0.5, 0.95, 0.99, 1.0] {
                prop_assert!(s.quantile(q) <= max);
            }
        }
    }

    #[test]
    fn recorded_values_never_fall_below_their_bucket_lower_bound(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v, "bucket {} lb {} > {}", i, bucket_lower_bound(i), v);
        // ...and below the next bucket's lower bound (bucketing is a partition).
        if i + 1 < BUCKETS {
            prop_assert!(v < bucket_lower_bound(i + 1));
        }
    }

    #[test]
    fn snapshot_matches_atomic_totals(vs in values()) {
        let s = snap(&vs);
        prop_assert_eq!(s.count, vs.len() as u64);
        // The atomic sum wraps on overflow (fetch_add semantics).
        let expected_sum = vs.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(s.sum, expected_sum);
    }
}
