//! Wait-class accounting: scoped timers that attribute a transaction's wall
//! time to the reason it was not making progress.
//!
//! The honesty rules that make `sum(components) ≤ wall_clock` hold:
//!
//! 1. **Timers are thread-local and top-level-only.** A [`WaitTimer`] opened
//!    while another is live on the same thread (e.g. a latch spin inside a
//!    log wait) records nothing — the enclosing timer already owns that
//!    interval. Counted intervals on a thread are therefore disjoint.
//! 2. **Useful time is the remainder.** [`profile_scope`] measures wall
//!    clock around the closure and defines
//!    `useful = wall − sum(waits recorded inside)`, saturating at zero, so
//!    the profile can never claim more time than actually passed.
//!
//! Everything here compiles to no-ops under `RUSTFLAGS="--cfg obs_disabled"`
//! (the overhead-gate build); callers never need their own `#[cfg]`.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Why a thread was not doing useful work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum WaitClass {
    /// Blocked in the lock manager on a logical row lock held by another
    /// transaction.
    LockWait = 0,
    /// Spinning on a contended latch (physical short-term mutual exclusion).
    LatchSpin = 1,
    /// Waiting on the log subsystem outside commit: the WAL flush a page
    /// steal forces, or the durability wait an ELR commit defers.
    LogWait = 2,
    /// Retry backoff after a transient storage-device error.
    IoRetry = 3,
    /// Waiting for the commit record to become durable (group-commit flush).
    CommitFlush = 4,
}

/// Number of wait classes.
pub const WAIT_CLASSES: usize = 5;

impl WaitClass {
    /// All classes, in `repr` order.
    pub const ALL: [WaitClass; WAIT_CLASSES] = [
        WaitClass::LockWait,
        WaitClass::LatchSpin,
        WaitClass::LogWait,
        WaitClass::IoRetry,
        WaitClass::CommitFlush,
    ];

    /// Stable lower-snake name (column headers, wire format docs).
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::LockWait => "lock_wait",
            WaitClass::LatchSpin => "latch_spin",
            WaitClass::LogWait => "log_wait",
            WaitClass::IoRetry => "io_retry",
            WaitClass::CommitFlush => "commit_flush",
        }
    }
}

/// Where one span of wall time went, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitProfile {
    /// Time not attributed to any wait class.
    pub useful: u64,
    /// See [`WaitClass::LockWait`].
    pub lock_wait: u64,
    /// See [`WaitClass::LatchSpin`].
    pub latch_spin: u64,
    /// See [`WaitClass::LogWait`].
    pub log_wait: u64,
    /// See [`WaitClass::IoRetry`].
    pub io_retry: u64,
    /// See [`WaitClass::CommitFlush`].
    pub commit_flush: u64,
}

impl WaitProfile {
    /// Nanoseconds attributed to `class`.
    pub fn get(&self, class: WaitClass) -> u64 {
        match class {
            WaitClass::LockWait => self.lock_wait,
            WaitClass::LatchSpin => self.latch_spin,
            WaitClass::LogWait => self.log_wait,
            WaitClass::IoRetry => self.io_retry,
            WaitClass::CommitFlush => self.commit_flush,
        }
    }

    /// Sum of all wait classes (excludes `useful`).
    pub fn wait_total(&self) -> u64 {
        WaitClass::ALL.iter().fold(0u64, |acc, &c| acc.saturating_add(self.get(c)))
    }

    /// Total accounted time: `useful + wait_total`. By construction (see
    /// module docs) this never exceeds the wall clock of the profiled span.
    pub fn wall(&self) -> u64 {
        self.useful.saturating_add(self.wait_total())
    }

    /// Accumulates another profile (worker merge).
    pub fn merge(&mut self, other: &WaitProfile) {
        self.useful = self.useful.saturating_add(other.useful);
        self.lock_wait = self.lock_wait.saturating_add(other.lock_wait);
        self.latch_spin = self.latch_spin.saturating_add(other.latch_spin);
        self.log_wait = self.log_wait.saturating_add(other.log_wait);
        self.io_retry = self.io_retry.saturating_add(other.io_retry);
        self.commit_flush = self.commit_flush.saturating_add(other.commit_flush);
    }
}

#[cfg_attr(obs_disabled, allow(dead_code))]
struct TlsState {
    /// Live [`WaitTimer`] nesting depth on this thread.
    depth: Cell<u32>,
    /// Nanoseconds accumulated per wait class (monotone; scopes read deltas).
    waits: [Cell<u64>; WAIT_CLASSES],
}

thread_local! {
    static TLS: TlsState = const {
        TlsState {
            depth: Cell::new(0),
            waits: [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)],
        }
    };
}

/// RAII guard from [`wait_timer`]; records its interval on drop.
#[must_use = "the timer measures until dropped"]
pub struct WaitTimer {
    /// `Some` only for the outermost timer on this thread.
    start: Option<(WaitClass, Instant)>,
    /// Whether this guard incremented the TLS depth (false when disabled).
    tracked: bool,
}

/// Starts timing a wait of `class`. Drop the guard when the wait ends.
/// Nested timers (any class) record nothing — see the module docs.
#[inline]
pub fn wait_timer(class: WaitClass) -> WaitTimer {
    #[cfg(obs_disabled)]
    {
        let _ = class;
        WaitTimer { start: None, tracked: false }
    }
    #[cfg(not(obs_disabled))]
    {
        let top_level = TLS.with(|t| {
            let d = t.depth.get();
            t.depth.set(d + 1);
            d == 0
        });
        WaitTimer {
            start: top_level.then(|| (class, Instant::now())),
            tracked: true,
        }
    }
}

impl Drop for WaitTimer {
    fn drop(&mut self) {
        if !self.tracked {
            return;
        }
        TLS.with(|t| t.depth.set(t.depth.get() - 1));
        if let Some((class, start)) = self.start {
            record_wait(class, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Attributes `nanos` of already-measured wait to `class` (thread-local and
/// global). Prefer [`wait_timer`] — this bypasses the nesting rule, so only
/// call it where no timer can be live.
#[inline]
pub fn record_wait(class: WaitClass, nanos: u64) {
    #[cfg(obs_disabled)]
    {
        let _ = (class, nanos);
    }
    #[cfg(not(obs_disabled))]
    {
        TLS.with(|t| {
            let cell = &t.waits[class as usize];
            cell.set(cell.get().saturating_add(nanos));
        });
        GLOBAL.waits[class as usize].fetch_add(nanos, Ordering::Relaxed);
    }
}

#[cfg(not(obs_disabled))]
fn tls_waits() -> [u64; WAIT_CLASSES] {
    TLS.with(|t| {
        let mut out = [0u64; WAIT_CLASSES];
        for (o, c) in out.iter_mut().zip(&t.waits) {
            *o = c.get();
        }
        out
    })
}

/// Runs `f`, measuring its wall time and collecting the waits its thread
/// recorded, and returns the result plus the span's [`WaitProfile`]
/// (`useful` = wall − waits). The span's `useful` is also added to the
/// process-global aggregate (the waits already were, at timer drop).
#[inline]
pub fn profile_scope<R>(f: impl FnOnce() -> R) -> (R, WaitProfile) {
    #[cfg(obs_disabled)]
    {
        (f(), WaitProfile::default())
    }
    #[cfg(not(obs_disabled))]
    {
        let before = tls_waits();
        let start = Instant::now();
        let result = f();
        let wall = start.elapsed().as_nanos() as u64;
        let after = tls_waits();
        let mut deltas = [0u64; WAIT_CLASSES];
        for i in 0..WAIT_CLASSES {
            deltas[i] = after[i].wrapping_sub(before[i]);
        }
        let wait_total: u64 = deltas.iter().sum();
        let useful = wall.saturating_sub(wait_total);
        GLOBAL.useful.fetch_add(useful, Ordering::Relaxed);
        let profile = WaitProfile {
            useful,
            lock_wait: deltas[WaitClass::LockWait as usize],
            latch_spin: deltas[WaitClass::LatchSpin as usize],
            log_wait: deltas[WaitClass::LogWait as usize],
            io_retry: deltas[WaitClass::IoRetry as usize],
            commit_flush: deltas[WaitClass::CommitFlush as usize],
        };
        (result, profile)
    }
}

/// Per-component global histograms (latency distributions, nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Component {
    /// Lock-manager blocked-wait durations.
    LockWait = 0,
    /// WAL durability-wait durations (`wait_durable`).
    WalFlush = 1,
    /// Buffer-pool miss service times (disk read + frame install).
    PoolMiss = 2,
    /// Whole-transaction latencies as seen by the workload driver.
    TxnLatency = 3,
    /// Replication lag: bytes between the primary's durable LSN and the
    /// replica's applied LSN, sampled once per shipped chunk.
    ReplLag = 4,
    /// Replica apply-batch durations (decode + redo + index maintenance).
    ReplApply = 5,
    /// Reactor idle time: how long each poller wait blocked before events
    /// (or its timeout) arrived. High values mean the reactor is starved for
    /// work, not slow.
    ReactorPoll = 6,
    /// Reactor busy time per tick: everything between returning from the
    /// poller and going back to sleep — reads, decode, execution, the tick's
    /// group flush, and writes. The per-reactor analogue of the wait
    /// breakdown: `tick / (tick + poll)` is that reactor's duty cycle.
    ReactorTick = 7,
}

/// Number of per-component histograms.
pub const COMPONENTS: usize = 8;

impl Component {
    /// All components, in `repr` order.
    pub const ALL: [Component; COMPONENTS] = [
        Component::LockWait,
        Component::WalFlush,
        Component::PoolMiss,
        Component::TxnLatency,
        Component::ReplLag,
        Component::ReplApply,
        Component::ReactorPoll,
        Component::ReactorTick,
    ];

    /// Stable lower-snake name.
    pub fn name(self) -> &'static str {
        match self {
            Component::LockWait => "lock_wait",
            Component::WalFlush => "wal_flush",
            Component::PoolMiss => "pool_miss",
            Component::TxnLatency => "txn_latency",
            Component::ReplLag => "repl_lag",
            Component::ReplApply => "repl_apply",
            Component::ReactorPoll => "reactor_poll",
            Component::ReactorTick => "reactor_tick",
        }
    }
}

/// Records `nanos` into `component`'s global histogram.
#[inline]
pub fn record_component(component: Component, nanos: u64) {
    #[cfg(obs_disabled)]
    {
        let _ = (component, nanos);
    }
    #[cfg(not(obs_disabled))]
    {
        GLOBAL.hists[component as usize].record(nanos);
    }
}

/// The process-global aggregate every timer and scope feeds.
pub struct GlobalObs {
    waits: [AtomicU64; WAIT_CLASSES],
    useful: AtomicU64,
    hists: [Histogram; COMPONENTS],
}

static GLOBAL: GlobalObs = GlobalObs {
    waits: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    useful: AtomicU64::new(0),
    hists: [
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
        Histogram::new(),
    ],
};

/// The process-global aggregate.
pub fn global() -> &'static GlobalObs {
    &GLOBAL
}

impl GlobalObs {
    /// Point-in-time copy of the global wait breakdown.
    pub fn profile(&self) -> WaitProfile {
        WaitProfile {
            useful: self.useful.load(Ordering::Relaxed),
            lock_wait: self.waits[WaitClass::LockWait as usize].load(Ordering::Relaxed),
            latch_spin: self.waits[WaitClass::LatchSpin as usize].load(Ordering::Relaxed),
            log_wait: self.waits[WaitClass::LogWait as usize].load(Ordering::Relaxed),
            io_retry: self.waits[WaitClass::IoRetry as usize].load(Ordering::Relaxed),
            commit_flush: self.waits[WaitClass::CommitFlush as usize].load(Ordering::Relaxed),
        }
    }

    /// Point-in-time copy of a component's latency histogram.
    pub fn component(&self, c: Component) -> HistogramSnapshot {
        self.hists[c as usize].snapshot()
    }

    /// Zeroes the whole aggregate (between benchmark cells; racy vs writers).
    pub fn reset(&self) {
        for w in &self.waits {
            w.store(0, Ordering::Relaxed);
        }
        self.useful.store(0, Ordering::Relaxed);
        for h in &self.hists {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_attributes_wait_and_useful() {
        let (_, p) = profile_scope(|| {
            let t = wait_timer(WaitClass::LockWait);
            std::thread::sleep(Duration::from_millis(5));
            drop(t);
            std::hint::black_box(42)
        });
        assert!(p.lock_wait >= 4_000_000, "{p:?}");
        assert!(p.wall() >= p.lock_wait, "{p:?}");
        assert_eq!(p.wall(), p.useful + p.wait_total());
    }

    #[test]
    fn nested_timer_does_not_double_count() {
        let (_, p) = profile_scope(|| {
            let outer = wait_timer(WaitClass::LogWait);
            let inner = wait_timer(WaitClass::LatchSpin);
            std::thread::sleep(Duration::from_millis(4));
            drop(inner);
            drop(outer);
        });
        // The inner interval belongs to the outer timer's class only.
        assert_eq!(p.latch_spin, 0, "{p:?}");
        assert!(p.log_wait >= 3_000_000, "{p:?}");
    }

    #[test]
    fn sequential_timers_accumulate() {
        let (_, p) = profile_scope(|| {
            for _ in 0..2 {
                let t = wait_timer(WaitClass::IoRetry);
                std::thread::sleep(Duration::from_millis(2));
                drop(t);
            }
        });
        assert!(p.io_retry >= 3_000_000, "{p:?}");
    }

    #[test]
    fn profile_merge_adds_componentwise() {
        let mut a = WaitProfile { useful: 1, lock_wait: 2, ..Default::default() };
        let b = WaitProfile { useful: 10, commit_flush: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.useful, 11);
        assert_eq!(a.lock_wait, 2);
        assert_eq!(a.commit_flush, 5);
        assert_eq!(a.wall(), 18);
    }

    #[test]
    fn record_wait_reaches_global() {
        // Serialize against other tests touching GLOBAL by using a distinct
        // class with a distinctive amount and checking growth, not equality.
        let before = global().profile().io_retry;
        record_wait(WaitClass::IoRetry, 12345);
        assert!(global().profile().io_retry >= before + 12345);
    }

    #[test]
    fn component_histograms_record() {
        record_component(Component::PoolMiss, 777);
        let s = global().component(Component::PoolMiss);
        assert!(s.count >= 1);
    }

    #[test]
    fn wait_class_names_are_stable() {
        let names: Vec<&str> = WaitClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            ["lock_wait", "latch_spin", "log_wait", "io_retry", "commit_flush"]
        );
        assert_eq!(
            Component::ALL.map(|c| c.name()),
            [
                "lock_wait",
                "wal_flush",
                "pool_miss",
                "txn_latency",
                "repl_lag",
                "repl_apply",
                "reactor_poll",
                "reactor_tick"
            ]
        );
    }
}
