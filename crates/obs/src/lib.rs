//! # esdb-obs — cycle-accounting observability
//!
//! The keynote argues every claim by cycle accounting: show *where the time
//! goes* — useful work vs latch spin vs lock wait vs log wait — and the
//! bottleneck names itself. This crate is that methodology as a library:
//!
//! - [`Histogram`] / [`HistogramSnapshot`]: a log-bucketed latency histogram
//!   with a lock-free, fixed-memory, allocation-free record path; mergeable
//!   across workers; p50/p95/p99 queryable.
//! - [`WaitClass`] / [`WaitProfile`] / [`wait_timer`] / [`profile_scope`]:
//!   scoped timer guards that attribute a span's wall time to wait classes,
//!   with a thread-local nesting rule that keeps the accounting honest
//!   (`sum(components) ≤ wall`, enforced by tests in `tests/engine_matrix.rs`).
//! - [`global`] / [`Component`]: a process-wide aggregate (breakdown +
//!   per-component histograms) that instrumented crates feed from their hot
//!   paths, read by `Database::obs_snapshot()` and the `fig6_breakdown`
//!   bench.
//!
//! ## Compiling it out
//!
//! Building with `RUSTFLAGS="--cfg obs_disabled"` turns every record path
//! into a no-op **inside this crate** — instrumented call sites elsewhere
//! need no `#[cfg]`. [`enabled`] reports the mode so drivers can skip
//! timestamp reads too; `scripts/ci.sh` gates the enabled build to within 5%
//! of the disabled build's throughput.

mod histogram;
mod profile;

pub use histogram::{bucket_index, bucket_lower_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use profile::{
    global, profile_scope, record_component, record_wait, wait_timer, Component, GlobalObs,
    WaitClass, WaitProfile, WaitTimer, COMPONENTS, WAIT_CLASSES,
};

/// `false` when built with `RUSTFLAGS="--cfg obs_disabled"`. Constant, so
/// `if esdb_obs::enabled() { ... }` compiles away entirely in that mode.
#[inline]
pub const fn enabled() -> bool {
    cfg!(not(obs_disabled))
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_matches_cfg() {
        assert_eq!(super::enabled(), cfg!(not(obs_disabled)));
    }
}
