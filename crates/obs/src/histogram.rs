//! Log-bucketed latency histogram with a lock-free, allocation-free record
//! path.
//!
//! Bucket `i` covers `[lower_bound(i), lower_bound(i+1))` where
//! `lower_bound(0) = 0` and `lower_bound(i) = 2^(i-1)` for `i ≥ 1`: one
//! bucket per power of two, 64 buckets total, so any `u64` nanosecond value
//! lands in exactly one bucket with two instructions of arithmetic
//! (`leading_zeros` + clamp). Quantiles are therefore log-approximate — a
//! reported quantile is the *lower bound* of the bucket holding that rank,
//! i.e. within one power of two below the true value — which is the same
//! resolution cycle-breakdown plots use.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two of a `u64`, plus the zero bucket.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value (see module docs for the scheme).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A concurrently recordable latency histogram.
///
/// Fixed memory (66 words), no allocation or locking on the record path:
/// `record` is three relaxed `fetch_add`s. Readers take a [`snapshot`]
/// (racy across buckets, exact per bucket — fine for monitoring) and do all
/// querying/merging on the plain-integer [`HistogramSnapshot`].
///
/// [`snapshot`]: Histogram::snapshot
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram (usable in statics).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free, allocation-free, wait-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for querying and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s.count = self.count.load(Ordering::Relaxed);
        s.sum = self.sum.load(Ordering::Relaxed);
        s
    }

    /// Zeroes all buckets (between benchmark cells; racy vs writers).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Plain-integer copy of a [`Histogram`]: mergeable, queryable, wire-encodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_lower_bound`] for the scheme).
    pub buckets: [u64; BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values (mean = `sum / count`).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Records one value into this plain (single-owner) snapshot — the
    /// cheap path for per-worker histograms that are merged at join time.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds another snapshot's counts into this one. Commutative and
    /// associative; never loses counts (saturating on overflow).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Lower bound of the bucket holding the `q`-quantile rank
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty. Monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Median (log-approximate; see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of recorded values; 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value sits at or above its bucket's lower bound, and below
        // the next bucket's (except the last, which is open-ended).
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "v={v} i={i}");
            if i + 1 < BUCKETS {
                assert!(v < bucket_lower_bound(i + 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.mean(), 50);
        // True p50 is 50 → bucket [32,64) → reported 32.
        assert_eq!(s.p50(), 32);
        // True p99 is 99 → bucket [64,128) → reported 64.
        assert_eq!(s.p99(), 64);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_sums_counts() {
        let a = Histogram::new();
        a.record(5);
        a.record(500);
        let b = Histogram::new();
        b.record(5);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 510);
        assert_eq!(m.buckets[bucket_index(5)], 2);
    }

    #[test]
    fn reset_zeroes() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 4000);
    }
}
