//! Checkable scenarios: small, fully explicit concurrent workloads with
//! end-state invariants.
//!
//! A scenario pins everything the checker needs for deterministic replay:
//! the engine configuration, the schema, the initial population, one fixed
//! transaction script per client, and the invariants the final state must
//! satisfy. Scripts are generated once (seeded) when the scenario is built,
//! so every schedule of the same scenario executes the same transactions.

use esdb_core::spec_exec::SpecOutcome;
use esdb_core::{Database, EngineConfig};
use esdb_workload::{Rng, TxnSpec, WorkloadOp};

/// Everything the invariant oracle can look at after a run.
pub struct RunView<'a> {
    /// The database, quiesced (all clients finished, verdicts applied).
    pub db: &'a Database,
    /// The per-client scripts, as executed.
    pub clients: &'a [Vec<TxnSpec>],
    /// Per-client, per-transaction outcomes (parallel to `clients`).
    pub outcomes: &'a [Vec<SpecOutcome>],
}

impl RunView<'_> {
    /// Sum of `col` over every row of `table`.
    pub fn table_sum(&self, table: u32, col: usize) -> i64 {
        let t = self.db.table(table).expect("scenario table");
        let mut total = 0i64;
        t.scan(|_, row| total += row[col]).expect("scan");
        total
    }

    /// Number of committed transactions across all clients.
    pub fn committed(&self) -> usize {
        self.outcomes
            .iter()
            .flatten()
            .filter(|o| o.is_committed())
            .count()
    }
}

/// A named end-state predicate.
pub struct Invariant {
    /// Short name, used in violation reports.
    pub name: &'static str,
    /// Returns `Err(description)` when violated.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&RunView) -> Result<(), String> + Send + Sync>,
}

impl Invariant {
    /// Convenience constructor.
    pub fn new(
        name: &'static str,
        check: impl Fn(&RunView) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        Invariant {
            name,
            check: Box::new(check),
        }
    }
}

/// A deterministic concurrent workload plus its correctness oracle.
pub struct Scenario {
    /// Name, used in reports.
    pub name: &'static str,
    /// Engine configuration to check under.
    pub config: EngineConfig,
    /// Schema: `(name, arity)`; table ids are assigned 0.. in order.
    pub tables: Vec<(&'static str, usize)>,
    /// Initial rows: `(table, key, row)`.
    pub population: Vec<(u32, u64, Vec<i64>)>,
    /// One transaction script per client thread.
    pub clients: Vec<Vec<TxnSpec>>,
    /// End-state invariants.
    pub invariants: Vec<Invariant>,
}

// ---------------------------------------------------------------------------
// TPC-B micro scenario
// ---------------------------------------------------------------------------

/// Table ids for [`tpcb_micro`] (creation order).
pub mod tpcb_tables {
    /// Branches: `[balance]`.
    pub const BRANCHES: u32 = 0;
    /// Tellers: `[branch, balance]`.
    pub const TELLERS: u32 = 1;
    /// Accounts: `[branch, balance]`.
    pub const ACCOUNTS: u32 = 2;
    /// History: `[teller, account, delta]`.
    pub const HISTORY: u32 = 3;
}

/// A 4-transaction-per-client TPC-B style micro workload: every client runs
/// debit/credit transactions over a tiny bank (2 branches, 4 tellers,
/// 8 accounts), and the oracle checks money conservation plus the
/// history-row count.
pub fn tpcb_micro(config: EngineConfig, clients: usize, txns_per_client: usize, seed: u64) -> Scenario {
    use tpcb_tables::*;
    const NBRANCH: u64 = 2;
    const NTELLER: u64 = 4;
    const NACCOUNT: u64 = 8;

    let mut population = Vec::new();
    for b in 0..NBRANCH {
        population.push((BRANCHES, b, vec![0]));
    }
    for t in 0..NTELLER {
        population.push((TELLERS, t, vec![(t % NBRANCH) as i64, 0]));
    }
    for a in 0..NACCOUNT {
        population.push((ACCOUNTS, a, vec![(a % NBRANCH) as i64, 0]));
    }

    let mut rng = Rng::new(seed);
    let mut history_key = 0u64;
    let mut scripts = Vec::new();
    for _ in 0..clients {
        let mut script = Vec::new();
        for _ in 0..txns_per_client {
            let account = rng.below(NACCOUNT);
            let teller = rng.below(NTELLER);
            let branch = account % NBRANCH;
            let delta = rng.below(100) as i64 - 50;
            history_key += 1;
            script.push(TxnSpec {
                kind: "debit-credit",
                ops: vec![
                    WorkloadOp::Add { table: ACCOUNTS, key: account, col: 1, delta },
                    WorkloadOp::Add { table: TELLERS, key: teller, col: 1, delta },
                    WorkloadOp::Add { table: BRANCHES, key: branch, col: 0, delta },
                    WorkloadOp::Insert {
                        table: HISTORY,
                        key: history_key,
                        row: vec![teller as i64, account as i64, delta],
                    },
                ],
                may_fail: false,
            });
        }
        scripts.push(script);
    }

    Scenario {
        name: "tpcb-micro",
        config,
        tables: vec![
            ("branches", 1),
            ("tellers", 2),
            ("accounts", 2),
            ("history", 3),
        ],
        population,
        clients: scripts,
        invariants: vec![
            Invariant::new("money-conservation", |v| {
                let accounts = v.table_sum(ACCOUNTS, 1);
                let tellers = v.table_sum(TELLERS, 1);
                let branches = v.table_sum(BRANCHES, 0);
                if accounts == tellers && tellers == branches {
                    Ok(())
                } else {
                    Err(format!(
                        "accounts {accounts} vs tellers {tellers} vs branches {branches}"
                    ))
                }
            }),
            Invariant::new("history-count", |v| {
                let history = v.db.table(HISTORY).expect("history").len();
                let committed = v.committed() as u64;
                if history == committed {
                    Ok(())
                } else {
                    Err(format!("{history} history rows, {committed} commits"))
                }
            }),
        ],
    }
}

// ---------------------------------------------------------------------------
// Transfers + snapshot reader scenario
// ---------------------------------------------------------------------------

/// Account table id for [`transfer_snapshot`].
pub const TRANSFER_ACCOUNTS: u32 = 0;
const TRANSFER_KEYS: u64 = 4;
const TRANSFER_INITIAL: i64 = 100;

/// Money transfers between 4 accounts plus a snapshot-reading client: each
/// reader transaction reads all accounts and must observe the invariant
/// total (any torn view is a serializability violation). This is the
/// scenario whose invariants the chaos mutations visibly break.
pub fn transfer_snapshot(
    config: EngineConfig,
    writers: usize,
    txns_per_writer: usize,
    reader_txns: usize,
    seed: u64,
) -> Scenario {
    let total: i64 = TRANSFER_KEYS as i64 * TRANSFER_INITIAL;
    let population = (0..TRANSFER_KEYS)
        .map(|k| (TRANSFER_ACCOUNTS, k, vec![TRANSFER_INITIAL]))
        .collect();

    let mut rng = Rng::new(seed);
    let mut scripts = Vec::new();
    for _ in 0..writers {
        let mut script = Vec::new();
        for _ in 0..txns_per_writer {
            let from = rng.below(TRANSFER_KEYS);
            let to = (from + 1 + rng.below(TRANSFER_KEYS - 1)) % TRANSFER_KEYS;
            let amount = rng.range(1, 40) as i64;
            script.push(TxnSpec {
                kind: "transfer",
                ops: vec![
                    WorkloadOp::Add { table: TRANSFER_ACCOUNTS, key: from, col: 0, delta: -amount },
                    WorkloadOp::Add { table: TRANSFER_ACCOUNTS, key: to, col: 0, delta: amount },
                ],
                may_fail: false,
            });
        }
        scripts.push(script);
    }
    scripts.push(
        (0..reader_txns)
            .map(|_| TxnSpec {
                kind: "snapshot-read",
                ops: (0..TRANSFER_KEYS)
                    .map(|k| WorkloadOp::Read { table: TRANSFER_ACCOUNTS, key: k })
                    .collect(),
                may_fail: false,
            })
            .collect(),
    );

    Scenario {
        name: "transfer-snapshot",
        config,
        tables: vec![("accounts", 1)],
        population,
        clients: scripts,
        invariants: vec![
            Invariant::new("conservation", move |v| {
                let sum = v.table_sum(TRANSFER_ACCOUNTS, 0);
                if sum == total {
                    Ok(())
                } else {
                    Err(format!("account sum {sum}, expected {total}"))
                }
            }),
            Invariant::new("snapshot-total", move |v| {
                for (client, script) in v.clients.iter().enumerate() {
                    for (i, spec) in script.iter().enumerate() {
                        if spec.kind != "snapshot-read" {
                            continue;
                        }
                        let Some(SpecOutcome::Committed { reads }) =
                            v.outcomes.get(client).and_then(|o| o.get(i))
                        else {
                            continue;
                        };
                        let sum: i64 = reads
                            .iter()
                            .map(|r| r.as_ref().map_or(0, |row| row[0]))
                            .sum();
                        if sum != total {
                            return Err(format!(
                                "client {client} txn {i} saw torn snapshot: {sum} != {total}"
                            ));
                        }
                    }
                }
                Ok(())
            }),
        ],
    }
}

// ---------------------------------------------------------------------------
// HTAP follower scenario: transfers + commit-consistent follower queries
// ---------------------------------------------------------------------------

/// Account table id for [`htap_snapshot`].
pub const HTAP_ACCOUNTS: u32 = 0;
const HTAP_KEYS: u64 = 4;
const HTAP_INITIAL: i64 = 100;

/// Money transfers under the seeded scheduler, with a **follower-side**
/// snapshot oracle: at quiescence the schedule's durable WAL is replayed
/// into a fresh replica in seeded chunk cuts, and after every chunk a pinned
/// [`esdb_repl::HtapView::query_at`] aggregate runs at the follower's
/// current consistent cut. Every such query must observe either the
/// pre-population empty state or an exactly conserved total — a torn
/// transaction or an uncommitted write at *any* cut is a violation.
///
/// This is the checker-shaped statement of the HTAP guarantee: the primary's
/// interleaving (which the scheduler perturbs per seed) decides the WAL's
/// record order, and no record order may ever let a pinned follower query
/// see half a transfer.
pub fn htap_snapshot(
    config: EngineConfig,
    writers: usize,
    txns_per_writer: usize,
    seed: u64,
) -> Scenario {
    let total: i64 = HTAP_KEYS as i64 * HTAP_INITIAL;
    let population = (0..HTAP_KEYS)
        .map(|k| (HTAP_ACCOUNTS, k, vec![HTAP_INITIAL]))
        .collect();

    let mut rng = Rng::new(seed);
    let mut scripts = Vec::new();
    for _ in 0..writers {
        let mut script = Vec::new();
        for _ in 0..txns_per_writer {
            let from = rng.below(HTAP_KEYS);
            let to = (from + 1 + rng.below(HTAP_KEYS - 1)) % HTAP_KEYS;
            let amount = rng.range(1, 40) as i64;
            script.push(TxnSpec {
                kind: "transfer",
                ops: vec![
                    WorkloadOp::Add { table: HTAP_ACCOUNTS, key: from, col: 0, delta: -amount },
                    WorkloadOp::Add { table: HTAP_ACCOUNTS, key: to, col: 0, delta: amount },
                ],
                may_fail: false,
            });
        }
        scripts.push(script);
    }

    Scenario {
        name: "htap-snapshot",
        config,
        tables: vec![("accounts", 1)],
        population,
        clients: scripts,
        invariants: vec![
            Invariant::new("conservation", move |v| {
                let sum = v.table_sum(HTAP_ACCOUNTS, 0);
                if sum == total {
                    Ok(())
                } else {
                    Err(format!("account sum {sum}, expected {total}"))
                }
            }),
            Invariant::new("follower-consistent-cuts", move |v| {
                follower_cuts_hold(v.db, total)
            }),
        ],
    }
}

/// The follower oracle behind [`htap_snapshot`]: bootstrap a replica from an
/// *empty* snapshot at the WAL's origin (the population itself loads through
/// a logged setup transaction, so replay reconstructs everything), feed the
/// durable stream in seeded cuts, and interrogate every cut with a pinned
/// aggregate query.
fn follower_cuts_hold(db: &Database, total: i64) -> Result<(), String> {
    use esdb_staged::{AggFunc, PlanNode};
    use std::sync::Arc;
    use std::time::Duration;

    let wal = db.wal();
    wal.wait_durable(wal.current_lsn());
    let start = wal.start_lsn();
    let snap = esdb_net::Snapshot {
        start_lsn: start,
        catalog: db
            .catalog()
            .into_iter()
            .map(|(id, name, arity, _)| (id, name, arity as u32, Vec::new()))
            .collect(),
        indexes: Vec::new(),
        pages: Vec::new(),
    };
    let mut replica =
        esdb_repl::Replica::bootstrap(snap, EngineConfig::conventional_baseline())
            .map_err(|e| format!("follower bootstrap: {e}"))?;
    let view = replica.htap_view();
    let durable = wal.durable_lsn();
    if durable <= start {
        return Ok(());
    }
    let (bytes, s0) = wal
        .durable_tail(start)
        .ok_or_else(|| "durable tail unavailable".to_string())?;
    let avail = ((durable - s0) as usize).min(bytes.len());
    let mut cuts = Rng::new(0x47A9 ^ avail as u64);
    let mut off = 0usize;
    while off < avail {
        let end = (off + 1 + cuts.below(384) as usize).min(avail);
        replica
            .ingest(s0 + off as u64, &bytes[off..end])
            .map_err(|e| format!("follower ingest: {e}"))?;
        off = end;
        let table = view
            .db()
            .table(HTAP_ACCOUNTS)
            .ok_or_else(|| "accounts table missing on follower".to_string())?;
        // Scan output is `[key, col0]`, so the balance is plan column 1.
        let sum_plan = PlanNode::scan(Arc::clone(&table)).aggregate(None, 1, AggFunc::Sum);
        let cnt_plan = PlanNode::scan(table).aggregate(None, 1, AggFunc::Count);
        let watermark = view.watermark();
        let sum_rows = view
            .query_at(0, &sum_plan, Duration::ZERO)
            .map_err(|lag| format!("follower lagging at {lag}"))?;
        let cnt_rows = view
            .query_at(0, &cnt_plan, Duration::ZERO)
            .map_err(|lag| format!("follower lagging at {lag}"))?;
        let sum = sum_rows.first().map_or(0, |r| r[0]);
        let cnt = cnt_rows.first().map_or(0, |r| r[0]);
        let consistent = (cnt == 0 && sum == 0) || (cnt == HTAP_KEYS as i64 && sum == total);
        if !consistent {
            return Err(format!(
                "torn follower cut at watermark {watermark}: \
                 count {cnt}, sum {sum} (want 0/0 or {HTAP_KEYS}/{total})"
            ));
        }
    }
    if replica.applied_lsn() < durable {
        return Err(format!(
            "follower frontier {} short of durable {durable} at quiescence",
            replica.applied_lsn()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcb_micro_scripts_are_seed_deterministic() {
        let cfg = EngineConfig::default();
        let a = tpcb_micro(cfg.clone(), 3, 4, 42);
        let b = tpcb_micro(cfg, 3, 4, 42);
        assert_eq!(a.clients, b.clients);
        assert_eq!(a.population, b.population);
    }

    #[test]
    fn transfer_scenario_shape() {
        let s = transfer_snapshot(EngineConfig::default(), 2, 3, 2, 7);
        assert_eq!(s.clients.len(), 3); // 2 writers + 1 reader
        assert_eq!(s.clients[2].len(), 2);
        assert!(s.clients[2].iter().all(|t| t.kind == "snapshot-read"));
    }
}
