//! History recording and the conflict-graph serializability oracle.
//!
//! The recorder captures every successful read/write a transaction attempt
//! performs (stamped with a global sequence number — exact, because only one
//! virtual thread runs at a time) plus the set of attempts that committed.
//! The oracle builds the direct serialization graph over committed attempts:
//! for each key, every ordered pair of accesses by different transactions
//! where at least one is a write contributes an edge (ww / wr / rw) from the
//! earlier access to the later one. Under strict two-phase locking the
//! conflict order is consistent with lock grant order, so the graph is
//! acyclic; a cycle is a serializability violation.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Transaction attempt id.
    pub txn: u64,
    /// Table id.
    pub table: u32,
    /// Row key.
    pub key: u64,
    /// `true` for writes (including read-for-update), `false` for reads.
    pub write: bool,
    /// Global sequence number (total order of accesses).
    pub seq: u64,
}

/// Records per-attempt read/write sets and the committed set.
#[derive(Debug, Default)]
pub struct Recorder {
    seq: AtomicU64,
    events: Mutex<Vec<Event>>,
    committed: Mutex<BTreeSet<u64>>,
}

impl Recorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access by `txn`.
    pub fn record(&self, txn: u64, table: u32, key: u64, write: bool) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().unwrap().push(Event {
            txn,
            table,
            key,
            write,
            seq,
        });
    }

    /// Marks attempt `txn` as committed.
    pub fn commit(&self, txn: u64) {
        self.committed.lock().unwrap().insert(txn);
    }

    /// Number of committed attempts.
    pub fn committed_count(&self) -> usize {
        self.committed.lock().unwrap().len()
    }

    /// Runs the conflict-graph cycle check over the committed history.
    /// Returns a description of a cycle if one exists.
    pub fn serializability_violation(&self) -> Option<String> {
        let events = self.events.lock().unwrap();
        let committed = self.committed.lock().unwrap();

        // Per-key access lists (events are already in seq order).
        let mut by_key: BTreeMap<(u32, u64), Vec<&Event>> = BTreeMap::new();
        for e in events.iter() {
            if committed.contains(&e.txn) {
                by_key.entry((e.table, e.key)).or_default().push(e);
            }
        }

        // Conflict edges: earlier access → later access, labelled.
        let mut edges: BTreeMap<u64, BTreeMap<u64, (&'static str, (u32, u64))>> = BTreeMap::new();
        for (key, accesses) in &by_key {
            for (i, a) in accesses.iter().enumerate() {
                for b in &accesses[i + 1..] {
                    if a.txn == b.txn || (!a.write && !b.write) {
                        continue;
                    }
                    let label = match (a.write, b.write) {
                        (true, true) => "ww",
                        (true, false) => "wr",
                        (false, true) => "rw",
                        (false, false) => unreachable!(),
                    };
                    edges
                        .entry(a.txn)
                        .or_default()
                        .entry(b.txn)
                        .or_insert((label, *key));
                }
            }
        }

        // Iterative three-color DFS for a cycle, with path reconstruction.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<u64, Color> = committed.iter().map(|&t| (t, Color::White)).collect();
        for &root in committed.iter() {
            if color[&root] != Color::White {
                continue;
            }
            // Stack of (node, successor list, next index).
            let mut stack: Vec<(u64, Vec<u64>, usize)> = Vec::new();
            color.insert(root, Color::Gray);
            let succs = |n: u64| -> Vec<u64> {
                edges
                    .get(&n)
                    .map(|m| m.keys().copied().collect())
                    .unwrap_or_default()
            };
            stack.push((root, succs(root), 0));
            while let Some((node, list, idx)) = stack.last().cloned() {
                if idx >= list.len() {
                    color.insert(node, Color::Black);
                    stack.pop();
                    continue;
                }
                stack.last_mut().unwrap().2 += 1;
                let next = list[idx];
                match color.get(&next).copied().unwrap_or(Color::Black) {
                    Color::White => {
                        color.insert(next, Color::Gray);
                        stack.push((next, succs(next), 0));
                    }
                    Color::Gray => {
                        // Cycle: the stack suffix from `next` back to `node`.
                        let start = stack.iter().position(|&(n, _, _)| n == next).unwrap();
                        let mut cycle: Vec<u64> =
                            stack[start..].iter().map(|&(n, _, _)| n).collect();
                        cycle.push(next);
                        let desc = cycle
                            .windows(2)
                            .map(|w| {
                                let (label, (table, key)) = edges[&w[0]][&w[1]];
                                format!("txn {} -{label}[t{table} k{key}]-> txn {}", w[0], w[1])
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        return Some(format!("conflict cycle: {desc}"));
                    }
                    Color::Black => {}
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_history_is_clean() {
        let r = Recorder::new();
        for txn in 1..=3u64 {
            r.record(txn, 0, 1, false);
            r.record(txn, 0, 1, true);
            r.commit(txn);
        }
        assert_eq!(r.serializability_violation(), None);
    }

    #[test]
    fn interleaved_but_serializable_is_clean() {
        let r = Recorder::new();
        // txn 1 and 2 touch disjoint keys, fully interleaved.
        r.record(1, 0, 10, true);
        r.record(2, 0, 20, true);
        r.record(1, 0, 11, true);
        r.record(2, 0, 21, true);
        r.commit(1);
        r.commit(2);
        assert_eq!(r.serializability_violation(), None);
    }

    #[test]
    fn write_skew_style_cycle_is_detected() {
        let r = Recorder::new();
        // txn1 reads k1 then writes k2; txn2 reads k2 (before txn1's write)
        // then writes k1 (after txn1's read): rw edges both ways.
        r.record(1, 0, 1, false);
        r.record(2, 0, 2, false);
        r.record(1, 0, 2, true);
        r.record(2, 0, 1, true);
        r.commit(1);
        r.commit(2);
        let v = r.serializability_violation().expect("cycle");
        assert!(v.contains("conflict cycle"), "{v}");
        assert!(v.contains("txn 1") && v.contains("txn 2"), "{v}");
    }

    #[test]
    fn uncommitted_attempts_are_ignored() {
        let r = Recorder::new();
        // Same access pattern as the cycle test, but txn 2 aborted.
        r.record(1, 0, 1, false);
        r.record(2, 0, 2, false);
        r.record(1, 0, 2, true);
        r.record(2, 0, 1, true);
        r.commit(1);
        assert_eq!(r.serializability_violation(), None);
    }

    #[test]
    fn three_txn_cycle_is_detected() {
        let r = Recorder::new();
        r.record(1, 0, 1, true);
        r.record(2, 0, 1, true); // 1 -> 2 (ww k1)
        r.record(2, 0, 2, true);
        r.record(3, 0, 2, true); // 2 -> 3 (ww k2)
        r.record(3, 0, 3, true);
        r.record(1, 0, 3, true); // 3 -> 1 (ww k3)
        for t in 1..=3 {
            r.commit(t);
        }
        assert!(r.serializability_violation().is_some());
    }
}
