//! Virtual cooperative threads: real OS threads, serialized one-at-a-time.
//!
//! Each governed thread owns a [`Handshake`] — a single command/report slot
//! the scheduler and the thread alternate on. The scheduler issues exactly
//! one [`Cmd`] and then waits for exactly one [`Report`]; the thread posts a
//! report at every yield point and waits for the next command. At any moment
//! at most one virtual thread is running, so the engine's shared state only
//! ever changes under a scheduler-chosen step — which is what makes a seeded
//! schedule replay byte-identically.

use esdb_sync::sched::{SchedHook, YieldPoint};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Condvar, Mutex};

/// Scheduler → thread commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cmd {
    /// Run until the next yield point.
    Step,
    /// Re-evaluate the blocking predicate and report again (no progress).
    Poll,
    /// Leave the scheduler's control and fall back to OS blocking.
    Detach,
}

/// Thread → scheduler reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Report {
    /// Stopped at a yield point. `ready` is `false` when the thread is
    /// blocked on a predicate that does not currently hold.
    Paused { point: YieldPoint, ready: bool },
    /// The thread's governed body ran to completion.
    Finished,
    /// The thread acknowledged a `Detach` and now runs free.
    Detached,
}

#[derive(Default)]
struct Slot {
    cmd: Option<Cmd>,
    report: Option<Report>,
}

/// One command/report rendezvous slot (strictly alternating protocol).
pub(crate) struct Handshake {
    slot: Mutex<Slot>,
    cv: Condvar,
}

impl Handshake {
    pub(crate) fn new() -> Self {
        Handshake {
            slot: Mutex::new(Slot::default()),
            cv: Condvar::new(),
        }
    }

    /// Scheduler side: issue `cmd`, then wait for the thread's next report.
    pub(crate) fn command(&self, cmd: Cmd) -> Report {
        let mut s = self.slot.lock().unwrap();
        debug_assert!(s.cmd.is_none(), "command already pending");
        s.cmd = Some(cmd);
        self.cv.notify_all();
        loop {
            if let Some(r) = s.report.take() {
                return r;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Thread side: post `report`, then wait for the next command.
    pub(crate) fn pause(&self, report: Report) -> Cmd {
        let mut s = self.slot.lock().unwrap();
        debug_assert!(s.report.is_none(), "report already pending");
        s.report = Some(report);
        self.cv.notify_all();
        loop {
            if let Some(c) = s.cmd.take() {
                return c;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Thread side: post a final report without waiting for a command.
    pub(crate) fn post(&self, report: Report) {
        let mut s = self.slot.lock().unwrap();
        s.report = Some(report);
        self.cv.notify_all();
    }

    /// Thread side: wait for the first command without posting anything
    /// (start-of-life parking, so a spawned thread never races its spawner).
    pub(crate) fn wait_cmd(&self) -> Cmd {
        let mut s = self.slot.lock().unwrap();
        loop {
            if let Some(c) = s.cmd.take() {
                return c;
            }
            s = self.cv.wait(s).unwrap();
        }
    }
}

struct VtCtx {
    hs: Arc<Handshake>,
    detached: Cell<bool>,
}

thread_local! {
    static CURRENT: RefCell<Option<VtCtx>> = const { RefCell::new(None) };
}

fn current_handshake() -> Option<Arc<Handshake>> {
    CURRENT.with(|c| {
        c.borrow().as_ref().and_then(|v| {
            if v.detached.get() {
                None
            } else {
                Some(Arc::clone(&v.hs))
            }
        })
    })
}

fn mark_detached() {
    CURRENT.with(|c| {
        if let Some(v) = c.borrow().as_ref() {
            v.detached.set(true);
        }
    });
}

/// Runner-side adoption: bind `hs` to the calling thread and park until the
/// scheduler first steps it. Used by the runner's own client/init threads
/// (engine-internal threads use `register_spawned` via the hook instead).
pub(crate) fn adopt_and_wait(hs: Arc<Handshake>) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(VtCtx {
            hs: Arc::clone(&hs),
            detached: Cell::new(false),
        });
    });
    match hs.wait_cmd() {
        Cmd::Step | Cmd::Poll => {}
        Cmd::Detach => {
            mark_detached();
            hs.post(Report::Detached);
        }
    }
}

/// Runner-side completion: report `Finished` unless already detached.
pub(crate) fn finish() {
    CURRENT.with(|c| {
        if let Some(v) = c.borrow_mut().take() {
            if !v.detached.get() {
                v.hs.post(Report::Finished);
            }
        }
    });
}

/// A freshly registered engine thread, not yet admitted by the scheduler.
pub(crate) struct PendingReg {
    pub tag: u64,
    pub hs: Arc<Handshake>,
}

struct Registry {
    pending: Vec<PendingReg>,
    total: usize,
    expected: usize,
}

/// The [`SchedHook`] implementation esdb-check installs for a run.
pub(crate) struct CheckHook {
    reg: Mutex<Registry>,
    reg_cv: Condvar,
}

impl CheckHook {
    pub(crate) fn new() -> Self {
        CheckHook {
            reg: Mutex::new(Registry {
                pending: Vec::new(),
                total: 0,
                expected: 0,
            }),
            reg_cv: Condvar::new(),
        }
    }

    /// Scheduler side: take all registrations that arrived since last drain,
    /// in tag order (tags are stable, so admission order is deterministic).
    pub(crate) fn drain_pending(&self) -> Vec<PendingReg> {
        let mut regs = std::mem::take(&mut self.reg.lock().unwrap().pending);
        regs.sort_by_key(|r| r.tag);
        regs
    }
}

impl SchedHook for CheckHook {
    fn is_virtual(&self) -> bool {
        CURRENT.with(|c| c.borrow().as_ref().map_or(false, |v| !v.detached.get()))
    }

    fn yield_now(&self, point: YieldPoint) {
        let Some(hs) = current_handshake() else { return };
        loop {
            match hs.pause(Report::Paused { point, ready: true }) {
                Cmd::Step => return,
                Cmd::Poll => {}
                Cmd::Detach => {
                    mark_detached();
                    hs.post(Report::Detached);
                    return;
                }
            }
        }
    }

    fn block_until(&self, point: YieldPoint, ready: &mut dyn FnMut() -> bool) -> bool {
        let Some(hs) = current_handshake() else {
            return false;
        };
        loop {
            let ok = ready();
            match hs.pause(Report::Paused { point, ready: ok }) {
                // Re-check on Step: the predicate must hold *now*, under the
                // scheduler, for the caller to proceed.
                Cmd::Step => {
                    if ready() {
                        return true;
                    }
                }
                Cmd::Poll => {}
                Cmd::Detach => {
                    mark_detached();
                    hs.post(Report::Detached);
                    return false;
                }
            }
        }
    }

    fn register_spawned(&self, tag: u64) -> bool {
        if CURRENT.with(|c| c.borrow().is_some()) {
            return true; // already governed
        }
        let hs = Arc::new(Handshake::new());
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(VtCtx {
                hs: Arc::clone(&hs),
                detached: Cell::new(false),
            });
        });
        {
            let mut reg = self.reg.lock().unwrap();
            reg.pending.push(PendingReg {
                tag,
                hs: Arc::clone(&hs),
            });
            reg.total += 1;
            self.reg_cv.notify_all();
        }
        // Park until first scheduled: a freshly spawned engine thread must
        // never run concurrently with its (virtual) spawner.
        match hs.wait_cmd() {
            Cmd::Step | Cmd::Poll => {}
            Cmd::Detach => {
                mark_detached();
                hs.post(Report::Detached);
            }
        }
        true
    }

    fn deregister_spawned(&self) {
        finish();
    }

    fn sync_spawned(&self, count: usize) {
        let mut reg = self.reg.lock().unwrap();
        reg.expected += count;
        while reg.total < reg.expected {
            reg = self.reg_cv.wait(reg).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_alternates_command_and_report() {
        let hs = Arc::new(Handshake::new());
        let h2 = Arc::clone(&hs);
        let t = std::thread::spawn(move || {
            assert_eq!(h2.wait_cmd(), Cmd::Step);
            let cmd = h2.pause(Report::Paused {
                point: YieldPoint::Park,
                ready: true,
            });
            assert_eq!(cmd, Cmd::Step);
            h2.post(Report::Finished);
        });
        let r = hs.command(Cmd::Step);
        assert_eq!(
            r,
            Report::Paused {
                point: YieldPoint::Park,
                ready: true
            }
        );
        let r = hs.command(Cmd::Step);
        assert_eq!(r, Report::Finished);
        t.join().unwrap();
    }
}
