//! The check runner: builds the engine, drives virtual threads under a
//! schedule strategy, and evaluates the oracles.
//!
//! One schedule = one fresh `Database` + one OS thread per scenario client,
//! all governed by the installed [`CheckHook`]. The run has two phases:
//!
//! 1. **Setup** (deterministic, untraced): a dedicated init virtual thread
//!    creates tables and loads the population; the scheduler always steps the
//!    smallest-tag ready thread. DORA executors spawned during setup register
//!    themselves and are admitted as daemon virtual threads.
//! 2. **Exploration** (traced): client virtual threads run their scripts
//!    while the strategy picks each step. Every decision is recorded, which
//!    is what makes failing seeds replayable and shrinkable.
//!
//! Teardown detaches every remaining virtual thread (daemons fall back to OS
//! blocking and drain normally when the database drops). A run that makes no
//! progress — every thread blocked, nothing ready — is reported as `Stuck`
//! with the per-thread blocked points; its threads are abandoned rather than
//! joined, a bounded leak on the failing diagnostic path only.

use crate::history::Recorder;
use crate::scenario::{RunView, Scenario};
use crate::schedule::{
    shrink_trace, MinTag, Pct, RandomWalk, ReplaySchedule, Schedule, Strategy, Trace,
};
use crate::vthread::{adopt_and_wait, finish, CheckHook, Cmd, Handshake, Report};
use esdb_core::spec_exec::SpecOutcome;
use esdb_core::{Database, ExecutionModel, TxnError};
use esdb_txn::TxnManager;
use esdb_workload::{TxnSpec, WorkloadOp};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Which seeded engine mutation to enable (chaos feature flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// `esdb-txn`: release all locks after every operation (breaks 2PL).
    ReleaseLocksEarly,
    /// `esdb-dora`: ignore wait-die conflicts (co-own keys).
    DisableWaitDie,
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Number of seeded schedules to explore.
    pub schedules: usize,
    /// Seed of the first schedule (schedule `i` uses `base_seed + i`).
    pub base_seed: u64,
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Hard cap on scheduler steps per schedule.
    pub max_steps: usize,
    /// Engine mutation to enable (mutation smoke tests only).
    pub mutation: Option<Mutation>,
    /// Replay budget for the shrinker.
    pub shrink_budget: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            schedules: 100,
            base_seed: 1,
            strategy: Strategy::RandomWalk,
            max_steps: 50_000,
            mutation: None,
            shrink_budget: 200,
        }
    }
}

/// What a schedule's oracle found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Conflict-graph cycle over the committed history.
    Serializability {
        /// Cycle description.
        detail: String,
    },
    /// A scenario invariant failed.
    Invariant {
        /// Invariant name.
        name: String,
        /// Failure description.
        detail: String,
    },
    /// No runnable thread but clients unfinished (lost wakeup / deadlock
    /// missed by the engine's own detection).
    Stuck {
        /// Per-thread blocked points.
        detail: String,
    },
    /// The schedule exceeded `max_steps` (livelock).
    StepBudget {
        /// The configured cap.
        steps: usize,
    },
    /// A client or setup thread panicked.
    Panic {
        /// Panic payloads.
        detail: String,
    },
}

impl Violation {
    /// Coarse kind label; shrinking preserves the kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Serializability { .. } => "serializability",
            Violation::Invariant { .. } => "invariant",
            Violation::Stuck { .. } => "stuck",
            Violation::StepBudget { .. } => "step-budget",
            Violation::Panic { .. } => "panic",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Serializability { detail } => write!(f, "serializability: {detail}"),
            Violation::Invariant { name, detail } => write!(f, "invariant {name}: {detail}"),
            Violation::Stuck { detail } => write!(f, "stuck: {detail}"),
            Violation::StepBudget { steps } => write!(f, "step budget exceeded ({steps})"),
            Violation::Panic { detail } => write!(f, "panic: {detail}"),
        }
    }
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Seed of the failing schedule.
    pub seed: u64,
    /// The violation the oracle reported.
    pub violation: Violation,
    /// Full recorded trace of the failing run.
    pub trace: Trace,
    /// Shrunk trace (same violation kind, minimal same-thread segments).
    pub shrunk: Trace,
    /// Violation observed when replaying the shrunk trace.
    pub shrunk_violation: Violation,
    /// `true` if replaying the original trace reproduced the violation.
    pub replayed: bool,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "schedule seed {} failed: {}", self.seed, self.violation)?;
        writeln!(
            f,
            "replay: {}",
            if self.replayed { "reproduces byte-identically" } else { "DID NOT reproduce" }
        )?;
        writeln!(f, "shrunk ({} of {} steps): {}", self.shrunk.steps.len(), self.trace.steps.len(), self.shrunk_violation)?;
        write!(f, "minimal yield trace: {}", self.shrunk.render())
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug)]
pub struct CheckReport {
    /// Schedules explored before stopping (== configured unless a failure).
    pub schedules_run: usize,
    /// Committed transactions summed over all clean schedules.
    pub committed_total: u64,
    /// The first failing schedule, if any.
    pub failure: Option<FailureReport>,
}

/// Everything a single schedule produced.
pub(crate) struct ScheduleRun {
    pub violation: Option<Violation>,
    pub trace: Trace,
    pub committed: u64,
}

// The process-global run lock: checked runs install a process-wide hook and
// flip process-wide chaos flags, so they must not overlap.
static RUN_LOCK: Mutex<()> = Mutex::new(());

struct ChaosGuard;

impl ChaosGuard {
    fn set(mutation: Option<Mutation>) -> Self {
        esdb_txn::chaos::set_release_locks_early(mutation == Some(Mutation::ReleaseLocksEarly));
        esdb_dora::chaos::set_disable_wait_die(mutation == Some(Mutation::DisableWaitDie));
        ChaosGuard
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        esdb_txn::chaos::set_release_locks_early(false);
        esdb_dora::chaos::set_disable_wait_die(false);
    }
}

struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        esdb_sync::sched::uninstall();
    }
}

/// Explores `cfg.schedules` seeded schedules of `scenario`, stopping at the
/// first violation (which is then replayed and shrunk).
pub fn check(scenario: &Scenario, cfg: &CheckConfig) -> CheckReport {
    let mut committed_total = 0u64;
    for i in 0..cfg.schedules {
        let seed = cfg.base_seed.wrapping_add(i as u64);
        let schedule: Box<dyn Schedule> = match cfg.strategy {
            Strategy::RandomWalk => Box::new(RandomWalk::new(seed)),
            Strategy::Pct { depth } => Box::new(Pct::new(seed, depth, cfg.max_steps)),
        };
        let run = run_schedule(scenario, schedule, cfg);
        committed_total += run.committed;
        if let Some(violation) = run.violation {
            let kind = violation.kind();
            let replayed = {
                let r = replay(scenario, cfg, &run.trace.choices());
                r.violation.as_ref() == Some(&violation) && r.trace == run.trace
            };
            let shrunk_choices = shrink_trace(
                &run.trace.choices(),
                kind,
                |choices| {
                    replay(scenario, cfg, choices)
                        .violation
                        .map(|v| v.kind().to_string())
                },
                cfg.shrink_budget,
            );
            let shrunk_run = replay(scenario, cfg, &shrunk_choices);
            let shrunk_violation = shrunk_run.violation.unwrap_or_else(|| violation.clone());
            return CheckReport {
                schedules_run: i + 1,
                committed_total,
                failure: Some(FailureReport {
                    seed,
                    violation,
                    trace: run.trace,
                    shrunk: shrunk_run.trace,
                    shrunk_violation,
                    replayed,
                }),
            };
        }
    }
    CheckReport {
        schedules_run: cfg.schedules,
        committed_total,
        failure: None,
    }
}

/// Replays a recorded choice sequence against `scenario`.
pub fn replay(scenario: &Scenario, cfg: &CheckConfig, choices: &[u64]) -> ScheduleRunPublic {
    let run = run_schedule(scenario, Box::new(ReplaySchedule::new(choices.to_vec())), cfg);
    ScheduleRunPublic {
        violation: run.violation,
        trace: run.trace,
        committed: run.committed,
    }
}

/// Public mirror of a schedule result (for replay callers and tests).
#[derive(Debug)]
pub struct ScheduleRunPublic {
    /// Oracle verdict.
    pub violation: Option<Violation>,
    /// Recorded trace of the (re)run.
    pub trace: Trace,
    /// Committed transactions.
    pub committed: u64,
}

// ---------------------------------------------------------------------------
// Single-schedule execution
// ---------------------------------------------------------------------------

const INIT_TAG: u64 = 900;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VtState {
    Ready,
    Blocked,
    Finished,
    Detached,
}

struct Vt {
    daemon: bool,
    hs: Arc<Handshake>,
    state: VtState,
    point: &'static str,
}

struct Sched {
    hook: Arc<CheckHook>,
    vthreads: BTreeMap<u64, Vt>,
    steps: usize,
}

impl Sched {
    fn admit_pending(&mut self) {
        for reg in self.hook.drain_pending() {
            self.vthreads.insert(
                reg.tag,
                Vt {
                    daemon: true,
                    hs: reg.hs,
                    state: VtState::Ready,
                    point: "spawn",
                },
            );
        }
    }

    fn apply_report(vt: &mut Vt, report: Report) {
        match report {
            Report::Paused { point, ready } => {
                vt.state = if ready { VtState::Ready } else { VtState::Blocked };
                vt.point = point.name();
            }
            Report::Finished => {
                vt.state = VtState::Finished;
                vt.point = "finish";
            }
            Report::Detached => {
                vt.state = VtState::Detached;
                vt.point = "detached";
            }
        }
    }

    /// Drives the schedule until every non-daemon thread finished. Records
    /// decisions into `trace` if given.
    fn drive(
        &mut self,
        schedule: &mut dyn Schedule,
        mut trace: Option<&mut Trace>,
        max_steps: usize,
    ) -> Result<(), Violation> {
        loop {
            self.admit_pending();
            // Poll blocked threads: grants/messages produced by the last step
            // may have made them runnable.
            let blocked: Vec<u64> = self
                .vthreads
                .iter()
                .filter(|(_, v)| v.state == VtState::Blocked)
                .map(|(&t, _)| t)
                .collect();
            for tag in blocked {
                let vt = self.vthreads.get_mut(&tag).unwrap();
                let report = vt.hs.command(Cmd::Poll);
                Self::apply_report(vt, report);
            }
            if self
                .vthreads
                .values()
                .filter(|v| !v.daemon)
                .all(|v| v.state == VtState::Finished)
            {
                return Ok(());
            }
            let ready: Vec<u64> = self
                .vthreads
                .iter()
                .filter(|(_, v)| v.state == VtState::Ready)
                .map(|(&t, _)| t)
                .collect();
            if ready.is_empty() {
                let detail = self
                    .vthreads
                    .iter()
                    .filter(|(_, v)| v.state == VtState::Blocked && !v.daemon)
                    .map(|(t, v)| format!("t{t}@{}", v.point))
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(Violation::Stuck {
                    detail: format!("no runnable thread; blocked: [{detail}]"),
                });
            }
            if self.steps >= max_steps {
                return Err(Violation::StepBudget { steps: max_steps });
            }
            let choice = schedule.pick(&ready, self.steps);
            debug_assert!(ready.contains(&choice), "schedule picked a non-ready tag");
            let vt = self.vthreads.get_mut(&choice).unwrap();
            let report = vt.hs.command(Cmd::Step);
            Self::apply_report(vt, report);
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(choice, self.vthreads[&choice].point);
            }
            self.steps += 1;
        }
    }

    /// Detaches every still-governed thread (including never-admitted
    /// registrations). Detached daemons drain on their OS blocking paths.
    fn detach_all(&mut self) {
        let tags: Vec<u64> = self.vthreads.keys().copied().collect();
        for tag in tags {
            let vt = self.vthreads.get_mut(&tag).unwrap();
            if matches!(vt.state, VtState::Ready | VtState::Blocked) {
                let report = vt.hs.command(Cmd::Detach);
                Self::apply_report(vt, report);
            }
        }
        for reg in self.hook.drain_pending() {
            let _ = reg.hs.command(Cmd::Detach);
        }
    }
}

/// Spawns an OS thread that parks immediately and runs `f` under the
/// scheduler once first stepped.
fn spawn_vthread<F, R>(tag: u64, f: F) -> (Arc<Handshake>, JoinHandle<R>)
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let hs = Arc::new(Handshake::new());
    let hs2 = Arc::clone(&hs);
    let handle = std::thread::Builder::new()
        .name(format!("vthread-{tag}"))
        .spawn(move || {
            adopt_and_wait(hs2);
            let r = f();
            finish();
            r
        })
        .expect("spawn vthread");
    (hs, handle)
}

fn run_schedule(scenario: &Scenario, mut schedule: Box<dyn Schedule>, cfg: &CheckConfig) -> ScheduleRun {
    let _run = RUN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _chaos = ChaosGuard::set(cfg.mutation);
    let hook = Arc::new(CheckHook::new());
    esdb_sync::sched::install(hook.clone() as Arc<dyn esdb_sync::SchedHook>);
    let _uninstall = HookGuard;

    let mut trace = Trace::default();
    let db = Arc::new(Database::open(scenario.config.clone()));
    let recorder = Arc::new(Recorder::new());
    let conventional = matches!(scenario.config.execution, ExecutionModel::Conventional { .. });
    let panicked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    let mut sched = Sched {
        hook: Arc::clone(&hook),
        vthreads: BTreeMap::new(),
        steps: 0,
    };

    // Phase 1: setup on a dedicated init vthread (deterministic MinTag
    // stepping, untraced — identical for every schedule of this scenario).
    let (init_hs, init_handle) = {
        let db = Arc::clone(&db);
        let tables = scenario.tables.clone();
        let population = scenario.population.clone();
        let panicked = Arc::clone(&panicked);
        spawn_vthread(INIT_TAG, move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for (i, (name, arity)) in tables.iter().enumerate() {
                    let id = db.create_table(name, *arity).expect("create table");
                    assert_eq!(id, i as u32, "table ids must be creation-ordered");
                }
                if population.is_empty() {
                    return;
                }
                let ops: Vec<WorkloadOp> = population
                    .iter()
                    .map(|(table, key, row)| WorkloadOp::Insert {
                        table: *table,
                        key: *key,
                        row: row.clone(),
                    })
                    .collect();
                let spec = TxnSpec { kind: "setup", ops, may_fail: false };
                let outcome = db.run_spec(&spec);
                assert!(outcome.is_committed(), "population load failed: {outcome:?}");
            }));
            if let Err(p) = result {
                panicked.lock().unwrap().push(panic_message(p));
            }
        })
    };
    sched.vthreads.insert(
        INIT_TAG,
        Vt { daemon: false, hs: init_hs, state: VtState::Ready, point: "spawn" },
    );

    let setup = sched.drive(&mut MinTag, None, cfg.max_steps);
    if let Err(violation) = setup {
        sched.detach_all();
        std::mem::forget(init_handle);
        return ScheduleRun { violation: Some(violation), trace, committed: 0 };
    }
    init_handle.join().expect("init thread");
    if !panicked.lock().unwrap().is_empty() {
        sched.detach_all();
        let detail = panicked.lock().unwrap().join("; ");
        return ScheduleRun { violation: Some(Violation::Panic { detail }), trace, committed: 0 };
    }

    // Phase 2: exploration. One vthread per client, tags 0..n.
    let mut client_handles = Vec::new();
    for (tag, script) in scenario.clients.iter().enumerate() {
        let db = Arc::clone(&db);
        let script = script.clone();
        let recorder = Arc::clone(&recorder);
        let panicked = Arc::clone(&panicked);
        let retries = scenario.config.retries;
        let record = conventional;
        let (hs, handle) = spawn_vthread(tag as u64, move || {
            let mut outcomes = Vec::with_capacity(script.len());
            for spec in &script {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if record {
                        run_conventional_recorded(db.txn_manager(), retries, spec, &recorder)
                    } else {
                        db.run_spec(spec)
                    }
                }));
                match result {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(p) => {
                        panicked.lock().unwrap().push(panic_message(p));
                        break;
                    }
                }
            }
            outcomes
        });
        sched.vthreads.insert(
            tag as u64,
            Vt { daemon: false, hs, state: VtState::Ready, point: "spawn" },
        );
        client_handles.push(handle);
    }

    let explored = sched.drive(schedule.as_mut(), Some(&mut trace), cfg.max_steps);
    sched.detach_all();

    if let Err(violation) = explored {
        // Diagnostic path: abandon unfinished clients (bounded leak) — the
        // database cannot be safely inspected while they still run.
        for handle in client_handles {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                std::mem::forget(handle);
            }
        }
        return ScheduleRun { violation: Some(violation), trace, committed: 0 };
    }

    let outcomes: Vec<Vec<SpecOutcome>> = client_handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    let committed = outcomes
        .iter()
        .flatten()
        .filter(|o| o.is_committed())
        .count() as u64;

    if !panicked.lock().unwrap().is_empty() {
        let detail = panicked.lock().unwrap().join("; ");
        return ScheduleRun { violation: Some(Violation::Panic { detail }), trace, committed };
    }

    // Oracle 1: a must-succeed transaction may lose a conflict fight (an
    // adversarial schedule can starve it until its retries exhaust — that is
    // wait-die / lock-timeout behaving as documented), but it must never
    // fail *logically*: a missing or duplicate key in these scenarios means
    // isolation broke.
    for (client, script) in scenario.clients.iter().enumerate() {
        for (i, spec) in script.iter().enumerate() {
            if !spec.may_fail && outcomes[client][i] == SpecOutcome::LogicalFailure {
                return ScheduleRun {
                    violation: Some(Violation::Invariant {
                        name: "no-logical-failure".into(),
                        detail: format!(
                            "client {client} txn {i} ({}) failed logically",
                            spec.kind
                        ),
                    }),
                    trace,
                    committed,
                };
            }
        }
    }

    // Oracle 2: conflict-graph serializability (conventional runs record
    // full read/write sets; DORA correctness is covered by invariants).
    if conventional {
        if let Some(detail) = recorder.serializability_violation() {
            return ScheduleRun {
                violation: Some(Violation::Serializability { detail }),
                trace,
                committed,
            };
        }
    }

    // Oracle 3: scenario invariants over the quiesced end state.
    let view = RunView { db: &db, clients: &scenario.clients, outcomes: &outcomes };
    for inv in &scenario.invariants {
        if let Err(detail) = (inv.check)(&view) {
            return ScheduleRun {
                violation: Some(Violation::Invariant { name: inv.name.into(), detail }),
                trace,
                committed,
            };
        }
    }

    ScheduleRun { violation: None, trace, committed }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_string()
    }
}

// ---------------------------------------------------------------------------
// Recorded conventional execution (mirrors core::spec_exec::apply_ops, with
// every successful access stamped into the history recorder)
// ---------------------------------------------------------------------------

fn run_conventional_recorded(
    mgr: &Arc<TxnManager>,
    retries: usize,
    spec: &TxnSpec,
    rec: &Recorder,
) -> SpecOutcome {
    let mut attempt = 0;
    loop {
        let mut txn = mgr.begin();
        let id = txn.id();
        match apply_ops_recorded(&mut txn, spec, rec) {
            Ok(reads) => {
                txn.commit();
                rec.commit(id);
                return SpecOutcome::Committed { reads };
            }
            Err(e) => {
                txn.abort();
                match e {
                    TxnError::Lock(_) if attempt < retries => attempt += 1,
                    TxnError::Lock(_) => return SpecOutcome::ConflictFailure,
                    _ => return SpecOutcome::LogicalFailure,
                }
            }
        }
    }
}

fn apply_ops_recorded(
    txn: &mut esdb_txn::Txn,
    spec: &TxnSpec,
    rec: &Recorder,
) -> Result<Vec<Option<Vec<i64>>>, TxnError> {
    let id = txn.id();
    let mut reads: Vec<Option<Vec<i64>>> = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        match op {
            WorkloadOp::Read { table, key } => {
                let row = txn.read(*table, *key)?;
                rec.record(id, *table, *key, false);
                reads.push(Some(row));
            }
            WorkloadOp::Write { table, key, row } => {
                txn.update(*table, *key, row)?;
                rec.record(id, *table, *key, true);
                reads.push(None);
            }
            WorkloadOp::Add { table, key, col, delta } => {
                let before = txn.read_for_update(*table, *key)?;
                rec.record(id, *table, *key, true);
                let mut after = before.clone();
                if *col >= after.len() {
                    return Err(TxnError::Storage(
                        esdb_storage::StorageError::ArityMismatch {
                            expected: after.len(),
                            got: *col + 1,
                        },
                    ));
                }
                after[*col] += delta;
                txn.update(*table, *key, &after)?;
                rec.record(id, *table, *key, true);
                reads.push(Some(before));
            }
            WorkloadOp::Insert { table, key, row } => {
                txn.insert(*table, *key, row)?;
                rec.record(id, *table, *key, true);
                reads.push(None);
            }
            WorkloadOp::Delete { table, key } => {
                let before = txn.delete(*table, *key)?;
                rec.record(id, *table, *key, true);
                reads.push(Some(before));
            }
        }
    }
    Ok(reads)
}
