//! # esdb-check — deterministic-interleaving concurrency checking
//!
//! Runs the *real* engine — lock manager, transaction manager, WAL policies,
//! DORA executors — on virtual cooperative threads under a seeded scheduler,
//! and checks every explored interleaving against a serializability oracle
//! and scenario invariants.
//!
//! The moving parts:
//!
//! * **Yield-point seam** — `esdb-sync`'s [`esdb_sync::sched`] module routes
//!   every blocking edge of the engine (lock waits, latch parks, commit/log
//!   waits, DORA rendezvous and executor receives) through a pluggable
//!   [`esdb_sync::SchedHook`]. Production pays one relaxed atomic load.
//! * **Virtual threads** — each scenario client (and each engine-internal
//!   executor) is a real OS thread serialized through a command/report
//!   handshake: at most one runs at any moment, and it only advances when
//!   the scheduler steps it.
//! * **Strategies** — uniform [`Strategy::RandomWalk`] and priority-based
//!   [`Strategy::Pct`] exploration, both fully determined by a seed.
//! * **Oracles** — a history [`Recorder`] feeding a conflict-graph
//!   serializability checker, plus per-scenario end-state invariants
//!   (TPC-B money conservation, snapshot consistency, must-commit).
//! * **Replay & shrink** — a failing seed replays byte-identically; a greedy
//!   shrinker deletes schedule segments while the failure persists, leaving
//!   a minimal yield trace for the bug report.
//!
//! ```no_run
//! use esdb_check::{check, tpcb_micro, CheckConfig, Strategy};
//! use esdb_core::EngineConfig;
//!
//! let scenario = tpcb_micro(EngineConfig::conventional_baseline(), 3, 4, 42);
//! let report = check(&scenario, &CheckConfig {
//!     schedules: 100,
//!     strategy: Strategy::Pct { depth: 3 },
//!     ..CheckConfig::default()
//! });
//! assert!(report.failure.is_none(), "{}", report.failure.unwrap());
//! ```

mod dist;
mod history;
mod migrate;
mod runner;
mod scenario;
mod schedule;
mod vthread;

pub use dist::{DistEvent, DistViolation, FailoverOracle};
pub use migrate::{MigEvent, MigViolation, MigrationOracle};
pub use history::{Event, Recorder};
pub use runner::{
    check, replay, CheckConfig, CheckReport, FailureReport, Mutation, ScheduleRunPublic,
    Violation,
};
pub use scenario::{
    htap_snapshot, tpcb_micro, tpcb_tables, transfer_snapshot, Invariant, RunView, Scenario,
    HTAP_ACCOUNTS, TRANSFER_ACCOUNTS,
};
pub use schedule::{Strategy, Trace, TraceStep};
