//! Migration-history oracle for online rebalancing.
//!
//! The rebalancing torture harness (`crates/rebal/tests/`) records what
//! the routed clients and the shards observed during a live slot
//! migration as [`MigEvent`]s, and [`MigrationOracle::check`] decides
//! whether the run upheld the rebalancing invariants:
//!
//! 1. **No row is lost and none is duplicated** — after the migration
//!    settles, every key whose last committed write put value `v` exists
//!    on exactly one shard with value `v`; every key whose last committed
//!    operation deleted it exists nowhere.
//! 2. **Single write-admitting owner** — at no instant do two shards both
//!    admit writes for the moving slot, and no shard ever admits a write
//!    for a slot it does not own. (The source may remain *nominally*
//!    owned while fenced; the oracle judges admission, which the fence
//!    blocks — so harnesses record ownership transitions as they become
//!    admission-effective.)
//!
//! Unlike the failover oracle, **event order matters**: ownership is a
//! time-varying predicate the write stream is judged against, so the
//! harness records events in its scripted order. The oracle is pure
//! bookkeeping over recorded facts; it runs no engine code.

use std::collections::{HashMap, HashSet};

/// One observed fact in a rebalancing run, in harness order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigEvent {
    /// From this point in the run, `shard` does (`owned`) or does not
    /// admit writes for `slot`.
    Own {
        /// Torture-harness shard id.
        shard: u32,
        /// The hash slot.
        slot: u32,
        /// Whether the shard now admits writes for it.
        owned: bool,
    },
    /// A committed write of `val` to `key` (which hashes to `slot`) was
    /// admitted by `shard`.
    Write {
        /// The admitting shard.
        shard: u32,
        /// The key's hash slot.
        slot: u32,
        /// Key.
        key: u64,
        /// The committed value (first column — enough to fingerprint).
        val: i64,
    },
    /// A committed delete of `key` was admitted by `shard`.
    Delete {
        /// The admitting shard.
        shard: u32,
        /// The key's hash slot.
        slot: u32,
        /// Key.
        key: u64,
    },
    /// End-state fact: the final scan of `shard` found `key` = `val`.
    FinalRow {
        /// The shard holding the row.
        shard: u32,
        /// Key.
        key: u64,
        /// Stored value (first column).
        val: i64,
    },
}

/// A rebalancing-invariant violation. `Display` carries the full story so
/// a torture-harness failure message is self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigViolation {
    /// Two shards both admitted writes for the slot at the same instant.
    DualOwnership {
        /// The contested slot.
        slot: u32,
        /// The two owners.
        shards: (u32, u32),
    },
    /// A shard admitted a write (or delete) for a slot it did not own.
    WriteWithoutOwnership {
        /// The offending shard.
        shard: u32,
        /// The slot it did not own.
        slot: u32,
        /// The key it nonetheless mutated.
        key: u64,
    },
    /// Invariant 1 broken (loss side): the key's last committed write is
    /// missing from every shard's final state.
    LostRow {
        /// The lost key.
        key: u64,
        /// The value its last committed write stored.
        expected: i64,
    },
    /// Invariant 1 broken (duplication side): the key exists on two
    /// shards after the migration settled.
    DuplicateRow {
        /// The duplicated key.
        key: u64,
        /// The two holders.
        shards: (u32, u32),
    },
    /// The key survives on exactly one shard but with a value no
    /// committed write produced last.
    WrongValue {
        /// The key.
        key: u64,
        /// The last committed value.
        expected: i64,
        /// What the final scan found.
        got: i64,
    },
    /// A key that was deleted (or never written) haunts a shard's final
    /// state — e.g. a source cleanup that missed, or a stale copy the
    /// delta ship should have removed.
    GhostRow {
        /// The haunted shard.
        shard: u32,
        /// The key.
        key: u64,
    },
}

impl std::fmt::Display for MigViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigViolation::DualOwnership { slot, shards } => write!(
                f,
                "dual ownership: shards {} and {} both admitted writes for slot {slot}",
                shards.0, shards.1
            ),
            MigViolation::WriteWithoutOwnership { shard, slot, key } => write!(
                f,
                "write without ownership: shard {shard} mutated key {key} in slot {slot} it did not own"
            ),
            MigViolation::LostRow { key, expected } => write!(
                f,
                "row lost in migration: key {key} (last committed value {expected}) absent from every shard"
            ),
            MigViolation::DuplicateRow { key, shards } => write!(
                f,
                "row duplicated by migration: key {key} present on shards {} and {}",
                shards.0, shards.1
            ),
            MigViolation::WrongValue { key, expected, got } => write!(
                f,
                "stale row after migration: key {key} holds {got}, last committed write was {expected}"
            ),
            MigViolation::GhostRow { shard, key } => write!(
                f,
                "ghost row after migration: key {key} on shard {shard} was deleted or never committed"
            ),
        }
    }
}

impl std::error::Error for MigViolation {}

/// Accumulates [`MigEvent`]s from a rebalancing run (in harness order) and
/// checks the invariants.
#[derive(Debug, Default)]
pub struct MigrationOracle {
    events: Vec<MigEvent>,
}

impl MigrationOracle {
    /// An empty history.
    pub fn new() -> MigrationOracle {
        MigrationOracle::default()
    }

    /// Records one observed fact. Order is significant: ownership
    /// transitions apply to every later write.
    pub fn record(&mut self, event: MigEvent) {
        self.events.push(event);
    }

    /// The recorded history, for failure reports.
    pub fn events(&self) -> &[MigEvent] {
        &self.events
    }

    /// Checks every invariant, returning the first violation found.
    /// Ownership violations surface during replay; end-state violations
    /// (duplication first — it implies the cleanup failed) after it.
    pub fn check(&self) -> Result<(), MigViolation> {
        // Replay: ownership as a time-varying predicate over the stream.
        let mut owners: HashMap<u32, HashSet<u32>> = HashMap::new();
        let mut expected: HashMap<u64, Option<i64>> = HashMap::new();
        for e in &self.events {
            match e {
                MigEvent::Own { shard, slot, owned } => {
                    let set = owners.entry(*slot).or_default();
                    if *owned {
                        set.insert(*shard);
                        if set.len() > 1 {
                            let mut two: Vec<u32> = set.iter().copied().collect();
                            two.sort_unstable();
                            return Err(MigViolation::DualOwnership {
                                slot: *slot,
                                shards: (two[0], two[1]),
                            });
                        }
                    } else {
                        set.remove(shard);
                    }
                }
                MigEvent::Write { shard, slot, key, val } => {
                    if !owners.get(slot).is_some_and(|s| s.contains(shard)) {
                        return Err(MigViolation::WriteWithoutOwnership {
                            shard: *shard,
                            slot: *slot,
                            key: *key,
                        });
                    }
                    expected.insert(*key, Some(*val));
                }
                MigEvent::Delete { shard, slot, key } => {
                    if !owners.get(slot).is_some_and(|s| s.contains(shard)) {
                        return Err(MigViolation::WriteWithoutOwnership {
                            shard: *shard,
                            slot: *slot,
                            key: *key,
                        });
                    }
                    expected.insert(*key, None);
                }
                MigEvent::FinalRow { .. } => {}
            }
        }
        // End state: every key on exactly the shard its history demands.
        let mut found: HashMap<u64, Vec<(u32, i64)>> = HashMap::new();
        for e in &self.events {
            if let MigEvent::FinalRow { shard, key, val } = e {
                found.entry(*key).or_default().push((*shard, *val));
            }
        }
        for (key, holders) in &found {
            if holders.len() > 1 {
                return Err(MigViolation::DuplicateRow {
                    key: *key,
                    shards: (holders[0].0, holders[1].0),
                });
            }
        }
        for (key, want) in &expected {
            match (want, found.get(key).map(|h| h[0])) {
                (Some(v), None) => return Err(MigViolation::LostRow { key: *key, expected: *v }),
                (Some(v), Some((_, got))) if got != *v => {
                    return Err(MigViolation::WrongValue { key: *key, expected: *v, got })
                }
                (None, Some((shard, _))) => {
                    return Err(MigViolation::GhostRow { shard, key: *key })
                }
                _ => {}
            }
        }
        for (key, holders) in &found {
            if !expected.contains_key(key) {
                return Err(MigViolation::GhostRow { shard: holders[0].0, key: *key });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-behaved migration: writes on the source, cutover, writes on
    /// the destination, rows end up exactly once.
    fn clean_history() -> MigrationOracle {
        let mut o = MigrationOracle::new();
        o.record(MigEvent::Own { shard: 0, slot: 3, owned: true });
        o.record(MigEvent::Write { shard: 0, slot: 3, key: 10, val: 1 });
        o.record(MigEvent::Write { shard: 0, slot: 3, key: 11, val: 2 });
        o.record(MigEvent::Delete { shard: 0, slot: 3, key: 11 });
        // Cutover: source releases before destination adopts.
        o.record(MigEvent::Own { shard: 0, slot: 3, owned: false });
        o.record(MigEvent::Own { shard: 1, slot: 3, owned: true });
        o.record(MigEvent::Write { shard: 1, slot: 3, key: 10, val: 5 });
        o.record(MigEvent::FinalRow { shard: 1, key: 10, val: 5 });
        o
    }

    #[test]
    fn clean_migration_history_passes() {
        clean_history().check().unwrap();
    }

    #[test]
    fn overlapping_ownership_is_dual_ownership() {
        let mut o = MigrationOracle::new();
        o.record(MigEvent::Own { shard: 0, slot: 3, owned: true });
        o.record(MigEvent::Own { shard: 1, slot: 3, owned: true });
        assert_eq!(
            o.check(),
            Err(MigViolation::DualOwnership { slot: 3, shards: (0, 1) })
        );
    }

    #[test]
    fn a_write_on_a_non_owner_is_flagged() {
        let mut o = MigrationOracle::new();
        o.record(MigEvent::Own { shard: 0, slot: 3, owned: true });
        o.record(MigEvent::Write { shard: 1, slot: 3, key: 9, val: 1 });
        assert_eq!(
            o.check(),
            Err(MigViolation::WriteWithoutOwnership { shard: 1, slot: 3, key: 9 })
        );
    }

    #[test]
    fn a_missing_final_row_is_a_lost_row() {
        let mut o = clean_history();
        o.record(MigEvent::Write { shard: 1, slot: 3, key: 12, val: 9 });
        assert_eq!(o.check(), Err(MigViolation::LostRow { key: 12, expected: 9 }));
    }

    #[test]
    fn a_row_on_both_shards_is_a_duplicate() {
        let mut o = clean_history();
        // The source cleanup missed: key 10 still on shard 0 too.
        o.record(MigEvent::FinalRow { shard: 0, key: 10, val: 1 });
        assert_eq!(
            o.check(),
            Err(MigViolation::DuplicateRow { key: 10, shards: (1, 0) })
        );
    }

    #[test]
    fn a_stale_value_is_flagged() {
        let mut o = MigrationOracle::new();
        o.record(MigEvent::Own { shard: 0, slot: 3, owned: true });
        o.record(MigEvent::Write { shard: 0, slot: 3, key: 10, val: 7 });
        o.record(MigEvent::FinalRow { shard: 0, key: 10, val: 1 });
        assert_eq!(
            o.check(),
            Err(MigViolation::WrongValue { key: 10, expected: 7, got: 1 })
        );
    }

    #[test]
    fn a_deleted_or_unknown_key_surviving_is_a_ghost() {
        let mut o = clean_history();
        // Key 11 was deleted before the cutover; a stale copy survives.
        o.record(MigEvent::FinalRow { shard: 1, key: 11, val: 2 });
        assert_eq!(o.check(), Err(MigViolation::GhostRow { shard: 1, key: 11 }));

        let mut o = clean_history();
        o.record(MigEvent::FinalRow { shard: 0, key: 999, val: 0 });
        assert_eq!(o.check(), Err(MigViolation::GhostRow { shard: 0, key: 999 }));
    }
}
