//! Distributed-history oracle for replication failover.
//!
//! The concurrency checker's serializability oracle judges interleavings
//! inside one engine; this module judges *histories across a replica set*
//! under crashes, partitions, and promotions. The failover torture harness
//! (`crates/repl/tests/failover_torture.rs`) records what each node and
//! client observed as [`DistEvent`]s, and [`FailoverOracle::check`] decides
//! whether the run upheld the two failover invariants:
//!
//! 1. **No quorum-acked commit is ever lost** — a commit acknowledged under
//!    a satisfied quorum must appear in the surviving history, across any
//!    promotion chain.
//! 2. **No divergent history is ever silently merged (or silently
//!    dropped)** — a commit decided by a deposed primary alone must never
//!    surface in the surviving history, and its disappearance must be
//!    accompanied by a typed divergence report naming it.
//!
//! A third structural invariant rides along: **one primary per term** —
//! two promotions claiming the same term is split-brain by construction.
//!
//! The oracle is pure bookkeeping over recorded facts; it runs no engine
//! code, so the same history can be re-checked (and shrunk) offline.

use std::collections::{HashMap, HashSet};

/// One observed fact in a failover run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistEvent {
    /// A client saw a commit acknowledged with its quorum satisfied while
    /// the primary served at `term`. This is the durability promise the
    /// oracle holds the system to.
    QuorumCommit {
        /// Transaction id as stamped in the WAL.
        txn: u64,
        /// The acknowledging primary's term.
        term: u64,
    },
    /// A client saw the typed `QuorumTimeout` degradation for `txn`: the
    /// commit is durable on its primary but its replication is unresolved.
    /// The oracle demands nothing of it except *non-silence*: if it later
    /// vanishes, a divergence report must name it.
    UnreplicatedCommit {
        /// Transaction id as stamped in the WAL.
        txn: u64,
        /// The term the commit was attempted under.
        term: u64,
    },
    /// Node `node` was promoted to primary at `term`.
    Promote {
        /// Torture-harness node id.
        node: u32,
        /// The claimed term.
        term: u64,
    },
    /// Node `node` surfaced a typed divergence report covering `txns`
    /// (commits it decided alone that the surviving history refused).
    DivergenceReported {
        /// The demoted node reporting.
        node: u32,
        /// Every transaction named in the report.
        txns: Vec<u64>,
    },
    /// End-state fact: `txn` is committed in the surviving history (the
    /// final primary's lineage after all faults resolved).
    Survives {
        /// Transaction id as stamped in the WAL.
        txn: u64,
    },
}

/// A failover-invariant violation. `Display` carries the full story so a
/// torture-harness failure message is self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistViolation {
    /// Invariant 1 broken: a quorum-acked commit is missing from the
    /// surviving history.
    LostQuorumCommit {
        /// The lost transaction.
        txn: u64,
        /// The term it was acknowledged under.
        term: u64,
    },
    /// Invariant 2 broken (merge side): a transaction named in a divergence
    /// report nonetheless appears in the surviving history.
    SilentMerge {
        /// The merged transaction.
        txn: u64,
    },
    /// Invariant 2 broken (silence side): a commit vanished from the
    /// surviving history with no divergence report naming it.
    SilentLoss {
        /// The vanished transaction.
        txn: u64,
        /// The term it was committed under.
        term: u64,
    },
    /// Split-brain by construction: two promotions claimed the same term.
    DualPrimacy {
        /// The contested term.
        term: u64,
        /// The two claimants.
        nodes: (u32, u32),
    },
}

impl std::fmt::Display for DistViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistViolation::LostQuorumCommit { txn, term } => write!(
                f,
                "quorum-acked commit lost: txn {txn} (acked at term {term}) absent from the surviving history"
            ),
            DistViolation::SilentMerge { txn } => write!(
                f,
                "divergent commit merged: txn {txn} was reported divergent yet survives"
            ),
            DistViolation::SilentLoss { txn, term } => write!(
                f,
                "commit vanished silently: txn {txn} (term {term}) neither survives nor appears in any divergence report"
            ),
            DistViolation::DualPrimacy { term, nodes } => write!(
                f,
                "split brain: nodes {} and {} both claimed term {term}",
                nodes.0, nodes.1
            ),
        }
    }
}

impl std::error::Error for DistViolation {}

/// Accumulates [`DistEvent`]s from a failover run and checks the invariants.
#[derive(Debug, Default)]
pub struct FailoverOracle {
    events: Vec<DistEvent>,
}

impl FailoverOracle {
    /// An empty history.
    pub fn new() -> FailoverOracle {
        FailoverOracle::default()
    }

    /// Records one observed fact. Order is irrelevant to the verdict — the
    /// invariants are over the *set* of facts — so racing observers may
    /// record in any interleaving.
    pub fn record(&mut self, event: DistEvent) {
        self.events.push(event);
    }

    /// The recorded history, for failure reports.
    pub fn events(&self) -> &[DistEvent] {
        &self.events
    }

    /// Checks every invariant, returning the first violation found (quorum
    /// losses first — they are the gravest).
    pub fn check(&self) -> Result<(), DistViolation> {
        let mut survivors: HashSet<u64> = HashSet::new();
        let mut reported: HashSet<u64> = HashSet::new();
        let mut claimants: HashMap<u64, u32> = HashMap::new();
        for e in &self.events {
            match e {
                DistEvent::Survives { txn } => {
                    survivors.insert(*txn);
                }
                DistEvent::DivergenceReported { txns, .. } => {
                    reported.extend(txns.iter().copied());
                }
                DistEvent::Promote { node, term } => {
                    if let Some(prev) = claimants.insert(*term, *node) {
                        if prev != *node {
                            return Err(DistViolation::DualPrimacy {
                                term: *term,
                                nodes: (prev, *node),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        for e in &self.events {
            if let DistEvent::QuorumCommit { txn, term } = e {
                if !survivors.contains(txn) {
                    return Err(DistViolation::LostQuorumCommit { txn: *txn, term: *term });
                }
            }
        }
        for txn in &reported {
            if survivors.contains(txn) {
                return Err(DistViolation::SilentMerge { txn: *txn });
            }
        }
        for e in &self.events {
            let (txn, term) = match e {
                DistEvent::QuorumCommit { txn, term }
                | DistEvent::UnreplicatedCommit { txn, term } => (*txn, *term),
                _ => continue,
            };
            if !survivors.contains(&txn) && !reported.contains(&txn) {
                return Err(DistViolation::SilentLoss { txn, term });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_failover_history_passes() {
        let mut o = FailoverOracle::new();
        o.record(DistEvent::QuorumCommit { txn: 1, term: 1 });
        o.record(DistEvent::UnreplicatedCommit { txn: 2, term: 1 });
        o.record(DistEvent::Promote { node: 1, term: 2 });
        // Txn 2 was old-primary-only; the demoted node reported it.
        o.record(DistEvent::DivergenceReported { node: 0, txns: vec![2] });
        o.record(DistEvent::Survives { txn: 1 });
        assert_eq!(o.check(), Ok(()));
    }

    #[test]
    fn lost_quorum_commit_is_flagged() {
        let mut o = FailoverOracle::new();
        o.record(DistEvent::QuorumCommit { txn: 7, term: 1 });
        o.record(DistEvent::Promote { node: 1, term: 2 });
        // Even a divergence report does not excuse losing a *quorum-acked*
        // commit — the promotion should have preserved it.
        o.record(DistEvent::DivergenceReported { node: 0, txns: vec![7] });
        assert_eq!(o.check(), Err(DistViolation::LostQuorumCommit { txn: 7, term: 1 }));
    }

    #[test]
    fn divergent_commit_surviving_is_a_merge() {
        let mut o = FailoverOracle::new();
        o.record(DistEvent::UnreplicatedCommit { txn: 9, term: 1 });
        o.record(DistEvent::DivergenceReported { node: 0, txns: vec![9] });
        o.record(DistEvent::Survives { txn: 9 });
        assert_eq!(o.check(), Err(DistViolation::SilentMerge { txn: 9 }));
    }

    #[test]
    fn unreported_vanished_commit_is_silent_loss() {
        let mut o = FailoverOracle::new();
        o.record(DistEvent::UnreplicatedCommit { txn: 4, term: 3 });
        assert_eq!(o.check(), Err(DistViolation::SilentLoss { txn: 4, term: 3 }));
    }

    #[test]
    fn two_claimants_for_one_term_is_split_brain() {
        let mut o = FailoverOracle::new();
        o.record(DistEvent::Promote { node: 1, term: 2 });
        o.record(DistEvent::Promote { node: 2, term: 2 });
        assert_eq!(
            o.check(),
            Err(DistViolation::DualPrimacy { term: 2, nodes: (1, 2) })
        );
    }
}
