//! Schedule strategies, recorded traces, and the greedy shrinker.
//!
//! A schedule strategy decides, at every step, which ready virtual thread
//! runs next. Two exploration strategies are provided:
//!
//! * **Random walk** — uniform choice over the ready set; good breadth.
//! * **PCT** (probabilistic concurrency testing) — every thread gets a random
//!   priority on first sight and the highest-priority ready thread always
//!   runs, except at `depth` randomly chosen change points where the current
//!   leader is demoted below everyone. PCT finds bugs of small "depth" (few
//!   forced preemptions) with provable probability.
//!
//! A run records its choices as a [`Trace`]; replaying a trace through
//! [`ReplaySchedule`] reproduces the run byte-identically (the engine under
//! the scheduler is deterministic). The shrinker deletes whole same-thread
//! segments of a failing trace while the failure persists, yielding a
//! minimal yield trace for the bug report.

use esdb_workload::Rng;
use std::collections::HashMap;

/// Which exploration strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Uniform random choice at every step.
    RandomWalk,
    /// PCT-style priority schedule with `depth` change points.
    Pct {
        /// Number of priority-change points per schedule.
        depth: usize,
    },
}

/// Per-step scheduling policy over ready thread tags.
pub(crate) trait Schedule {
    /// Picks one of `ready` (non-empty, sorted ascending) at step `step`.
    fn pick(&mut self, ready: &[u64], step: usize) -> u64;
}

/// Uniform random walk over the ready set.
pub(crate) struct RandomWalk {
    rng: Rng,
}

impl RandomWalk {
    pub(crate) fn new(seed: u64) -> Self {
        RandomWalk { rng: Rng::new(seed) }
    }
}

impl Schedule for RandomWalk {
    fn pick(&mut self, ready: &[u64], _step: usize) -> u64 {
        ready[self.rng.below(ready.len() as u64) as usize]
    }
}

/// PCT-style priority schedule.
pub(crate) struct Pct {
    rng: Rng,
    /// Thread priority; larger runs first. Initial priorities live in
    /// `[DEMOTE_CEILING, ..)`, demotions count down from below it, so a
    /// demoted thread ranks under every undemoted one.
    prio: HashMap<u64, u64>,
    /// Remaining change points (ascending step indices).
    change_at: Vec<usize>,
    next_demotion: u64,
}

const DEMOTE_CEILING: u64 = 1 << 32;

impl Pct {
    pub(crate) fn new(seed: u64, depth: usize, max_steps: usize) -> Self {
        let mut rng = Rng::new(seed);
        let mut change_at: Vec<usize> = (0..depth)
            .map(|_| rng.below(max_steps.max(1) as u64) as usize)
            .collect();
        change_at.sort_unstable();
        Pct {
            rng,
            prio: HashMap::new(),
            change_at,
            next_demotion: DEMOTE_CEILING - 1,
        }
    }
}

impl Schedule for Pct {
    fn pick(&mut self, ready: &[u64], step: usize) -> u64 {
        for &t in ready {
            if !self.prio.contains_key(&t) {
                let p = DEMOTE_CEILING + self.rng.below(DEMOTE_CEILING);
                self.prio.insert(t, p);
            }
        }
        let leader = |prio: &HashMap<u64, u64>| {
            *ready
                .iter()
                .max_by_key(|t| (prio[t], u64::MAX - **t)) // tie: smaller tag
                .unwrap()
        };
        while self.change_at.first().is_some_and(|&c| c <= step) {
            self.change_at.remove(0);
            let top = leader(&self.prio);
            self.prio.insert(top, self.next_demotion);
            self.next_demotion -= 1;
        }
        leader(&self.prio)
    }
}

/// Always the smallest ready tag: the deterministic "setup" schedule used
/// while the init thread populates the database.
pub(crate) struct MinTag;

impl Schedule for MinTag {
    fn pick(&mut self, ready: &[u64], _step: usize) -> u64 {
        ready[0]
    }
}

/// Replays a recorded choice sequence. If a recorded choice is not ready
/// (possible mid-shrink, when deleted segments shifted the run), falls back
/// to the smallest ready tag; past the end of the recording it also picks
/// the smallest ready tag, so replay is total.
pub(crate) struct ReplaySchedule {
    choices: Vec<u64>,
    pos: usize,
}

impl ReplaySchedule {
    pub(crate) fn new(choices: Vec<u64>) -> Self {
        ReplaySchedule { choices, pos: 0 }
    }
}

impl Schedule for ReplaySchedule {
    fn pick(&mut self, ready: &[u64], _step: usize) -> u64 {
        let c = self.choices.get(self.pos).copied();
        self.pos += 1;
        match c {
            Some(t) if ready.contains(&t) => t,
            _ => ready[0],
        }
    }
}

/// One recorded scheduling decision: which thread ran, and the label of the
/// yield point it stopped at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Virtual thread tag (clients count from 0, executors from 1000).
    pub tag: u64,
    /// Label of the yield point the thread paused at ("finish" at exit).
    pub point: &'static str,
}

/// A recorded schedule: the input to byte-identical replay and shrinking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The scheduling decisions, in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    pub(crate) fn push(&mut self, tag: u64, point: &'static str) {
        self.steps.push(TraceStep { tag, point });
    }

    /// The chosen-thread sequence (what replay consumes).
    pub fn choices(&self) -> Vec<u64> {
        self.steps.iter().map(|s| s.tag).collect()
    }

    /// Human-readable rendering with same-thread runs compressed:
    /// `t0:lock-acquire*3 t1000:exec-recv …`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut i = 0;
        while i < self.steps.len() {
            let s = self.steps[i];
            let mut n = 1;
            while i + n < self.steps.len()
                && self.steps[i + n].tag == s.tag
                && self.steps[i + n].point == s.point
            {
                n += 1;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!("t{}:{}", s.tag, s.point));
            if n > 1 {
                out.push_str(&format!("*{n}"));
            }
            i += n;
        }
        out
    }
}

/// Greedily shrinks a failing choice sequence: repeatedly try deleting each
/// maximal same-thread segment and keep any deletion under which `replay`
/// still reports a failure of the same kind. `replay` returns the failure
/// kind label (or `None` if the shrunk schedule no longer fails). Bounded by
/// `budget` replays.
pub(crate) fn shrink_trace(
    choices: &[u64],
    target_kind: &str,
    mut replay: impl FnMut(&[u64]) -> Option<String>,
    budget: usize,
) -> Vec<u64> {
    let mut best: Vec<u64> = choices.to_vec();
    let mut replays = 0;
    let mut progress = true;
    while progress && replays < budget {
        progress = false;
        // Segment boundaries over the current best.
        let mut seg_starts = vec![0usize];
        for i in 1..best.len() {
            if best[i] != best[i - 1] {
                seg_starts.push(i);
            }
        }
        seg_starts.push(best.len());
        // Try deleting segments, longest first (fastest shrink).
        let mut segs: Vec<(usize, usize)> = seg_starts
            .windows(2)
            .map(|w| (w[0], w[1]))
            .collect();
        segs.sort_by_key(|&(a, b)| std::cmp::Reverse(b - a));
        for (a, b) in segs {
            if replays >= budget {
                break;
            }
            let mut candidate = Vec::with_capacity(best.len() - (b - a));
            candidate.extend_from_slice(&best[..a]);
            candidate.extend_from_slice(&best[b..]);
            replays += 1;
            if replay(&candidate).as_deref() == Some(target_kind) {
                best = candidate;
                progress = true;
                break; // segment indices are stale; recompute
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let ready = [1u64, 2, 3, 7];
        let picks = |seed| {
            let mut s = RandomWalk::new(seed);
            (0..32).map(|i| s.pick(&ready, i)).collect::<Vec<_>>()
        };
        assert_eq!(picks(9), picks(9));
        assert_ne!(picks(9), picks(10));
    }

    #[test]
    fn pct_runs_leader_until_demoted() {
        let mut s = Pct::new(3, 0, 100); // no change points
        let ready = [1u64, 2, 3];
        let first = s.pick(&ready, 0);
        for i in 1..20 {
            assert_eq!(s.pick(&ready, i), first);
        }
    }

    #[test]
    fn pct_demotion_changes_leader() {
        let mut s = Pct::new(3, 1, 100); // one change point in [0, 100)
        let cp = s.change_at[0];
        let ready = [1u64, 2, 3];
        let picks: Vec<u64> = (0..100).map(|i| s.pick(&ready, i)).collect();
        // Constant leader before the change point, then a different constant
        // leader (the demoted thread ranks below every undemoted one).
        assert!(picks[..cp].iter().all(|&p| p == picks[0]));
        assert!(picks[cp..].iter().all(|&p| p == picks[cp]));
        if cp > 0 {
            assert_ne!(picks[cp - 1], picks[cp]);
        }
    }

    #[test]
    fn replay_follows_recording_and_falls_back() {
        let mut s = ReplaySchedule::new(vec![5, 9, 2]);
        assert_eq!(s.pick(&[2, 5], 0), 5);
        assert_eq!(s.pick(&[2, 5], 1), 2); // 9 not ready → smallest
        assert_eq!(s.pick(&[2], 2), 2);
        assert_eq!(s.pick(&[4, 8], 3), 4); // past the end → smallest
    }

    #[test]
    fn trace_render_compresses_runs() {
        let mut t = Trace::default();
        t.push(0, "lock-acquire");
        t.push(0, "lock-acquire");
        t.push(1, "commit-log");
        assert_eq!(t.render(), "t0:lock-acquire*2 t1:commit-log");
    }

    #[test]
    fn shrinker_reaches_minimal_failing_subsequence() {
        // Failure := the sequence still contains a 2 followed (anywhere)
        // by a 3. Everything else is deletable noise.
        let choices = [1, 1, 2, 1, 1, 3, 1];
        let replay = |c: &[u64]| {
            let first2 = c.iter().position(|&t| t == 2)?;
            c[first2..].iter().any(|&t| t == 3).then(|| "bug".to_string())
        };
        let shrunk = shrink_trace(&choices, "bug", replay, 100);
        assert_eq!(shrunk, vec![2, 3]);
    }
}
