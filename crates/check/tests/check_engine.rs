//! End-to-end checker runs: clean sweeps over both execution models, plus
//! mutation smoke tests proving the oracles detect seeded engine bugs.
//!
//! The clean sweep explores `CHECK_SCHEDULES` seeded schedules in total
//! (default 500), split across scenario × engine-config × strategy cells.
//! Set `CHECK_SCHEDULES=50` for a quick local run.

use esdb_check::{
    check, htap_snapshot, replay, tpcb_micro, transfer_snapshot, CheckConfig, Mutation, Strategy,
    Violation,
};
use esdb_core::{EngineConfig, ExecutionModel};
use esdb_workload::TxnSpec;

fn total_schedules() -> usize {
    std::env::var("CHECK_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500)
}

fn conv_config() -> EngineConfig {
    EngineConfig {
        execution: ExecutionModel::Conventional { lock_partitions: 4 },
        ..EngineConfig::conventional_baseline()
    }
}

fn dora_config() -> EngineConfig {
    EngineConfig::scalable(2)
}

fn run_cell(name: &str, scenario: &esdb_check::Scenario, schedules: usize, strategy: Strategy) {
    let cfg = CheckConfig {
        schedules,
        base_seed: 0x5eed,
        strategy,
        ..CheckConfig::default()
    };
    let report = check(scenario, &cfg);
    assert!(
        report.failure.is_none(),
        "cell {name}: {}",
        report.failure.unwrap()
    );
    assert_eq!(report.schedules_run, schedules, "cell {name}");
    assert!(report.committed_total > 0, "cell {name}: nothing committed");
}

/// The headline acceptance test: N seeded schedules over both execution
/// models, both scenarios, both strategies — all clean on the unmodified
/// engine.
#[test]
fn clean_engine_passes_seeded_schedules() {
    let per_cell = (total_schedules() / 12).max(1);
    let cells: Vec<(&str, esdb_check::Scenario)> = vec![
        ("conv/tpcb", tpcb_micro(conv_config(), 3, 3, 11)),
        ("conv/transfer", transfer_snapshot(conv_config(), 2, 3, 2, 12)),
        ("dora/tpcb", tpcb_micro(dora_config(), 3, 3, 13)),
        ("dora/transfer", transfer_snapshot(dora_config(), 2, 3, 2, 14)),
        // HTAP: every seeded interleaving's WAL is replayed into a follower
        // and probed with pinned queries at every consistent cut.
        ("conv/htap", htap_snapshot(conv_config(), 2, 3, 15)),
        ("dora/htap", htap_snapshot(dora_config(), 2, 3, 16)),
    ];
    for (name, scenario) in &cells {
        run_cell(
            &format!("{name}/walk"),
            scenario,
            per_cell,
            Strategy::RandomWalk,
        );
        run_cell(
            &format!("{name}/pct"),
            scenario,
            per_cell,
            Strategy::Pct { depth: 3 },
        );
    }
}

/// A failing seed must replay byte-identically: same trace, same violation.
/// (Exercised on a mutated engine, where failures are plentiful.)
#[test]
fn failing_seed_replays_byte_identically() {
    let scenario = transfer_snapshot(conv_config(), 2, 3, 2, 21);
    let cfg = CheckConfig {
        schedules: 300,
        base_seed: 0xbad,
        strategy: Strategy::RandomWalk,
        mutation: Some(Mutation::ReleaseLocksEarly),
        ..CheckConfig::default()
    };
    let report = check(&scenario, &cfg);
    let failure = report
        .failure
        .expect("early lock release must be caught within the seed budget");
    assert!(failure.replayed, "replay diverged: {failure}");

    // And replaying the recorded choices once more from scratch still
    // reproduces the identical violation.
    let again = replay(&scenario, &cfg, &failure.trace.choices());
    assert_eq!(again.violation.as_ref(), Some(&failure.violation));
}

/// Mutation smoke: releasing locks before commit breaks two-phase locking;
/// the serializability or invariant oracle must notice, and the shrunk trace
/// must still fail the same way.
#[test]
fn detects_early_lock_release_mutation() {
    let scenario = tpcb_micro(conv_config(), 3, 3, 31);
    let cfg = CheckConfig {
        schedules: 300,
        base_seed: 0xe1e,
        strategy: Strategy::RandomWalk,
        mutation: Some(Mutation::ReleaseLocksEarly),
        ..CheckConfig::default()
    };
    let report = check(&scenario, &cfg);
    let failure = report
        .failure
        .expect("early lock release must be caught within the seed budget");
    assert!(
        matches!(
            failure.violation,
            Violation::Serializability { .. } | Violation::Invariant { .. }
        ),
        "unexpected violation class: {}",
        failure.violation
    );
    assert!(
        failure.shrunk.steps.len() <= failure.trace.steps.len(),
        "shrinker grew the trace"
    );
    assert_eq!(
        failure.shrunk_violation.kind(),
        failure.violation.kind(),
        "shrunk trace fails differently"
    );
    eprintln!("--- early-lock-release mutation detected ---\n{failure}");
}

/// Mutation smoke: disabling wait-die lets DORA executors co-own conflicting
/// keys; the snapshot-consistency invariant must notice.
#[test]
fn detects_wait_die_disabled_mutation() {
    let scenario = transfer_snapshot(dora_config(), 2, 3, 3, 41);
    let cfg = CheckConfig {
        schedules: 300,
        base_seed: 0xd1e,
        strategy: Strategy::RandomWalk,
        mutation: Some(Mutation::DisableWaitDie),
        ..CheckConfig::default()
    };
    let report = check(&scenario, &cfg);
    let failure = report
        .failure
        .expect("disabled wait-die must be caught within the seed budget");
    assert!(
        matches!(failure.violation, Violation::Invariant { .. }),
        "unexpected violation class: {}",
        failure.violation
    );
    assert_eq!(failure.shrunk_violation.kind(), failure.violation.kind());
    eprintln!("--- wait-die-disabled mutation detected ---\n{failure}");
}

/// Same seed, same scenario ⇒ the explored schedule itself is reproducible
/// (trace equality on a clean engine), which is what makes the seed in a
/// failure report meaningful.
#[test]
fn same_seed_same_trace() {
    let scenario = tpcb_micro(conv_config(), 2, 2, 51);
    let cfg = CheckConfig {
        schedules: 1,
        base_seed: 77,
        strategy: Strategy::RandomWalk,
        ..CheckConfig::default()
    };
    // A clean check records no trace publicly, so compare via replay of an
    // empty recording (MinTag fallback): two identical runs must agree on
    // the committed count and end state reachable through replay.
    let a = replay(&scenario, &cfg, &[]);
    let b = replay(&scenario, &cfg, &[]);
    assert_eq!(a.violation, b.violation);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.trace, b.trace);
    assert!(a.committed > 0);
}

/// The scenario scripts the checker replays are plain `TxnSpec`s — sanity
/// check the generator wiring (deterministic, non-trivial).
#[test]
fn scenario_scripts_are_deterministic() {
    let a = tpcb_micro(conv_config(), 3, 4, 99);
    let b = tpcb_micro(conv_config(), 3, 4, 99);
    let flat_a: Vec<&TxnSpec> = a.clients.iter().flatten().collect();
    let flat_b: Vec<&TxnSpec> = b.clients.iter().flatten().collect();
    assert_eq!(flat_a, flat_b);
    assert_eq!(flat_a.len(), 12);
}
