//! # esdb-wal — scalable write-ahead logging
//!
//! The keynote: *"often, parallelism needs to be extracted from seemingly
//! serial operations such as logging; extensive research in distributed
//! systems proves to be very useful in this context"* — referring to the
//! Aether line of work on scalable log managers.
//!
//! A write-ahead log is by definition a single serial byte stream; the naive
//! implementation holds one mutex across LSN allocation *and* the buffer
//! copy, so every transaction in the system serializes on it. This crate
//! provides the three designs that work compares:
//!
//! * [`serial::SerialLogBuffer`] — the baseline: one mutex around everything.
//! * [`decoupled::DecoupledLogBuffer`] — the mutex covers only LSN
//!   allocation; the (much longer) buffer fill proceeds in parallel.
//! * [`consolidated::ConsolidatedLogBuffer`] — a *consolidation array* in
//!   front of allocation: concurrent inserts combine into groups, and only
//!   one leader per group touches the allocation mutex.
//!
//! All three implement [`LogBuffer`] and are interchangeable beneath
//! [`Wal`], which adds record framing, commit-time group flush, and feeds
//! [`recovery`] (ARIES-style analysis / redo / undo over the storage layer).

pub mod buffer;
pub mod consolidated;
pub mod crc;
pub mod decoupled;
pub mod record;
pub mod recovery;
pub mod serial;
pub mod wal;

pub use buffer::{LogBuffer, LogFault, LsnRange};
pub use consolidated::ConsolidatedLogBuffer;
pub use decoupled::DecoupledLogBuffer;
pub use record::{LogBody, LogRecord, SalvagedLog, WalError};
pub use recovery::{apply_redo, checkpoint_redo_lsn, slice_from_checkpoint};
pub use serial::SerialLogBuffer;
pub use wal::{LogPolicy, Wal};

/// Log sequence number: a byte offset into the log stream. `0` is reserved as
/// the null LSN (the log begins at [`buffer::LOG_START`]).
pub type Lsn = u64;

/// The null LSN, used for "no previous record".
pub const NULL_LSN: Lsn = 0;
