//! Log record types and their wire format.
//!
//! Records are framed as `[len: u32][crc: u32][txn_id: u64][prev_lsn: u64]
//! [tag: u8][body…]`; a record's LSN is its byte offset in the log stream, so
//! the stream parses back into records without any side index. `prev_lsn`
//! chains each transaction's records for rollback and undo.
//!
//! The `crc` field is a CRC-32 over the `len` field and everything after the
//! checksum itself, so a bit flip anywhere in the frame — including a
//! corrupted length that still points inside the stream — fails verification.
//! Decoding is *total*: [`decode_stream_checked`] never panics, salvages the
//! longest valid prefix, and reports the first corruption with its offset and
//! reason as a [`WalError`]. An incomplete final record (the torn tail a
//! crash legitimately leaves behind) is not corruption and is silently
//! dropped, exactly as before.

use crate::crc::Crc32;
use crate::{Lsn, NULL_LSN};
use bytes::BufMut;
use esdb_storage::rid::Rid;
use esdb_storage::schema::TableId;

/// Smallest legal frame: len(4) + crc(4) + txn(8) + prev(8) + tag(1).
pub const MIN_RECORD: usize = 25;

/// Largest legal frame. Generously above anything [`encode`] produces
/// (bodies are a few rows of `i64`s); lengths beyond this are corruption,
/// not data.
pub const MAX_RECORD: usize = 1 << 22;

/// Why (and where) log decoding stopped before the end of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// The length field is outside `[MIN_RECORD, MAX_RECORD]`.
    BadLength {
        /// Stream offset (LSN) of the offending frame.
        offset: Lsn,
        /// The length the frame claimed.
        len: u32,
    },
    /// The stored CRC does not match the frame contents.
    BadChecksum {
        /// Stream offset (LSN) of the offending frame.
        offset: Lsn,
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the frame.
        computed: u32,
    },
    /// The frame passed its CRC but carries an unknown record tag.
    UnknownTag {
        /// Stream offset (LSN) of the offending frame.
        offset: Lsn,
        /// The unrecognised tag byte.
        tag: u8,
    },
    /// The frame passed its CRC but its body is shorter than the tag needs.
    TruncatedBody {
        /// Stream offset (LSN) of the offending frame.
        offset: Lsn,
    },
    /// The frame passed its CRC but has bytes left over after its body.
    TrailingGarbage {
        /// Stream offset (LSN) of the offending frame.
        offset: Lsn,
    },
}

impl WalError {
    /// Stream offset (LSN) where decoding stopped.
    pub fn offset(&self) -> Lsn {
        match self {
            WalError::BadLength { offset, .. }
            | WalError::BadChecksum { offset, .. }
            | WalError::UnknownTag { offset, .. }
            | WalError::TruncatedBody { offset }
            | WalError::TrailingGarbage { offset } => *offset,
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::BadLength { offset, len } => {
                write!(f, "bad record length {len} at lsn {offset}")
            }
            WalError::BadChecksum { offset, stored, computed } => write!(
                f,
                "checksum mismatch at lsn {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WalError::UnknownTag { offset, tag } => {
                write!(f, "unknown record tag {tag} at lsn {offset}")
            }
            WalError::TruncatedBody { offset } => {
                write!(f, "record body truncated at lsn {offset}")
            }
            WalError::TrailingGarbage { offset } => {
                write!(f, "trailing garbage inside record at lsn {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// The payload of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogBody {
    /// Transaction start.
    Begin,
    /// A tuple insert.
    Insert {
        /// Table the tuple belongs to.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Physical address assigned.
        rid: Rid,
        /// The inserted row.
        row: Vec<i64>,
    },
    /// A tuple update (carries both images for redo and undo).
    Update {
        /// Table the tuple belongs to.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Physical address.
        rid: Rid,
        /// Before-image (undo).
        before: Vec<i64>,
        /// After-image (redo).
        after: Vec<i64>,
    },
    /// A tuple delete (before-image for undo).
    Delete {
        /// Table the tuple belonged to.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Physical address.
        rid: Rid,
        /// Deleted row.
        before: Vec<i64>,
    },
    /// Transaction commit point.
    Commit,
    /// Transaction abort (rollback already applied by the undo chain).
    Abort,
    /// Fuzzy checkpoint marker. `redo_lsn` is the low-water mark captured
    /// *before* the checkpoint's pool flush began: every record below it
    /// belongs to a transaction that had already finished, and its page
    /// effects were persisted by that flush. Recovery may therefore start
    /// redo at `redo_lsn`, and the log prefix before it can be reclaimed.
    Checkpoint {
        /// Earliest LSN recovery still needs.
        redo_lsn: Lsn,
    },
    /// Two-phase-commit participant vote: the transaction's effects are
    /// fully logged before this record and its locks stay held. From here
    /// on the transaction is *in doubt* — it may no longer abort
    /// unilaterally; only the coordinator's decision for `gtid` finishes it.
    Prepare {
        /// Global transaction id assigned by the coordinator.
        gtid: u64,
    },
    /// Coordinator-side decision record for global transaction `gtid`.
    /// Commit decisions are flushed before any participant commits (the
    /// global commit point); abort decisions may ride later flushes because
    /// recovery presumes abort for any gtid without a durable decision.
    Decide {
        /// Global transaction id.
        gtid: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
    /// Coordinator gtid-allocator watermark: every gtid below `next` has
    /// either been decided or will never commit. Logged once per allocation
    /// batch so a recovered coordinator resumes past the bound and never
    /// reuses a gtid a participant may still hold prepared state for.
    GtidWatermark {
        /// First gtid the recovered allocator may hand out.
        next: u64,
    },
    /// Replication term (epoch) boundary. Written as the first record of a
    /// promoted primary's stream; every record after it was produced under
    /// `term`. A stream reader that has adopted a higher term treats records
    /// from a lower one as coming from a fenced, stale primary.
    TermChange {
        /// The new term, strictly greater than every prior term in the
        /// stream.
        term: u64,
    },
    /// A durable transition of the online-rebalancing state machine, written
    /// by two writers: the migration coordinator's own log records every
    /// phase change (so a crashed coordinator resumes or rolls forward
    /// idempotently), and the *source shard's* WAL gets one as the **fence
    /// marker** — the record whose LSN bounds the final filtered-tail ship,
    /// appended after the write fence has drained the moving slot.
    MigrationStep {
        /// Migration id (coordinator-scoped).
        mid: u64,
        /// State-machine phase ordinal (see `esdb-rebal`'s `Phase`).
        phase: u8,
        /// The hash slot being moved.
        slot: u32,
        /// Source shard.
        from: u32,
        /// Destination shard.
        to: u32,
        /// Phase-specific payload: the delta-ship start LSN for a copy
        /// record, the new routing epoch for a cutover record, 0 otherwise.
        mark: u64,
    },
}

impl LogBody {
    fn tag(&self) -> u8 {
        match self {
            LogBody::Begin => 0,
            LogBody::Insert { .. } => 1,
            LogBody::Update { .. } => 2,
            LogBody::Delete { .. } => 3,
            LogBody::Commit => 4,
            LogBody::Abort => 5,
            LogBody::Checkpoint { .. } => 6,
            LogBody::Prepare { .. } => 7,
            LogBody::Decide { .. } => 8,
            LogBody::GtidWatermark { .. } => 9,
            LogBody::TermChange { .. } => 10,
            LogBody::MigrationStep { .. } => 11,
        }
    }
}

/// A fully decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Byte offset of this record in the log stream.
    pub lsn: Lsn,
    /// Owning transaction (0 for system records such as checkpoints).
    pub txn_id: u64,
    /// Previous record of the same transaction ([`NULL_LSN`] if none).
    pub prev_lsn: Lsn,
    /// Payload.
    pub body: LogBody,
}

/// The result of decoding a possibly-damaged log stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedLog {
    /// Every record of the valid prefix, in stream order.
    pub records: Vec<LogRecord>,
    /// Bytes of `bytes` covered by `records` (decoding stopped here).
    pub valid_len: u64,
    /// Why decoding stopped early, if it hit detectable corruption. `None`
    /// means the stream was clean or merely ended in a torn partial record.
    pub corruption: Option<WalError>,
}

fn put_row(out: &mut Vec<u8>, row: &[i64]) {
    out.put_u16_le(row.len() as u16);
    for v in row {
        out.put_i64_le(*v);
    }
}

/// Serializes a record body into its framed, checksummed wire form.
pub fn encode(txn_id: u64, prev_lsn: Lsn, body: &LogBody) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.put_u32_le(0); // length patched below
    out.put_u32_le(0); // crc patched below
    out.put_u64_le(txn_id);
    out.put_u64_le(prev_lsn);
    out.put_u8(body.tag());
    match body {
        LogBody::Begin | LogBody::Commit | LogBody::Abort => {}
        LogBody::Checkpoint { redo_lsn } => {
            out.put_u64_le(*redo_lsn);
        }
        LogBody::Prepare { gtid } => {
            out.put_u64_le(*gtid);
        }
        LogBody::Decide { gtid, commit } => {
            out.put_u64_le(*gtid);
            out.put_u8(u8::from(*commit));
        }
        LogBody::GtidWatermark { next } => {
            out.put_u64_le(*next);
        }
        LogBody::TermChange { term } => {
            out.put_u64_le(*term);
        }
        LogBody::MigrationStep { mid, phase, slot, from, to, mark } => {
            out.put_u64_le(*mid);
            out.put_u8(*phase);
            out.put_u32_le(*slot);
            out.put_u32_le(*from);
            out.put_u32_le(*to);
            out.put_u64_le(*mark);
        }
        LogBody::Insert { table, key, rid, row } => {
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(rid.to_u64());
            put_row(&mut out, row);
        }
        LogBody::Update {
            table,
            key,
            rid,
            before,
            after,
        } => {
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(rid.to_u64());
            put_row(&mut out, before);
            put_row(&mut out, after);
        }
        LogBody::Delete { table, key, rid, before } => {
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(rid.to_u64());
            put_row(&mut out, before);
        }
    }
    let len = out.len() as u32;
    out[0..4].copy_from_slice(&len.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&out[0..4]);
    crc.update(&out[8..]);
    out[4..8].copy_from_slice(&crc.finish().to_le_bytes());
    out
}

/// A total (never-panicking) little-endian cursor over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16_le(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_le(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64_le(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn i64_le(&mut self) -> Option<i64> {
        self.u64_le().map(|v| v as i64)
    }

    fn row(&mut self) -> Option<Vec<i64>> {
        let n = self.u16_le()? as usize;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.i64_le()?);
        }
        Some(row)
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decodes the payload of one CRC-verified frame (everything after the crc
/// field). Returns `None` on underflow; the caller maps that to
/// [`WalError::TruncatedBody`].
fn decode_payload(r: &mut Reader<'_>) -> Option<(u64, Lsn, Option<LogBody>)> {
    let txn_id = r.u64_le()?;
    let prev_lsn = r.u64_le()?;
    let tag = r.u8()?;
    let body = match tag {
        0 => LogBody::Begin,
        1 => {
            let table = r.u32_le()?;
            let key = r.u64_le()?;
            let rid = Rid::from_u64(r.u64_le()?);
            let row = r.row()?;
            LogBody::Insert { table, key, rid, row }
        }
        2 => {
            let table = r.u32_le()?;
            let key = r.u64_le()?;
            let rid = Rid::from_u64(r.u64_le()?);
            let before = r.row()?;
            let after = r.row()?;
            LogBody::Update {
                table,
                key,
                rid,
                before,
                after,
            }
        }
        3 => {
            let table = r.u32_le()?;
            let key = r.u64_le()?;
            let rid = Rid::from_u64(r.u64_le()?);
            let before = r.row()?;
            LogBody::Delete { table, key, rid, before }
        }
        4 => LogBody::Commit,
        5 => LogBody::Abort,
        6 => {
            let redo_lsn = r.u64_le()?;
            LogBody::Checkpoint { redo_lsn }
        }
        7 => {
            let gtid = r.u64_le()?;
            LogBody::Prepare { gtid }
        }
        8 => {
            let gtid = r.u64_le()?;
            let commit = r.u8()? != 0;
            LogBody::Decide { gtid, commit }
        }
        9 => {
            let next = r.u64_le()?;
            LogBody::GtidWatermark { next }
        }
        10 => {
            let term = r.u64_le()?;
            LogBody::TermChange { term }
        }
        11 => {
            let mid = r.u64_le()?;
            let phase = r.u8()?;
            let slot = r.u32_le()?;
            let from = r.u32_le()?;
            let to = r.u32_le()?;
            let mark = r.u64_le()?;
            LogBody::MigrationStep { mid, phase, slot, from, to, mark }
        }
        _ => return Some((txn_id, prev_lsn, None)), // unknown tag
    };
    Some((txn_id, prev_lsn, Some(body)))
}

/// Parses `bytes` (starting at stream offset `base_lsn`) into the longest
/// valid prefix of records. Never panics: an incomplete final record is
/// treated as a torn tail and dropped; any detectable corruption — bad
/// length, checksum mismatch, or a CRC-valid frame that fails structural
/// decoding — stops the scan and is reported in
/// [`SalvagedLog::corruption`].
pub fn decode_stream_checked(bytes: &[u8], base_lsn: Lsn) -> SalvagedLog {
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut corruption = None;
    while off < bytes.len() {
        let lsn = base_lsn + off as u64;
        if off + 8 > bytes.len() {
            break; // torn tail: not even a full len+crc header
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte slice"));
        if (len as usize) < MIN_RECORD || (len as usize) > MAX_RECORD {
            corruption = Some(WalError::BadLength { offset: lsn, len });
            break;
        }
        let len = len as usize;
        if off + len > bytes.len() {
            break; // torn tail: final record incomplete
        }
        let stored = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4-byte slice"));
        let mut crc = Crc32::new();
        crc.update(&bytes[off..off + 4]);
        crc.update(&bytes[off + 8..off + len]);
        let computed = crc.finish();
        if stored != computed {
            corruption = Some(WalError::BadChecksum {
                offset: lsn,
                stored,
                computed,
            });
            break;
        }
        let mut r = Reader::new(&bytes[off + 8..off + len]);
        match decode_payload(&mut r) {
            None => {
                corruption = Some(WalError::TruncatedBody { offset: lsn });
                break;
            }
            Some((_, _, None)) => {
                let tag = bytes[off + 24];
                corruption = Some(WalError::UnknownTag { offset: lsn, tag });
                break;
            }
            Some((txn_id, prev_lsn, Some(body))) => {
                if !r.is_empty() {
                    corruption = Some(WalError::TrailingGarbage { offset: lsn });
                    break;
                }
                records.push(LogRecord {
                    lsn,
                    txn_id,
                    prev_lsn,
                    body,
                });
            }
        }
        off += len;
    }
    SalvagedLog {
        records,
        valid_len: off as u64,
        corruption,
    }
}

/// Parses every record in `bytes`, which must start at stream offset
/// `base_lsn`. Ignores a trailing partial record (torn final write) and, like
/// [`decode_stream_checked`], stops at the first corrupt frame.
pub fn decode_stream(bytes: &[u8], base_lsn: Lsn) -> Vec<LogRecord> {
    decode_stream_checked(bytes, base_lsn).records
}

/// Convenience: `prev_lsn == NULL_LSN` means first record of its transaction.
pub fn is_first_of_txn(r: &LogRecord) -> bool {
    r.prev_lsn == NULL_LSN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bodies: Vec<(u64, Lsn, LogBody)>) {
        let mut stream = Vec::new();
        let mut offsets = Vec::new();
        for (txn, prev, body) in &bodies {
            offsets.push(stream.len() as u64);
            stream.extend_from_slice(&encode(*txn, *prev, body));
        }
        let salvaged = decode_stream_checked(&stream, 100);
        assert_eq!(salvaged.corruption, None);
        assert_eq!(salvaged.valid_len, stream.len() as u64);
        let decoded = salvaged.records;
        assert_eq!(decoded.len(), bodies.len());
        for (i, rec) in decoded.iter().enumerate() {
            assert_eq!(rec.lsn, 100 + offsets[i]);
            assert_eq!(rec.txn_id, bodies[i].0);
            assert_eq!(rec.prev_lsn, bodies[i].1);
            assert_eq!(rec.body, bodies[i].2);
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(vec![
            (1, NULL_LSN, LogBody::Begin),
            (
                1,
                100,
                LogBody::Insert {
                    table: 3,
                    key: 42,
                    rid: Rid::new(7, 2),
                    row: vec![1, -5, i64::MAX],
                },
            ),
            (
                1,
                121,
                LogBody::Update {
                    table: 3,
                    key: 42,
                    rid: Rid::new(7, 2),
                    before: vec![1],
                    after: vec![2],
                },
            ),
            (
                2,
                NULL_LSN,
                LogBody::Delete {
                    table: 9,
                    key: 0,
                    rid: Rid::new(0, 0),
                    before: vec![],
                },
            ),
            (1, 160, LogBody::Commit),
            (2, 140, LogBody::Abort),
            (0, NULL_LSN, LogBody::Checkpoint { redo_lsn: 512 }),
            (3, 180, LogBody::Prepare { gtid: u64::MAX }),
            (0, NULL_LSN, LogBody::Decide { gtid: 7, commit: true }),
            (0, NULL_LSN, LogBody::Decide { gtid: 8, commit: false }),
            (0, NULL_LSN, LogBody::GtidWatermark { next: 1024 }),
            (0, NULL_LSN, LogBody::TermChange { term: 3 }),
            (
                0,
                NULL_LSN,
                LogBody::MigrationStep {
                    mid: 5,
                    phase: 3,
                    slot: 11,
                    from: 0,
                    to: 2,
                    mark: u64::MAX,
                },
            ),
        ]);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let first = encode(1, NULL_LSN, &LogBody::Begin);
        let mut stream = first.clone();
        let full = encode(1, 8, &LogBody::Commit);
        stream.extend_from_slice(&full[..full.len() - 3]); // torn
        let salvaged = decode_stream_checked(&stream, 8);
        assert_eq!(salvaged.records.len(), 1);
        assert_eq!(salvaged.records[0].body, LogBody::Begin);
        assert_eq!(salvaged.corruption, None, "a torn tail is not corruption");
        assert_eq!(salvaged.valid_len, first.len() as u64);
    }

    #[test]
    fn empty_stream_decodes_empty() {
        assert!(decode_stream(&[], 8).is_empty());
    }

    #[test]
    fn every_bit_flip_is_detected_or_torn() {
        // Flip every bit of a two-record stream in turn: decode must never
        // panic and must never return a *wrong* record — each flip either
        // fails the CRC / length check or (if it hits the final record's
        // length so the frame no longer fits) reads as a torn tail.
        let mut stream = encode(7, NULL_LSN, &LogBody::Begin);
        stream.extend_from_slice(&encode(
            7,
            0,
            &LogBody::Insert {
                table: 1,
                key: 9,
                rid: Rid::new(3, 1),
                row: vec![5, -5],
            },
        ));
        let clean = decode_stream_checked(&stream, 0);
        assert_eq!(clean.records.len(), 2);
        for byte in 0..stream.len() {
            for bit in 0..8 {
                let mut bad = stream.clone();
                bad[byte] ^= 1 << bit;
                let salvaged = decode_stream_checked(&bad, 0);
                for rec in &salvaged.records {
                    let original = clean.records.iter().find(|r| r.lsn == rec.lsn);
                    assert_eq!(original, Some(rec), "flip {byte}:{bit} forged a record");
                }
                if salvaged.records.len() < 2 {
                    // The damaged suffix must be accounted for: either
                    // reported corruption or a frame that no longer fits.
                    let stopped_at = salvaged.valid_len as usize;
                    assert!(
                        salvaged.corruption.is_some() || stopped_at + 8 > bad.len() || {
                            let len = u32::from_le_bytes(
                                bad[stopped_at..stopped_at + 4].try_into().unwrap(),
                            ) as usize;
                            stopped_at + len > bad.len()
                        },
                        "flip {byte}:{bit} silently dropped a record"
                    );
                }
            }
        }
    }

    #[test]
    fn mid_stream_corruption_salvages_prefix() {
        let mut stream = Vec::new();
        for i in 0..5u64 {
            stream.extend_from_slice(&encode(i + 1, NULL_LSN, &LogBody::Begin));
        }
        let record_len = stream.len() / 5;
        // Corrupt a body byte of the third record.
        stream[2 * record_len + 12] ^= 0x40;
        let salvaged = decode_stream_checked(&stream, 0);
        assert_eq!(salvaged.records.len(), 2, "prefix before the damage survives");
        assert_eq!(salvaged.valid_len, (2 * record_len) as u64);
        match salvaged.corruption {
            Some(WalError::BadChecksum { offset, .. }) => {
                assert_eq!(offset, (2 * record_len) as u64)
            }
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_is_reported_not_panicked() {
        // Hand-build a CRC-valid frame with tag 99.
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MIN_RECORD as u32).to_le_bytes());
        frame.extend_from_slice(&[0; 4]); // crc placeholder
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&NULL_LSN.to_le_bytes());
        frame.push(99);
        let mut crc = Crc32::new();
        crc.update(&frame[0..4]);
        crc.update(&frame[8..]);
        let sum = crc.finish();
        frame[4..8].copy_from_slice(&sum.to_le_bytes());
        let salvaged = decode_stream_checked(&frame, 0);
        assert!(salvaged.records.is_empty());
        assert_eq!(
            salvaged.corruption,
            Some(WalError::UnknownTag { offset: 0, tag: 99 })
        );
    }

    #[test]
    fn bad_length_is_reported() {
        let mut stream = encode(1, NULL_LSN, &LogBody::Begin);
        let tail_lsn = stream.len() as u64;
        stream.extend_from_slice(&3u32.to_le_bytes()); // impossible length
        stream.extend_from_slice(&[0; 8]);
        let salvaged = decode_stream_checked(&stream, 0);
        assert_eq!(salvaged.records.len(), 1);
        assert_eq!(
            salvaged.corruption,
            Some(WalError::BadLength { offset: tail_lsn, len: 3 })
        );
    }

    #[test]
    fn wal_error_display_carries_offset() {
        let e = WalError::BadChecksum { offset: 1234, stored: 1, computed: 2 };
        assert!(e.to_string().contains("1234"));
        assert_eq!(e.offset(), 1234);
    }
}
