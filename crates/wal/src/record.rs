//! Log record types and their wire format.
//!
//! Records are framed as `[len: u32][txn_id: u64][prev_lsn: u64][tag: u8]
//! [body…]`; a record's LSN is its byte offset in the log stream, so the
//! stream parses back into records without any side index. `prev_lsn` chains
//! each transaction's records for rollback and undo.

use crate::{Lsn, NULL_LSN};
use bytes::{Buf, BufMut};
use esdb_storage::rid::Rid;
use esdb_storage::schema::TableId;

/// The payload of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogBody {
    /// Transaction start.
    Begin,
    /// A tuple insert.
    Insert {
        /// Table the tuple belongs to.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Physical address assigned.
        rid: Rid,
        /// The inserted row.
        row: Vec<i64>,
    },
    /// A tuple update (carries both images for redo and undo).
    Update {
        /// Table the tuple belongs to.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Physical address.
        rid: Rid,
        /// Before-image (undo).
        before: Vec<i64>,
        /// After-image (redo).
        after: Vec<i64>,
    },
    /// A tuple delete (before-image for undo).
    Delete {
        /// Table the tuple belonged to.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Physical address.
        rid: Rid,
        /// Deleted row.
        before: Vec<i64>,
    },
    /// Transaction commit point.
    Commit,
    /// Transaction abort (rollback already applied by the undo chain).
    Abort,
    /// Fuzzy checkpoint marker.
    Checkpoint,
}

impl LogBody {
    fn tag(&self) -> u8 {
        match self {
            LogBody::Begin => 0,
            LogBody::Insert { .. } => 1,
            LogBody::Update { .. } => 2,
            LogBody::Delete { .. } => 3,
            LogBody::Commit => 4,
            LogBody::Abort => 5,
            LogBody::Checkpoint => 6,
        }
    }
}

/// A fully decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Byte offset of this record in the log stream.
    pub lsn: Lsn,
    /// Owning transaction (0 for system records such as checkpoints).
    pub txn_id: u64,
    /// Previous record of the same transaction ([`NULL_LSN`] if none).
    pub prev_lsn: Lsn,
    /// Payload.
    pub body: LogBody,
}

fn put_row(out: &mut Vec<u8>, row: &[i64]) {
    out.put_u16_le(row.len() as u16);
    for v in row {
        out.put_i64_le(*v);
    }
}

fn get_row(buf: &mut &[u8]) -> Vec<i64> {
    let n = buf.get_u16_le() as usize;
    (0..n).map(|_| buf.get_i64_le()).collect()
}

/// Serializes a record body into its framed wire form.
pub fn encode(txn_id: u64, prev_lsn: Lsn, body: &LogBody) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.put_u32_le(0); // length patched below
    out.put_u64_le(txn_id);
    out.put_u64_le(prev_lsn);
    out.put_u8(body.tag());
    match body {
        LogBody::Begin | LogBody::Commit | LogBody::Abort | LogBody::Checkpoint => {}
        LogBody::Insert { table, key, rid, row } => {
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(rid.to_u64());
            put_row(&mut out, row);
        }
        LogBody::Update {
            table,
            key,
            rid,
            before,
            after,
        } => {
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(rid.to_u64());
            put_row(&mut out, before);
            put_row(&mut out, after);
        }
        LogBody::Delete { table, key, rid, before } => {
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(rid.to_u64());
            put_row(&mut out, before);
        }
    }
    let len = out.len() as u32;
    out[0..4].copy_from_slice(&len.to_le_bytes());
    out
}

/// Parses every record in `bytes`, which must start at stream offset
/// `base_lsn`. Ignores a trailing partial record (torn final write).
pub fn decode_stream(bytes: &[u8], base_lsn: Lsn) -> Vec<LogRecord> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if len < 21 || off + len > bytes.len() {
            break; // torn tail
        }
        let mut buf = &bytes[off + 4..off + len];
        let txn_id = buf.get_u64_le();
        let prev_lsn = buf.get_u64_le();
        let tag = buf.get_u8();
        let body = match tag {
            0 => LogBody::Begin,
            1 => {
                let table = buf.get_u32_le();
                let key = buf.get_u64_le();
                let rid = Rid::from_u64(buf.get_u64_le());
                let row = get_row(&mut buf);
                LogBody::Insert { table, key, rid, row }
            }
            2 => {
                let table = buf.get_u32_le();
                let key = buf.get_u64_le();
                let rid = Rid::from_u64(buf.get_u64_le());
                let before = get_row(&mut buf);
                let after = get_row(&mut buf);
                LogBody::Update {
                    table,
                    key,
                    rid,
                    before,
                    after,
                }
            }
            3 => {
                let table = buf.get_u32_le();
                let key = buf.get_u64_le();
                let rid = Rid::from_u64(buf.get_u64_le());
                let before = get_row(&mut buf);
                LogBody::Delete { table, key, rid, before }
            }
            4 => LogBody::Commit,
            5 => LogBody::Abort,
            6 => LogBody::Checkpoint,
            other => panic!("corrupt log: unknown record tag {other}"),
        };
        out.push(LogRecord {
            lsn: base_lsn + off as u64,
            txn_id,
            prev_lsn,
            body,
        });
        off += len;
    }
    out
}

/// Convenience: `prev_lsn == NULL_LSN` means first record of its transaction.
pub fn is_first_of_txn(r: &LogRecord) -> bool {
    r.prev_lsn == NULL_LSN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bodies: Vec<(u64, Lsn, LogBody)>) {
        let mut stream = Vec::new();
        let mut offsets = Vec::new();
        for (txn, prev, body) in &bodies {
            offsets.push(stream.len() as u64);
            stream.extend_from_slice(&encode(*txn, *prev, body));
        }
        let decoded = decode_stream(&stream, 100);
        assert_eq!(decoded.len(), bodies.len());
        for (i, rec) in decoded.iter().enumerate() {
            assert_eq!(rec.lsn, 100 + offsets[i]);
            assert_eq!(rec.txn_id, bodies[i].0);
            assert_eq!(rec.prev_lsn, bodies[i].1);
            assert_eq!(rec.body, bodies[i].2);
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(vec![
            (1, NULL_LSN, LogBody::Begin),
            (
                1,
                100,
                LogBody::Insert {
                    table: 3,
                    key: 42,
                    rid: Rid::new(7, 2),
                    row: vec![1, -5, i64::MAX],
                },
            ),
            (
                1,
                121,
                LogBody::Update {
                    table: 3,
                    key: 42,
                    rid: Rid::new(7, 2),
                    before: vec![1],
                    after: vec![2],
                },
            ),
            (
                2,
                NULL_LSN,
                LogBody::Delete {
                    table: 9,
                    key: 0,
                    rid: Rid::new(0, 0),
                    before: vec![],
                },
            ),
            (1, 160, LogBody::Commit),
            (2, 140, LogBody::Abort),
            (0, NULL_LSN, LogBody::Checkpoint),
        ]);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let mut stream = encode(1, NULL_LSN, &LogBody::Begin);
        let full = encode(1, 8, &LogBody::Commit);
        stream.extend_from_slice(&full[..full.len() - 3]); // torn
        let decoded = decode_stream(&stream, 8);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].body, LogBody::Begin);
    }

    #[test]
    fn empty_stream_decodes_empty() {
        assert!(decode_stream(&[], 8).is_empty());
    }
}
