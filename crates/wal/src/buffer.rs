//! The [`LogBuffer`] abstraction and the shared ring-buffer machinery.
//!
//! A log buffer accepts byte payloads from many threads, assigns each a
//! contiguous LSN range in a single total order, and makes prefixes of that
//! order durable on demand. "Durable" here means copied into an append-only
//! in-memory log *store* (the stand-in for the log disk), optionally paying a
//! configurable flush latency — which is what the ELR/group-commit
//! experiments sweep.

use crate::Lsn;
use esdb_storage::FaultRng;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// First valid LSN; offsets below this are the "log file header".
pub const LOG_START: Lsn = 8;

/// The LSN range `[start, end)` occupied by one inserted payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsnRange {
    /// LSN of the first byte (identifies the record, stamped into pages).
    pub start: Lsn,
    /// LSN one past the last byte (a commit is durable when
    /// `durable_lsn() >= end`).
    pub end: Lsn,
}

/// A multi-producer log buffer with explicit durability control.
pub trait LogBuffer: Send + Sync {
    /// First LSN of this log (offsets before it belong to a pre-crash
    /// incarnation of the log).
    fn start_lsn(&self) -> Lsn;

    /// Appends `payload` to the log stream, returning its LSN range. The
    /// payload is *not* durable until a flush covers it.
    fn insert(&self, payload: &[u8]) -> LsnRange;

    /// Blocks until `durable_lsn() >= lsn`.
    fn flush(&self, lsn: Lsn);

    /// Highest LSN known durable.
    fn durable_lsn(&self) -> Lsn;

    /// LSN that the next insert would receive (end of allocated log).
    fn current_lsn(&self) -> Lsn;

    /// Copies the durable byte range `[from, durable_lsn())` (for recovery).
    fn read_durable(&self, from: Lsn) -> Vec<u8>;

    /// Number of physical device flushes so far — the group-commit metric:
    /// `commits / flushes` is the average commit-batch size.
    fn flush_count(&self) -> u64;

    /// Implementation name for benchmark output.
    fn name(&self) -> &'static str;

    /// The durable log store behind this buffer (fault injection and the
    /// crash-torture harness reach the device through here).
    fn store(&self) -> &LogStore;
}

/// A planned log-device crash: a *lying* device that acknowledges appends
/// but stops persisting them.
///
/// On append number `crash_on_append` (zero-based) the device persists only a
/// seeded-random prefix of the payload — the torn final write — optionally
/// flipping one bit inside it, and silently drops every byte of every later
/// append while still acknowledging. The log buffer above keeps advancing its
/// durable LSN, exactly like a drive whose write cache lied about fsync;
/// recovery then finds a shorter, possibly damaged stream than the LSNs
/// promised.
#[derive(Debug, Clone, Copy)]
pub struct LogFault {
    /// Seed for the tear point and bit-flip choices.
    pub seed: u64,
    /// Zero-based index of the append that crashes the device.
    pub crash_on_append: u64,
    /// Also flip one random bit inside the persisted prefix.
    pub flip_bit: bool,
}

struct LogFaultState {
    config: LogFault,
    rng: FaultRng,
    appends: u64,
    dead: bool,
}

/// Append-only durable destination shared by all buffer implementations.
pub struct LogStore {
    bytes: Mutex<Vec<u8>>,
    /// Stream offset of the first byte still held in this store. Starts at
    /// the log's creation base and advances when [`LogStore::truncate_before`]
    /// reclaims a checkpointed prefix. Only mutated under the `bytes` lock.
    base: AtomicU64,
    /// Artificial device latency paid once per flush call.
    flush_latency: Option<Duration>,
    flushes: AtomicU64,
    fault: Mutex<Option<LogFaultState>>,
}

impl LogStore {
    /// Creates a store with zero flush latency starting at [`LOG_START`].
    pub fn new(flush_latency: Option<Duration>) -> Self {
        Self::new_at(LOG_START, flush_latency)
    }

    /// Creates a store whose first byte has stream offset `base`.
    pub fn new_at(base: Lsn, flush_latency: Option<Duration>) -> Self {
        LogStore {
            bytes: Mutex::new(Vec::new()),
            base: AtomicU64::new(base),
            flush_latency,
            flushes: AtomicU64::new(0),
            fault: Mutex::new(None),
        }
    }

    /// Arms the lying-device fault. Must be set before the crash append
    /// happens; setting it again replaces the previous plan.
    pub fn set_fault(&self, config: LogFault) {
        *self.fault.lock() = Some(LogFaultState {
            rng: FaultRng::new(config.seed),
            config,
            appends: 0,
            dead: false,
        });
    }

    /// `true` once the armed fault has fired (the device stopped persisting).
    pub fn fault_tripped(&self) -> bool {
        self.fault.lock().as_ref().is_some_and(|s| s.dead)
    }

    /// Appends `data`, paying the configured device latency.
    pub fn append(&self, data: &[u8]) {
        if let Some(lat) = self.flush_latency {
            let start = std::time::Instant::now();
            while start.elapsed() < lat {
                std::hint::spin_loop();
            }
        }
        self.flushes.fetch_add(1, Ordering::Relaxed);
        let mut fault = self.fault.lock();
        if let Some(st) = fault.as_mut() {
            let turn = st.appends;
            st.appends += 1;
            if st.dead {
                return; // acknowledged, silently dropped
            }
            if turn == st.config.crash_on_append {
                st.dead = true;
                let keep = st.rng.below(data.len() as u64 + 1) as usize;
                let mut prefix = data[..keep].to_vec();
                if st.config.flip_bit && !prefix.is_empty() {
                    let byte = st.rng.below(prefix.len() as u64) as usize;
                    let bit = st.rng.below(8);
                    prefix[byte] ^= 1 << bit;
                }
                self.bytes.lock().extend_from_slice(&prefix);
                return;
            }
        }
        drop(fault);
        self.bytes.lock().extend_from_slice(data);
    }

    /// Truncates the persisted stream to its first `keep` bytes (direct
    /// damage for torture tests; `keep` past the end is a no-op).
    pub fn truncate_to(&self, keep: usize) {
        let mut bytes = self.bytes.lock();
        if keep < bytes.len() {
            bytes.truncate(keep);
        }
    }

    /// Flips bit `bit` of the byte at stream offset `offset` (absolute LSN).
    /// Out-of-range offsets are a no-op.
    pub fn flip_bit(&self, offset: Lsn, bit: u8) {
        let mut bytes = self.bytes.lock();
        let idx = offset.saturating_sub(self.base.load(Ordering::Relaxed)) as usize;
        if let Some(b) = bytes.get_mut(idx) {
            *b ^= 1 << (bit % 8);
        }
    }

    /// Number of bytes actually persisted (with a tripped fault this is less
    /// than the durable LSN the buffer advertises).
    pub fn len(&self) -> u64 {
        self.bytes.lock().len() as u64
    }

    /// `true` if nothing has been persisted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies durable bytes from stream offset `from`.
    pub fn read_from(&self, from: Lsn) -> Vec<u8> {
        let bytes = self.bytes.lock();
        let skip = from.saturating_sub(self.base.load(Ordering::Relaxed)) as usize;
        bytes[skip.min(bytes.len())..].to_vec()
    }

    /// Copies the persisted tail `[from, end)` together with `from` clamped
    /// into range, or `None` when `from` falls before the store's base — the
    /// prefix was reclaimed and the reader needs a snapshot instead.
    pub fn read_tail(&self, from: Lsn) -> Option<(Vec<u8>, Lsn)> {
        let bytes = self.bytes.lock();
        let base = self.base.load(Ordering::Relaxed);
        if from < base {
            return None;
        }
        let skip = ((from - base) as usize).min(bytes.len());
        Some((bytes[skip..].to_vec(), base + skip as u64))
    }

    /// Discards persisted bytes before stream offset `lsn` and advances the
    /// store's base. `lsn` must sit on a record boundary (the caller — a
    /// checkpoint's `redo_lsn` — guarantees this); offsets at or before the
    /// current base are a no-op, offsets past the persisted end clamp to it.
    pub fn truncate_before(&self, lsn: Lsn) {
        let mut bytes = self.bytes.lock();
        let base = self.base.load(Ordering::Relaxed);
        if lsn <= base {
            return;
        }
        let drop_n = ((lsn - base) as usize).min(bytes.len());
        bytes.drain(..drop_n);
        self.base.store(base + drop_n as u64, Ordering::Relaxed);
    }

    /// This store's base stream offset.
    pub fn base(&self) -> Lsn {
        self.base.load(Ordering::Relaxed)
    }

    /// Number of flush (append) calls — the group-commit metric.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }
}

/// Fixed-capacity byte ring addressed by monotonically increasing stream
/// offsets. Concurrent writers fill disjoint ranges; the flusher reads
/// completed prefixes. All range-disjointness is enforced by the owning
/// buffer's allocation protocol.
pub struct Ring {
    data: Box<[UnsafeCell<u8>]>,
    capacity: u64,
}

unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    /// Creates a ring of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        let data = (0..capacity).map(|_| UnsafeCell::new(0u8)).collect();
        Ring {
            data,
            capacity: capacity as u64,
        }
    }

    /// Ring capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Copies `src` into the ring at stream offset `offset` (at most two
    /// `memcpy`s: before and after the wrap point).
    ///
    /// # Safety
    /// The caller must guarantee that `[offset, offset + src.len())` was
    /// allocated to it exclusively and has not been reclaimed.
    pub unsafe fn write(&self, offset: u64, src: &[u8]) {
        debug_assert!(src.len() as u64 <= self.capacity);
        let cap = self.capacity as usize;
        let pos = (offset % self.capacity) as usize;
        let first = src.len().min(cap - pos);
        let base = self.data.as_ptr() as *mut u8;
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(pos), first);
            std::ptr::copy_nonoverlapping(src.as_ptr().add(first), base, src.len() - first);
        }
    }

    /// Copies the stream range `[from, to)` out of the ring.
    ///
    /// # Safety
    /// The caller must guarantee every byte in the range is completely
    /// written and not yet overwritten.
    pub unsafe fn read(&self, from: u64, to: u64) -> Vec<u8> {
        debug_assert!(to - from <= self.capacity);
        let len = (to - from) as usize;
        let cap = self.capacity as usize;
        let pos = (from % self.capacity) as usize;
        let first = len.min(cap - pos);
        let mut out = vec![0u8; len];
        let base = self.data.as_ptr() as *const u8;
        unsafe {
            std::ptr::copy_nonoverlapping(base.add(pos), out.as_mut_ptr(), first);
            std::ptr::copy_nonoverlapping(base, out.as_mut_ptr().add(first), len - first);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_roundtrip_with_wraparound() {
        let ring = Ring::new(16);
        // Write a 10-byte record at offset 12: wraps around the ring edge.
        let payload: Vec<u8> = (0..10).collect();
        unsafe { ring.write(12, &payload) };
        assert_eq!(unsafe { ring.read(12, 22) }, payload);
    }

    #[test]
    fn store_append_and_read() {
        let store = LogStore::new(None);
        store.append(b"hello ");
        store.append(b"log");
        assert_eq!(store.read_from(LOG_START), b"hello log");
        assert_eq!(store.read_from(LOG_START + 6), b"log");
        assert_eq!(store.flush_count(), 2);
    }

    #[test]
    fn lying_device_drops_appends_after_crash() {
        let store = LogStore::new(None);
        store.append(b"aaaa");
        store.set_fault(LogFault { seed: 5, crash_on_append: 0, flip_bit: false });
        store.append(b"bbbb"); // crash append: only a prefix persists
        assert!(store.fault_tripped());
        store.append(b"cccc"); // acked, dropped
        let persisted = store.read_from(LOG_START);
        assert!(persisted.len() <= 8, "nothing after the crash persists");
        assert!(persisted.starts_with(b"aaaa"));
        assert!(b"bbbb".starts_with(&persisted[4..]), "crash append kept a prefix");
        // The device still *acknowledged* three appends.
        assert_eq!(store.flush_count(), 3);
    }

    #[test]
    fn direct_damage_helpers() {
        let store = LogStore::new(None);
        store.append(b"hello log");
        store.flip_bit(LOG_START, 0);
        assert_eq!(store.read_from(LOG_START)[0], b'h' ^ 1);
        store.truncate_to(4);
        assert_eq!(store.len(), 4);
        store.truncate_to(100); // past the end: no-op
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn store_latency_paid_per_flush() {
        let store = LogStore::new(Some(Duration::from_micros(300)));
        let t = std::time::Instant::now();
        store.append(b"x");
        assert!(t.elapsed() >= Duration::from_micros(300));
    }
}
