//! The baseline log buffer: one mutex across allocation *and* copy.
//!
//! Every insert holds the buffer mutex for the full duration of its memcpy,
//! so log insertion is fully serialized — this is the design whose collapse
//! under core count growth motivates the Aether work the keynote cites.

use crate::buffer::{LogBuffer, LogStore, LsnRange, LOG_START};
use crate::Lsn;
use esdb_sync::{RawLock, TatasLock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct SerialState {
    /// Bytes inserted but not yet flushed.
    pending: Vec<u8>,
    /// Next LSN to hand out.
    tail: Lsn,
}

/// Mutex-serialized log buffer.
pub struct SerialLogBuffer {
    state: Mutex<SerialState>,
    store: LogStore,
    durable: AtomicU64,
    /// Serializes flushes so each makes one store append (group commit).
    flush_lock: TatasLock,
}

impl SerialLogBuffer {
    /// Creates an empty buffer; `flush_latency` models the log device.
    pub fn new(flush_latency: Option<Duration>) -> Self {
        Self::new_at(LOG_START, flush_latency)
    }

    /// Creates a buffer whose first LSN is `base` (post-crash log
    /// continuation: page LSNs from earlier incarnations stay smaller than
    /// every new record).
    pub fn new_at(base: u64, flush_latency: Option<Duration>) -> Self {
        SerialLogBuffer {
            state: Mutex::new(SerialState {
                pending: Vec::new(),
                tail: base,
            }),
            store: LogStore::new_at(base, flush_latency),
            durable: AtomicU64::new(base),
            flush_lock: TatasLock::new(),
        }
    }

    /// Number of physical flush operations issued.
    pub fn flush_count(&self) -> u64 {
        self.store.flush_count()
    }
}

impl Default for SerialLogBuffer {
    fn default() -> Self {
        Self::new(None)
    }
}

impl LogBuffer for SerialLogBuffer {
    fn insert(&self, payload: &[u8]) -> LsnRange {
        // A contended acquisition here IS the serial-log-head bottleneck the
        // keynote describes: attribute the queueing delay to the log.
        let mut st = match self.state.try_lock() {
            Some(guard) => guard,
            None => {
                let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::LogWait);
                self.state.lock()
            }
        };
        let start = st.tail;
        st.pending.extend_from_slice(payload);
        st.tail += payload.len() as u64;
        LsnRange {
            start,
            end: st.tail,
        }
    }

    fn flush(&self, lsn: Lsn) {
        while self.durable.load(Ordering::Acquire) < lsn {
            // One flusher at a time; latecomers whose LSN got covered by the
            // winner's flush exit via the loop condition (group commit).
            self.flush_lock.lock();
            if self.durable.load(Ordering::Acquire) >= lsn {
                self.flush_lock.unlock();
                return;
            }
            let (batch, new_durable) = {
                let mut st = self.state.lock();
                (std::mem::take(&mut st.pending), st.tail)
            };
            if !batch.is_empty() {
                self.store.append(&batch);
            }
            self.durable.store(new_durable, Ordering::Release);
            self.flush_lock.unlock();
        }
    }

    fn durable_lsn(&self) -> Lsn {
        self.durable.load(Ordering::Acquire)
    }

    fn current_lsn(&self) -> Lsn {
        self.state.lock().tail
    }

    fn read_durable(&self, from: Lsn) -> Vec<u8> {
        self.store.read_from(from)
    }

    fn flush_count(&self) -> u64 {
        self.store.flush_count()
    }

    fn name(&self) -> &'static str {
        "serial"
    }

    fn start_lsn(&self) -> Lsn {
        self.store.base()
    }

    fn store(&self) -> &LogStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ranges_are_contiguous() {
        let b = SerialLogBuffer::default();
        let a = b.insert(b"aaaa");
        let c = b.insert(b"cc");
        assert_eq!(a.start, LOG_START);
        assert_eq!(a.end, a.start + 4);
        assert_eq!(c.start, a.end);
        assert_eq!(b.current_lsn(), c.end);
    }

    #[test]
    fn flush_makes_bytes_durable() {
        let b = SerialLogBuffer::default();
        let r = b.insert(b"record-1");
        assert_eq!(b.durable_lsn(), LOG_START);
        b.flush(r.end);
        assert!(b.durable_lsn() >= r.end);
        assert_eq!(b.read_durable(LOG_START), b"record-1");
    }

    #[test]
    fn group_commit_batches_flushes() {
        let b = SerialLogBuffer::default();
        let mut last = LOG_START;
        for _ in 0..10 {
            last = b.insert(b"payload").end;
        }
        b.flush(last);
        assert_eq!(b.flush_count(), 1, "ten records should flush as one batch");
    }

    #[test]
    fn concurrent_inserts_are_all_durable() {
        use std::sync::Arc;
        let b = Arc::new(SerialLogBuffer::default());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    b.insert(&[t; 16]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let end = b.current_lsn();
        b.flush(end);
        let bytes = b.read_durable(LOG_START);
        assert_eq!(bytes.len() as u64, end - LOG_START);
        assert_eq!(bytes.len(), 4 * 500 * 16);
    }
}
