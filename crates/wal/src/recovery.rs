//! ARIES-style crash recovery: analysis, redo (repeating history), undo.
//!
//! Recovery operates on tables whose heap pages were restored from the page
//! store ([`esdb_storage::table::Table::from_heap`]) but whose in-memory
//! indexes were lost with the process. The passes:
//!
//! 1. **Analysis** — scan the durable log once; transactions with a `Commit`
//!    record are winners, transactions with an `Abort` already rolled back
//!    (their undo is reflected in the log's update chain replay), and
//!    everything else is a loser — except transactions whose last vote
//!    record is a durable `Prepare`: those are *in doubt* and belong to the
//!    two-phase-commit coordinator, not to local recovery.
//! 2. **Redo** — replay *every* update in LSN order, using page LSNs to skip
//!    changes already on disk (repeating history, including losers).
//! 3. **Undo** — roll back loser transactions in reverse LSN order using the
//!    before-images in their records. In-doubt transactions are *not*
//!    undone: their locks are conceptually still held and their fate is
//!    decided post-recovery by [`undo_txn`] (coordinator said abort) or by
//!    keeping the redone state (coordinator said commit).
//! 4. **Index rebuild** — primary indexes are reconstructed from heap scans.
//!
//! Simplification vs full ARIES: no compensation log records are written
//! during recovery, so recovery itself is not restartable mid-undo. For an
//! in-memory evaluation harness this is immaterial and documented in
//! DESIGN.md.

use crate::record::{LogBody, LogRecord};
use crate::Lsn;
use esdb_storage::schema::{encode_row, TableId};
use esdb_storage::{StorageError, Table};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Outcome summary of a recovery run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit record was durable.
    pub winners: HashSet<u64>,
    /// Transactions that were rolled back at runtime (abort record durable).
    pub aborted: HashSet<u64>,
    /// In-flight transactions rolled back by recovery.
    pub losers: HashSet<u64>,
    /// Prepared-but-undecided transactions (txn id → gtid): redone like
    /// winners, undone by nobody. Resolution happens after recovery, once
    /// the coordinator's decision for the gtid is known (presumed abort if
    /// the coordinator has no durable commit decision).
    pub in_doubt: HashMap<u64, u64>,
    /// Redo actions applied (not skipped by the page-LSN check).
    pub redo_applied: usize,
    /// Redo actions skipped because the page already reflected them.
    pub redo_skipped: usize,
    /// Undo actions applied for losers.
    pub undo_applied: usize,
}

/// Analysis pass: classify transactions.
pub fn analyze(records: &[LogRecord]) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let mut seen: HashSet<u64> = HashSet::new();
    for r in records {
        if r.txn_id != 0 {
            seen.insert(r.txn_id);
        }
        match r.body {
            LogBody::Commit => {
                report.winners.insert(r.txn_id);
                report.in_doubt.remove(&r.txn_id);
            }
            LogBody::Abort => {
                report.aborted.insert(r.txn_id);
                report.in_doubt.remove(&r.txn_id);
            }
            LogBody::Prepare { gtid } => {
                report.in_doubt.insert(r.txn_id, gtid);
            }
            _ => {}
        }
    }
    report.losers = seen
        .iter()
        .filter(|t| {
            !report.winners.contains(t)
                && !report.aborted.contains(t)
                && !report.in_doubt.contains_key(t)
        })
        .copied()
        .collect();
    report
}

/// The redo low-water mark implied by the last durable checkpoint in
/// `records`, if any: every record below it belongs to a transaction that
/// finished before the checkpoint's pool flush began, and that flush
/// persisted its page effects.
pub fn checkpoint_redo_lsn(records: &[LogRecord]) -> Option<Lsn> {
    records.iter().rev().find_map(|r| match r.body {
        LogBody::Checkpoint { redo_lsn } => Some(redo_lsn),
        _ => None,
    })
}

/// Slices `records` to the suffix recovery still needs: from the last
/// durable checkpoint's `redo_lsn` onward, or the whole stream when no
/// checkpoint exists. Transactions never straddle the boundary — `redo_lsn`
/// was the minimum first-LSN of the transactions active at flush start, so
/// everything below it is wholly finished and wholly flushed.
pub fn slice_from_checkpoint(records: &[LogRecord]) -> &[LogRecord] {
    match checkpoint_redo_lsn(records) {
        Some(redo) => {
            let start = records.partition_point(|r| r.lsn < redo);
            &records[start..]
        }
        None => records,
    }
}

/// Applies one record's redo action against `tables`, maintaining the
/// primary and secondary indexes alongside the heap, and returns whether the
/// page actually changed (`false`: skipped by the page-LSN check, unknown
/// table, or a non-redo record). Page-LSN skips still perform the
/// (idempotent) index maintenance, so a caller replaying an already-applied
/// stream converges to the same indexes it had.
///
/// Secondary maintenance is *derived* from the row images the redo records
/// already carry (full before/after rows) — no separate index-maintenance
/// record type exists, so a replica or recovery replaying the data stream
/// reconstructs exactly the indexes the primary maintained, and set
/// semantics make the re-derivation idempotent under replay.
///
/// This is the replica apply loop's kernel: the same repeating-history redo
/// that crash recovery runs, applied incrementally and in LSN order.
pub fn apply_redo(r: &LogRecord, tables: &HashMap<TableId, Arc<Table>>) -> bool {
    match &r.body {
        LogBody::Insert { table, rid, row, key } => {
            let Some(t) = tables.get(table) else { return false };
            let applied = t
                .heap()
                .insert_at(*rid, &encode_row(*key, row), r.lsn)
                .unwrap_or(false);
            t.index().insert(*key, rid.to_u64());
            for ix in t.secondaries() {
                ix.insert_row(*key, row);
            }
            applied
        }
        LogBody::Update { table, rid, before, after, key } => {
            let Some(t) = tables.get(table) else { return false };
            let applied = t
                .heap()
                .update_if_newer(*rid, &encode_row(*key, after), r.lsn)
                .unwrap_or(false);
            t.index().insert(*key, rid.to_u64());
            for ix in t.secondaries() {
                ix.update_row(*key, before, after);
            }
            applied
        }
        LogBody::Delete { table, rid, key, before } => {
            let Some(t) = tables.get(table) else { return false };
            let applied = t.heap().delete_if_newer(*rid, r.lsn).unwrap_or(false);
            t.index().remove(*key);
            for ix in t.secondaries() {
                ix.remove_row(*key, before);
            }
            applied
        }
        _ => false,
    }
}

/// Full recovery over `tables` (keyed by table id). Tables must carry the
/// post-crash heap state; their indexes are rebuilt here.
///
/// Defensive against a salvaged (possibly truncated) log: a record naming a
/// table id absent from the catalog is skipped rather than panicking, and an
/// index rebuild that trips over a corrupt heap row surfaces as an `Err`
/// instead of aborting the process.
pub fn recover(
    records: &[LogRecord],
    tables: &HashMap<TableId, Arc<Table>>,
) -> Result<RecoveryReport, StorageError> {
    // Start from the last complete checkpoint: the prefix below its
    // `redo_lsn` is already fully reflected in the page store.
    let records = slice_from_checkpoint(records);
    let mut report = analyze(records);
    let mut max_lsn: Lsn = 0;

    // --- Redo: repeat history in LSN order. -----------------------------
    for r in records {
        max_lsn = max_lsn.max(r.lsn);
        let applied = match &r.body {
            LogBody::Insert { table, rid, row, key } => {
                let Some(t) = tables.get(table) else { continue };
                t.heap()
                    .insert_at(*rid, &encode_row(*key, row), r.lsn)
                    .unwrap_or(false)
            }
            LogBody::Update {
                table,
                rid,
                after,
                key,
                ..
            } => {
                let Some(t) = tables.get(table) else { continue };
                t.heap()
                    .update_if_newer(*rid, &encode_row(*key, after), r.lsn)
                    .unwrap_or(false)
            }
            LogBody::Delete { table, rid, .. } => {
                let Some(t) = tables.get(table) else { continue };
                t.heap().delete_if_newer(*rid, r.lsn).unwrap_or(false)
            }
            _ => continue,
        };
        if applied {
            report.redo_applied += 1;
        } else {
            report.redo_skipped += 1;
        }
    }

    // --- Undo: roll back losers in reverse LSN order. -------------------
    // Undo actions get fresh LSNs past the end of the log so page-LSN
    // ordering stays monotone.
    let mut undo_lsn = max_lsn + 1_000_000;
    for r in records.iter().rev() {
        if !report.losers.contains(&r.txn_id) {
            continue;
        }
        undo_lsn += 1;
        match &r.body {
            LogBody::Insert { table, rid, .. } => {
                // Undo insert: delete the tuple.
                let Some(t) = tables.get(table) else { continue };
                let _ = t.heap().delete(*rid, undo_lsn);
                report.undo_applied += 1;
            }
            LogBody::Update {
                table,
                rid,
                before,
                key,
                ..
            } => {
                let Some(t) = tables.get(table) else { continue };
                let _ = t.heap().update(*rid, &encode_row(*key, before), undo_lsn);
                report.undo_applied += 1;
            }
            LogBody::Delete {
                table,
                rid,
                before,
                key,
            } => {
                let Some(t) = tables.get(table) else { continue };
                let _ = t.heap().insert_at(*rid, &encode_row(*key, before), undo_lsn);
                report.undo_applied += 1;
            }
            _ => {}
        }
    }

    // --- Index rebuild. --------------------------------------------------
    // Primary and secondary alike: both are derived, in-memory state, so
    // both are reconstructed from the settled post-undo heap rather than
    // maintained record-by-record above.
    for t in tables.values() {
        t.rebuild_index()?;
        t.rebuild_secondaries()?;
    }
    Ok(report)
}

/// Rolls back one transaction's logged effects in reverse order using its
/// before-images, stamping fresh LSNs from `undo_lsn` upward and keeping
/// the primary index in step with every heap change. Returns the number of
/// undo actions applied.
///
/// This is the post-recovery resolution path for an in-doubt (prepared)
/// transaction whose coordinator decided — or is presumed to have decided —
/// abort. `undo_lsn` must exceed every LSN recovery itself stamped, so
/// page-LSN ordering stays monotone; callers pass the recovered WAL's
/// current LSN, which restarts far past the pre-crash stream.
pub fn undo_txn(
    records: &[LogRecord],
    tables: &HashMap<TableId, Arc<Table>>,
    txn_id: u64,
    mut undo_lsn: Lsn,
) -> Result<usize, StorageError> {
    let mut applied = 0usize;
    for r in records.iter().rev() {
        if r.txn_id != txn_id {
            continue;
        }
        undo_lsn += 1;
        match &r.body {
            LogBody::Insert { table, rid, key, row } => {
                let Some(t) = tables.get(table) else { continue };
                let _ = t.heap().delete(*rid, undo_lsn);
                t.index().remove(*key);
                for ix in t.secondaries() {
                    ix.remove_row(*key, row);
                }
                applied += 1;
            }
            LogBody::Update { table, rid, before, after, key } => {
                let Some(t) = tables.get(table) else { continue };
                let _ = t.heap().update(*rid, &encode_row(*key, before), undo_lsn);
                t.index().insert(*key, rid.to_u64());
                for ix in t.secondaries() {
                    ix.update_row(*key, after, before);
                }
                applied += 1;
            }
            LogBody::Delete { table, rid, before, key } => {
                let Some(t) = tables.get(table) else { continue };
                let _ = t.heap().insert_at(*rid, &encode_row(*key, before), undo_lsn);
                t.index().insert(*key, rid.to_u64());
                for ix in t.secondaries() {
                    ix.insert_row(*key, before);
                }
                applied += 1;
            }
            _ => {}
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{LogPolicy, Wal};
    use crate::NULL_LSN;
    use esdb_storage::heap::HeapFile;
    use esdb_storage::schema::Schema;
    use esdb_storage::{BufferPool, InMemoryDisk};

    /// Runs a scripted workload against a table + WAL, "crashes" (drops the
    /// volatile state, keeps the page store), then recovers.
    struct Harness {
        disk: Arc<InMemoryDisk>,
        pool: Arc<BufferPool>,
        table: Arc<Table>,
        wal: Wal,
    }

    impl Harness {
        fn new() -> Self {
            let disk = Arc::new(InMemoryDisk::new());
            let pool = Arc::new(BufferPool::new(64, disk.clone()));
            let table = Arc::new(Table::create(1, "t", 1, pool.clone()));
            Harness {
                disk,
                pool,
                table,
                wal: Wal::new(LogPolicy::Serial, None),
            }
        }

        /// Simulates the crash: flush dirty pages (or not — `lose_buffer`
        /// decides), then rebuild a fresh Table over the same page store.
        fn crash_and_recover(&self, flush_pages: bool) -> (Arc<Table>, RecoveryReport) {
            if flush_pages {
                self.pool.flush_all().unwrap();
            }
            let pool = Arc::new(BufferPool::new(64, self.disk.clone()));
            let heap = HeapFile::from_pages(pool, self.table.heap().pages());
            let table = Arc::new(Table::from_heap(Schema::new(1, "t", 1), heap));
            let mut tables = HashMap::new();
            tables.insert(1u32, table.clone());
            let report = recover(&self.wal.durable_records(), &tables).unwrap();
            (table, report)
        }
    }

    #[test]
    fn committed_work_survives_unflushed_pages() {
        let h = Harness::new();
        // txn 1: insert two rows, commit (records durable, pages NOT flushed).
        let b = h.wal.append(1, NULL_LSN, &LogBody::Begin);
        let rid1 = h.table.insert_logged(10, &[100], b.end).unwrap();
        let i1 = h.wal.append(1, b.start, &LogBody::Insert { table: 1, key: 10, rid: rid1, row: vec![100] });
        let rid2 = h.table.insert_logged(20, &[200], i1.end).unwrap();
        let i2 = h.wal.append(1, i1.start, &LogBody::Insert { table: 1, key: 20, rid: rid2, row: vec![200] });
        h.wal.commit(1, i2.start);

        let (table, report) = h.crash_and_recover(false);
        assert!(report.winners.contains(&1));
        assert!(report.losers.is_empty());
        assert_eq!(table.get(10).unwrap(), vec![100]);
        assert_eq!(table.get(20).unwrap(), vec![200]);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn loser_transaction_is_rolled_back() {
        let h = Harness::new();
        // Committed base row.
        let b = h.wal.append(1, NULL_LSN, &LogBody::Begin);
        let rid = h.table.insert_logged(5, &[50], b.end).unwrap();
        let i = h.wal.append(1, b.start, &LogBody::Insert { table: 1, key: 5, rid, row: vec![50] });
        h.wal.commit(1, i.start);

        // txn 2 updates the row and inserts another, then the crash hits
        // before its commit — but after its records reached the durable log
        // and its dirty pages were stolen (flushed).
        let b2 = h.wal.append(2, NULL_LSN, &LogBody::Begin);
        let before = h.table.update_logged(5, &[51], b2.end).unwrap();
        let u = h.wal.append(2, b2.start, &LogBody::Update { table: 1, key: 5, rid, before: before.clone(), after: vec![51] });
        let rid9 = h.table.insert_logged(9, &[90], u.end).unwrap();
        let i9 = h.wal.append(2, u.start, &LogBody::Insert { table: 1, key: 9, rid: rid9, row: vec![90] });
        h.wal.wait_durable(i9.end); // records durable, no commit

        let (table, report) = h.crash_and_recover(true);
        assert!(report.losers.contains(&2));
        assert!(report.undo_applied >= 2);
        assert_eq!(table.get(5).unwrap(), vec![50], "loser update undone");
        assert!(table.get(9).is_err(), "loser insert undone");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn undurable_tail_is_simply_lost() {
        let h = Harness::new();
        let b = h.wal.append(1, NULL_LSN, &LogBody::Begin);
        let rid = h.table.insert_logged(1, &[10], b.end).unwrap();
        let i = h.wal.append(1, b.start, &LogBody::Insert { table: 1, key: 1, rid, row: vec![10] });
        let _ = i;
        // No flush at all: the log tail never reached the store.
        let (table, report) = h.crash_and_recover(false);
        assert!(report.winners.is_empty());
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn redo_is_idempotent_when_pages_flushed() {
        let h = Harness::new();
        let b = h.wal.append(1, NULL_LSN, &LogBody::Begin);
        let rid = h.table.insert_logged(1, &[10], b.end).unwrap();
        let i = h.wal.append(1, b.start, &LogBody::Insert { table: 1, key: 1, rid, row: vec![10] });
        h.wal.commit(1, i.start);

        // Pages flushed: redo should skip everything via page LSNs.
        let (table, report) = h.crash_and_recover(true);
        assert_eq!(table.get(1).unwrap(), vec![10]);
        assert_eq!(report.redo_applied, 0, "all redo skipped: {report:?}");
        assert!(report.redo_skipped >= 1);
    }

    #[test]
    fn secondary_indexes_rebuilt_equal_full_scan_after_crash() {
        use esdb_storage::schema::{IndexDef, IndexKind};
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(64, disk.clone()));
        let defs = vec![
            IndexDef { id: 0, name: "h".into(), col: 0, kind: IndexKind::Hash },
            IndexDef { id: 1, name: "r".into(), col: 0, kind: IndexKind::Range },
        ];
        let table = Arc::new(Table::create_indexed(1, "t", 1, defs.clone(), pool.clone()));
        let wal = Wal::new(LogPolicy::Serial, None);

        // Committed txn: ten inserts, one value-moving update, one delete.
        let b = wal.append(1, NULL_LSN, &LogBody::Begin);
        let mut prev = b.start;
        let mut lsn = b.end;
        for k in 0..10u64 {
            let row = vec![(k % 3) as i64];
            let rid = table.insert_logged(k, &row, lsn).unwrap();
            let rec = wal.append(1, prev, &LogBody::Insert { table: 1, key: k, rid, row });
            prev = rec.start;
            lsn = rec.end;
        }
        let rid4 = table.rid_of(4).unwrap();
        let before = table.update_logged(4, &[7], lsn).unwrap();
        let rec = wal.append(1, prev, &LogBody::Update { table: 1, key: 4, rid: rid4, before, after: vec![7] });
        prev = rec.start;
        lsn = rec.end;
        let rid9 = table.rid_of(9).unwrap();
        let before9 = table.delete_logged(9, lsn).unwrap();
        let rec = wal.append(1, prev, &LogBody::Delete { table: 1, key: 9, rid: rid9, before: before9 });
        wal.commit(1, rec.start);

        // Loser txn: durable insert, no commit — must vanish from indexes.
        let b2 = wal.append(2, NULL_LSN, &LogBody::Begin);
        let rid100 = table.insert_logged(100, &[1], b2.end).unwrap();
        let i100 = wal.append(2, b2.start, &LogBody::Insert { table: 1, key: 100, rid: rid100, row: vec![1] });
        wal.wait_durable(i100.end);

        pool.flush_all().unwrap();
        let pool2 = Arc::new(BufferPool::new(64, disk));
        let heap = HeapFile::from_pages(pool2, table.heap().pages());
        let recovered = Arc::new(Table::from_heap(
            Schema::with_indexes(1, "t", 1, defs),
            heap,
        ));
        let mut tables = HashMap::new();
        tables.insert(1u32, recovered.clone());
        recover(&wal.durable_records(), &tables).unwrap();

        // Full-scan reference model: value → sorted pks of the live heap.
        let mut expect: std::collections::BTreeMap<i64, Vec<u64>> = Default::default();
        recovered
            .scan(|k, row| expect.entry(row[0]).or_default().push(k))
            .unwrap();
        for pks in expect.values_mut() {
            pks.sort_unstable();
        }
        let expect: Vec<(i64, Vec<u64>)> = expect.into_iter().collect();
        for ix in recovered.secondaries() {
            assert_eq!(ix.entries(), expect, "index {}", ix.def().name);
        }
        let hash = recovered.secondary(0).unwrap();
        assert!(!hash.lookup_eq(1).contains(&100), "loser leaked into index");
        assert_eq!(hash.lookup_eq(7), vec![4], "moved update not tracked");
        assert_eq!(
            recovered.secondary(1).unwrap().lookup_range(0, 2).unwrap().len(),
            8,
            "delete not reflected"
        );
    }

    #[test]
    fn analyze_classifies_all_three_kinds() {
        let wal = Wal::new(LogPolicy::Serial, None);
        let b1 = wal.append(1, NULL_LSN, &LogBody::Begin);
        wal.commit(1, b1.start);
        let b2 = wal.append(2, NULL_LSN, &LogBody::Begin);
        wal.append(2, b2.start, &LogBody::Abort);
        let _b3 = wal.append(3, NULL_LSN, &LogBody::Begin);
        let report = analyze(&wal.records());
        assert!(report.winners.contains(&1));
        assert!(report.aborted.contains(&2));
        assert!(report.losers.contains(&3));
        assert!(report.in_doubt.is_empty());
    }

    #[test]
    fn analyze_marks_prepared_txns_in_doubt_until_decided() {
        let wal = Wal::new(LogPolicy::Serial, None);
        // txn 1: prepared, never decided → in doubt.
        let b1 = wal.append(1, NULL_LSN, &LogBody::Begin);
        wal.append(1, b1.start, &LogBody::Prepare { gtid: 77 });
        // txn 2: prepared, then committed → plain winner.
        let b2 = wal.append(2, NULL_LSN, &LogBody::Begin);
        let p2 = wal.append(2, b2.start, &LogBody::Prepare { gtid: 78 });
        wal.commit(2, p2.start);
        // txn 3: prepared, then aborted (coordinator said no) → aborted.
        let b3 = wal.append(3, NULL_LSN, &LogBody::Begin);
        let p3 = wal.append(3, b3.start, &LogBody::Prepare { gtid: 79 });
        wal.append(3, p3.start, &LogBody::Abort);

        let report = analyze(&wal.records());
        assert_eq!(report.in_doubt.get(&1), Some(&77));
        assert!(report.winners.contains(&2) && !report.in_doubt.contains_key(&2));
        assert!(report.aborted.contains(&3) && !report.in_doubt.contains_key(&3));
        assert!(report.losers.is_empty(), "in-doubt is not a loser: {report:?}");
    }

    #[test]
    fn in_doubt_txn_is_redone_but_not_undone() {
        let h = Harness::new();
        // Committed base row, then a prepared update+insert with no decision.
        let b = h.wal.append(1, NULL_LSN, &LogBody::Begin);
        let rid = h.table.insert_logged(5, &[50], b.end).unwrap();
        let i = h.wal.append(1, b.start, &LogBody::Insert { table: 1, key: 5, rid, row: vec![50] });
        h.wal.commit(1, i.start);

        let b2 = h.wal.append(2, NULL_LSN, &LogBody::Begin);
        let before = h.table.update_logged(5, &[51], b2.end).unwrap();
        let u = h.wal.append(2, b2.start, &LogBody::Update { table: 1, key: 5, rid, before, after: vec![51] });
        let rid9 = h.table.insert_logged(9, &[90], u.end).unwrap();
        let i9 = h.wal.append(2, u.start, &LogBody::Insert { table: 1, key: 9, rid: rid9, row: vec![90] });
        let p = h.wal.append(2, i9.start, &LogBody::Prepare { gtid: 42 });
        h.wal.wait_durable(p.end);

        let (table, report) = h.crash_and_recover(false);
        assert_eq!(report.in_doubt.get(&2), Some(&42));
        assert!(report.losers.is_empty());
        assert_eq!(report.undo_applied, 0, "{report:?}");
        // Prepared effects survive recovery (awaiting the decision).
        assert_eq!(table.get(5).unwrap(), vec![51]);
        assert_eq!(table.get(9).unwrap(), vec![90]);

        // Coordinator answer: abort → undo_txn rolls the txn back exactly.
        let mut tables = HashMap::new();
        tables.insert(1u32, table.clone());
        let n = undo_txn(&h.wal.durable_records(), &tables, 2, 10_000_000).unwrap();
        assert_eq!(n, 2);
        assert_eq!(table.get(5).unwrap(), vec![50], "update restored");
        assert!(table.get(9).is_err(), "insert removed");
        assert_eq!(table.len(), 1);
    }
}
