//! Decoupled log buffer: allocation under a mutex, buffer fill outside it.
//!
//! The observation from the Aether work: the memcpy into the log buffer is
//! far longer than LSN allocation, so holding the mutex across the copy (as
//! [`crate::serial::SerialLogBuffer`] does) wastes almost all of the critical
//! section. Here the mutex covers only the few instructions of allocation;
//! the fill proceeds in parallel into a shared ring, and a `completed`
//! counter tells the flusher when a prefix has no holes.
//!
//! Hole tracking is simplified relative to Aether: `completed` is the *sum*
//! of filled bytes, so the flusher briefly blocks new allocations and waits
//! for in-flight fills (nanoseconds) to quiesce before reading the ring.

use crate::buffer::{LogBuffer, LogStore, LsnRange, Ring, LOG_START};
use crate::Lsn;
use esdb_sync::{RawLock, TatasLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default ring capacity: 4 MiB.
pub const DEFAULT_CAPACITY: usize = 4 << 20;

/// Log buffer with mutex-protected allocation and parallel fill.
pub struct DecoupledLogBuffer {
    pub(crate) ring: Ring,
    pub(crate) alloc_lock: TatasLock,
    /// Next LSN to allocate (stored only under `alloc_lock`).
    pub(crate) tail: AtomicU64,
    /// Total bytes whose fill has completed (equals `tail - LOG_START` when
    /// no fill is in flight).
    pub(crate) completed: AtomicU64,
    pub(crate) durable: AtomicU64,
    pub(crate) store: LogStore,
}

impl DecoupledLogBuffer {
    /// Creates a buffer with the default ring size.
    pub fn new(flush_latency: Option<Duration>) -> Self {
        Self::with_capacity(DEFAULT_CAPACITY, flush_latency)
    }

    /// Creates a buffer with an explicit ring capacity.
    pub fn with_capacity(capacity: usize, flush_latency: Option<Duration>) -> Self {
        Self::with_capacity_at(LOG_START, capacity, flush_latency)
    }

    /// Creates a buffer whose first LSN is `base` (post-crash continuation).
    pub fn with_capacity_at(base: u64, capacity: usize, flush_latency: Option<Duration>) -> Self {
        DecoupledLogBuffer {
            ring: Ring::new(capacity),
            alloc_lock: TatasLock::new(),
            tail: AtomicU64::new(base),
            completed: AtomicU64::new(0),
            durable: AtomicU64::new(base),
            store: LogStore::new_at(base, flush_latency),
        }
    }

    /// Number of physical flush operations issued.
    pub fn flush_count(&self) -> u64 {
        self.store.flush_count()
    }

    /// Allocates `len` bytes of log space. Must be called with `alloc_lock`
    /// held; flushes to make ring space if needed.
    pub(crate) fn allocate_locked(&self, len: u64) -> Lsn {
        assert!(
            len <= self.ring.capacity(),
            "log record of {len} bytes exceeds ring capacity"
        );
        let start = self.tail.load(Ordering::Relaxed);
        // Backpressure: the new range may not overwrite undurable bytes.
        if start + len - self.durable.load(Ordering::Acquire) > self.ring.capacity() {
            self.flush_locked(start);
        }
        self.tail.store(start + len, Ordering::Release);
        start
    }

    /// Flushes everything allocated so far. Must hold `alloc_lock` (which
    /// freezes `tail`); waits for in-flight fills, then appends to the store.
    pub(crate) fn flush_locked(&self, tail_snapshot: Lsn) {
        let base = self.store.base();
        // Bounded spin, then yield: in-flight fillers may be descheduled.
        let mut spins = 0u32;
        while self.completed.load(Ordering::Acquire) < tail_snapshot - base {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        let durable = self.durable.load(Ordering::Relaxed);
        if tail_snapshot > durable {
            // Safe: every byte in [durable, tail_snapshot) is filled
            // (completed count) and not reclaimed (durable watermark).
            let bytes = unsafe { self.ring.read(durable, tail_snapshot) };
            self.store.append(&bytes);
            self.durable.store(tail_snapshot, Ordering::Release);
        }
    }

    /// Fill phase: copy outside any lock, then publish completion.
    pub(crate) fn fill(&self, start: Lsn, payload: &[u8]) {
        unsafe { self.ring.write(start, payload) };
        self.completed
            .fetch_add(payload.len() as u64, Ordering::Release);
    }
}

impl LogBuffer for DecoupledLogBuffer {
    fn insert(&self, payload: &[u8]) -> LsnRange {
        let len = payload.len() as u64;
        // Contended allocation is log-subsystem queueing, not generic latch
        // spin (the nested LatchSpin timer inside the lock records nothing).
        if !self.alloc_lock.try_lock() {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::LogWait);
            self.alloc_lock.lock();
        }
        let start = self.allocate_locked(len);
        self.alloc_lock.unlock();
        self.fill(start, payload);
        LsnRange {
            start,
            end: start + len,
        }
    }

    fn flush(&self, lsn: Lsn) {
        if self.durable.load(Ordering::Acquire) >= lsn {
            return;
        }
        self.alloc_lock.lock();
        // Re-check: a concurrent flush may have covered us (group commit).
        if self.durable.load(Ordering::Acquire) < lsn {
            let tail = self.tail.load(Ordering::Relaxed);
            self.flush_locked(tail);
        }
        self.alloc_lock.unlock();
    }

    fn durable_lsn(&self) -> Lsn {
        self.durable.load(Ordering::Acquire)
    }

    fn current_lsn(&self) -> Lsn {
        self.tail.load(Ordering::Acquire)
    }

    fn read_durable(&self, from: Lsn) -> Vec<u8> {
        self.store.read_from(from)
    }

    fn flush_count(&self) -> u64 {
        self.store.flush_count()
    }

    fn name(&self) -> &'static str {
        "decoupled"
    }

    fn start_lsn(&self) -> Lsn {
        self.store.base()
    }

    fn store(&self) -> &LogStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ranges_contiguous_and_durable() {
        let b = DecoupledLogBuffer::new(None);
        let a = b.insert(b"first");
        let c = b.insert(b"second");
        assert_eq!(a.end, c.start);
        b.flush(c.end);
        assert_eq!(b.read_durable(LOG_START), b"firstsecond");
    }

    #[test]
    fn small_ring_applies_backpressure() {
        let b = DecoupledLogBuffer::with_capacity(64, None);
        // Insert far more than the ring holds; backpressure flushes must keep
        // every byte.
        for i in 0..100u8 {
            b.insert(&[i; 16]);
        }
        b.flush(b.current_lsn());
        let bytes = b.read_durable(LOG_START);
        assert_eq!(bytes.len(), 1600);
        assert_eq!(&bytes[0..16], &[0u8; 16]);
        assert_eq!(&bytes[1584..], &[99u8; 16]);
    }

    #[test]
    fn concurrent_inserts_no_bytes_lost() {
        let b = Arc::new(DecoupledLogBuffer::with_capacity(4096, None));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    // Distinct marker per record for post-hoc verification.
                    let mut payload = [t; 24];
                    payload[0..4].copy_from_slice(&i.to_le_bytes());
                    b.insert(&payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        b.flush(b.current_lsn());
        let bytes = b.read_durable(LOG_START);
        assert_eq!(bytes.len(), 4 * 500 * 24);
        // Every record present exactly once: check per-thread sequence sets.
        let mut seen = vec![vec![false; 500]; 4];
        for rec in bytes.chunks_exact(24) {
            let t = rec[4] as usize;
            let i = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
            assert!(!seen[t][i], "duplicate record t={t} i={i}");
            seen[t][i] = true;
        }
        assert!(seen.iter().all(|v| v.iter().all(|&x| x)));
    }

    #[test]
    #[should_panic(expected = "exceeds ring capacity")]
    fn oversized_record_rejected() {
        let b = DecoupledLogBuffer::with_capacity(32, None);
        b.insert(&[0u8; 64]);
    }
}
