//! Consolidation-array log buffer (Aether's "C" on top of "D").
//!
//! Under high insert rates even the short allocation mutex of the decoupled
//! buffer becomes a convoy. The consolidation array fixes the *number of
//! acquirers* rather than the critical-section length: threads that arrive
//! concurrently combine their requests in a small array of slots; one
//! *leader* per group acquires the allocation mutex once for the whole
//! group's bytes and hands each *follower* its offset. Contention on the
//! mutex now grows with the number of groups, not the number of threads.
//!
//! Slot protocol (one `AtomicU64` per slot, packed `gen:16 | count:16 |
//! size:32`):
//!
//! 1. A thread CASes itself into a slot: `count 0 → 1` makes it the leader;
//!    `count n → n+1, size += len` makes it a follower at relative offset
//!    `size`.
//! 2. The leader takes the allocation mutex, *closes* the slot (no more
//!    joiners), allocates `size` bytes, publishes the base LSN, and fills its
//!    own record.
//! 3. Followers wait for the published base, fill at `base + rel`, and bump
//!    the consumed counter; the leader recycles the slot for the next
//!    generation once everyone is done.
//!
//! The 16-bit generation tag prevents ABA between rounds; a thread would
//! have to sleep through 65,536 full generations of one slot mid-protocol to
//! be fooled, which we accept.

use crate::buffer::{LogBuffer, LogStore, LsnRange};
use crate::decoupled::DecoupledLogBuffer;
use crate::Lsn;
use esdb_sync::RawLock;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Sentinel in the `size` field marking a slot closed to joiners.
const CLOSED: u32 = u32::MAX;
/// A group never accumulates more than this many bytes (keeps groups well
/// under the ring size and bounds follower wait).
const MAX_GROUP_BYTES: u32 = 1 << 20;

#[inline]
fn pack(gen: u16, count: u16, size: u32) -> u64 {
    ((gen as u64) << 48) | ((count as u64) << 32) | size as u64
}

#[inline]
fn unpack(v: u64) -> (u16, u16, u32) {
    ((v >> 48) as u16, (v >> 32) as u16, v as u32)
}

struct Slot {
    state: AtomicU64,
    base: AtomicU64,
    /// Generation whose `base` is published (u64::MAX = none).
    base_gen: AtomicU64,
    consumed: AtomicU32,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU64::new(pack(0, 0, 0)),
            base: AtomicU64::new(0),
            base_gen: AtomicU64::new(u64::MAX),
            consumed: AtomicU32::new(0),
        }
    }
}

enum Join {
    Leader { gen: u16 },
    Follower { gen: u16, rel: u32 },
    Unavailable,
}

/// Decoupled buffer fronted by a consolidation array.
pub struct ConsolidatedLogBuffer {
    inner: DecoupledLogBuffer,
    slots: Vec<Slot>,
    /// Group byte cap: min(MAX_GROUP_BYTES, ring capacity / 4).
    max_group: u32,
    /// Diagnostic counters for the benchmark harness.
    groups: AtomicU64,
    consolidations: AtomicU64,
}

impl ConsolidatedLogBuffer {
    /// Default number of consolidation slots.
    pub const DEFAULT_SLOTS: usize = 4;

    /// Creates a buffer with the default ring and slot count.
    pub fn new(flush_latency: Option<Duration>) -> Self {
        Self::with_config(crate::decoupled::DEFAULT_CAPACITY, Self::DEFAULT_SLOTS, flush_latency)
    }

    /// Creates a buffer with explicit ring capacity and slot count.
    pub fn with_config(capacity: usize, slots: usize, flush_latency: Option<Duration>) -> Self {
        Self::with_config_at(crate::buffer::LOG_START, capacity, slots, flush_latency)
    }

    /// Creates a buffer whose first LSN is `base` (post-crash continuation).
    pub fn with_config_at(base: u64, capacity: usize, slots: usize, flush_latency: Option<Duration>) -> Self {
        ConsolidatedLogBuffer {
            inner: DecoupledLogBuffer::with_capacity_at(base, capacity, flush_latency),
            max_group: MAX_GROUP_BYTES.min((capacity / 4).max(1) as u32),
            slots: (0..slots.max(1)).map(|_| Slot::new()).collect(),
            groups: AtomicU64::new(0),
            consolidations: AtomicU64::new(0),
        }
    }

    /// Number of leader groups formed (allocation mutex acquisitions via the
    /// array path).
    pub fn group_count(&self) -> u64 {
        self.groups.load(Ordering::Relaxed)
    }

    /// Number of inserts that rode along as followers — the contention the
    /// array absorbed.
    pub fn consolidation_count(&self) -> u64 {
        self.consolidations.load(Ordering::Relaxed)
    }

    /// Number of physical flush operations issued.
    pub fn flush_count(&self) -> u64 {
        self.inner.flush_count()
    }

    fn try_join(&self, slot: &Slot, len: u32) -> Join {
        loop {
            let s = slot.state.load(Ordering::Acquire);
            let (gen, count, size) = unpack(s);
            if size == CLOSED {
                return Join::Unavailable;
            }
            if count == 0 {
                if slot
                    .state
                    .compare_exchange_weak(s, pack(gen, 1, len), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return Join::Leader { gen };
                }
            } else {
                if count == u16::MAX || size.saturating_add(len) >= self.max_group {
                    return Join::Unavailable;
                }
                if slot
                    .state
                    .compare_exchange_weak(
                        s,
                        pack(gen, count + 1, size + len),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return Join::Follower { gen, rel: size };
                }
            }
        }
    }

    fn lead(&self, slot: &Slot, gen: u16, payload: &[u8]) -> LsnRange {
        let len = payload.len() as u64;
        if !self.inner.alloc_lock.try_lock() {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::LogWait);
            self.inner.alloc_lock.lock();
        }
        // Close the slot: no more joiners for this generation. Whatever size
        // accumulated by now is the group.
        let (count, total) = loop {
            let s = slot.state.load(Ordering::Acquire);
            let (g, c, sz) = unpack(s);
            debug_assert_eq!(g, gen);
            if slot
                .state
                .compare_exchange_weak(s, pack(g, c, CLOSED), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                break (c, sz);
            }
        };
        let base = self.inner.allocate_locked(total as u64);
        self.inner.alloc_lock.unlock();
        self.groups.fetch_add(1, Ordering::Relaxed);

        // Publish the base so followers can fill.
        slot.base.store(base, Ordering::Release);
        slot.base_gen.store(gen as u64, Ordering::Release);

        // Leader's own record sits at relative offset 0. Whoever finishes
        // last recycles the slot — nobody busy-waits for stragglers.
        self.inner.fill(base, payload);
        self.signal_done(slot, gen, count);

        LsnRange {
            start: base,
            end: base + len,
        }
    }

    /// Marks one group member's fill complete; the last one to finish
    /// recycles the slot for the next generation.
    fn signal_done(&self, slot: &Slot, gen: u16, count: u16) {
        let done = slot.consumed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == count as u32 {
            slot.consumed.store(0, Ordering::Relaxed);
            slot.base_gen.store(u64::MAX, Ordering::Release);
            slot.state
                .store(pack(gen.wrapping_add(1), 0, 0), Ordering::Release);
        }
    }

    fn follow(&self, slot: &Slot, gen: u16, rel: u32, payload: &[u8]) -> LsnRange {
        self.consolidations.fetch_add(1, Ordering::Relaxed);
        // Bounded spin, then yield: on an oversubscribed host the leader may
        // be descheduled between our join and its publish. Waiting on the
        // leader is time spent in the log subsystem.
        if slot.base_gen.load(Ordering::Acquire) != gen as u64 {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::LogWait);
            let mut spins = 0u32;
            while slot.base_gen.load(Ordering::Acquire) != gen as u64 {
                spins += 1;
                if spins > 128 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        let base = slot.base.load(Ordering::Acquire);
        // The group size is frozen in the closed state word; read it before
        // signalling so a concurrent recycle cannot outrun us.
        let (_, count, _) = unpack(slot.state.load(Ordering::Acquire));
        let start = base + rel as u64;
        self.inner.fill(start, payload);
        self.signal_done(slot, gen, count);
        LsnRange {
            start,
            end: start + payload.len() as u64,
        }
    }
}

thread_local! {
    /// Per-thread home slot, derived once from the thread's address space.
    static HOME_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn home_slot(n: usize) -> usize {
    HOME_SLOT.with(|h| {
        if h.get() == usize::MAX {
            // Derive a per-thread value from a stack address.
            let marker = 0u8;
            let addr = &marker as *const u8 as usize;
            h.set((addr >> 7) % n.max(1));
        }
        h.get() % n
    })
}

impl LogBuffer for ConsolidatedLogBuffer {
    fn insert(&self, payload: &[u8]) -> LsnRange {
        let len = payload.len() as u32;
        let n = self.slots.len();
        let first = home_slot(n);
        // Try a couple of slots; fall back to the direct (decoupled) path.
        for attempt in 0..2 {
            let slot = &self.slots[(first + attempt) % n];
            match self.try_join(slot, len) {
                Join::Leader { gen } => return self.lead(slot, gen, payload),
                Join::Follower { gen, rel } => return self.follow(slot, gen, rel, payload),
                Join::Unavailable => continue,
            }
        }
        self.inner.insert(payload)
    }

    fn flush(&self, lsn: Lsn) {
        self.inner.flush(lsn)
    }

    fn durable_lsn(&self) -> Lsn {
        self.inner.durable_lsn()
    }

    fn current_lsn(&self) -> Lsn {
        self.inner.current_lsn()
    }

    fn read_durable(&self, from: Lsn) -> Vec<u8> {
        self.inner.read_durable(from)
    }

    fn flush_count(&self) -> u64 {
        self.inner.flush_count()
    }

    fn name(&self) -> &'static str {
        "consolidated"
    }

    fn start_lsn(&self) -> Lsn {
        self.inner.start_lsn()
    }

    fn store(&self) -> &LogStore {
        self.inner.store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::LOG_START;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        for (g, c, s) in [(0u16, 0u16, 0u32), (7, 3, 1024), (u16::MAX, u16::MAX, CLOSED)] {
            assert_eq!(unpack(pack(g, c, s)), (g, c, s));
        }
    }

    #[test]
    fn single_thread_inserts_behave_like_decoupled() {
        let b = ConsolidatedLogBuffer::new(None);
        let a = b.insert(b"aaa");
        let c = b.insert(b"cccc");
        assert_eq!(a.start, LOG_START);
        assert_eq!(c.start, a.end);
        b.flush(c.end);
        assert_eq!(b.read_durable(LOG_START), b"aaacccc");
    }

    #[test]
    fn concurrent_inserts_no_bytes_lost_or_duplicated() {
        let b = Arc::new(ConsolidatedLogBuffer::with_config(1 << 16, 2, None));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let mut payload = [t; 24];
                    payload[0..4].copy_from_slice(&i.to_le_bytes());
                    b.insert(&payload);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        b.flush(b.current_lsn());
        let bytes = b.read_durable(LOG_START);
        assert_eq!(bytes.len(), 4 * 500 * 24);
        let mut seen = vec![vec![false; 500]; 4];
        for rec in bytes.chunks_exact(24) {
            let t = rec[4] as usize;
            let i = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
            assert!(!seen[t][i], "duplicate record t={t} i={i}");
            seen[t][i] = true;
        }
        assert!(seen.iter().all(|v| v.iter().all(|&x| x)));
    }

    #[test]
    fn consolidation_happens_under_contention() {
        // With one slot and many threads, followers must appear.
        let b = Arc::new(ConsolidatedLogBuffer::with_config(1 << 20, 1, None));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    b.insert(&[1u8; 48]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        b.flush(b.current_lsn());
        assert_eq!(
            b.read_durable(LOG_START).len(),
            6 * 2_000 * 48,
            "all bytes must survive consolidation"
        );
        // Groups + direct-path inserts account for every record.
        assert!(b.group_count() > 0);
    }
}
