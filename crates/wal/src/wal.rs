//! The write-ahead log facade: framing + policy selection + commit flushes.

use crate::buffer::{LogBuffer, LsnRange, LOG_START};
use crate::consolidated::ConsolidatedLogBuffer;
use crate::decoupled::DecoupledLogBuffer;
use crate::record::{self, LogBody, LogRecord};
use crate::serial::SerialLogBuffer;
use crate::Lsn;
use std::str::FromStr;
use std::time::Duration;

/// Which log buffer implementation the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogPolicy {
    /// Mutex across allocation and copy (baseline).
    Serial,
    /// Mutex across allocation only; parallel fill.
    Decoupled,
    /// Consolidation array + decoupled fill. The engine default.
    #[default]
    Consolidated,
}

impl LogPolicy {
    /// All policies in sweep order.
    pub const ALL: [LogPolicy; 3] = [LogPolicy::Serial, LogPolicy::Decoupled, LogPolicy::Consolidated];
}

impl std::fmt::Display for LogPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LogPolicy::Serial => "serial",
            LogPolicy::Decoupled => "decoupled",
            LogPolicy::Consolidated => "consolidated",
        })
    }
}

impl FromStr for LogPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(LogPolicy::Serial),
            "decoupled" => Ok(LogPolicy::Decoupled),
            "consolidated" => Ok(LogPolicy::Consolidated),
            other => Err(format!(
                "unknown log policy {other:?} (expected serial|decoupled|consolidated)"
            )),
        }
    }
}

/// The engine-facing write-ahead log.
pub struct Wal {
    buffer: Box<dyn LogBuffer>,
    /// Durability broadcast: every flush that goes through this facade rings
    /// the condvar, so log shippers can tail the durable frontier without
    /// adding any work — or any copy — to the commit path itself.
    /// (Vendored `parking_lot` has no `Condvar`, hence `std::sync` here.)
    hub: (std::sync::Mutex<()>, std::sync::Condvar),
}

impl Wal {
    /// Creates a WAL with the given buffer policy and log-device latency.
    pub fn new(policy: LogPolicy, flush_latency: Option<Duration>) -> Self {
        Self::new_at(LOG_START, policy, flush_latency)
    }

    /// Creates a WAL whose first LSN is `base` — a post-crash continuation
    /// of an earlier log, so surviving page LSNs stay in the past.
    pub fn new_at(base: crate::Lsn, policy: LogPolicy, flush_latency: Option<Duration>) -> Self {
        let buffer: Box<dyn LogBuffer> = match policy {
            LogPolicy::Serial => Box::new(SerialLogBuffer::new_at(base, flush_latency)),
            LogPolicy::Decoupled => Box::new(DecoupledLogBuffer::with_capacity_at(
                base,
                crate::decoupled::DEFAULT_CAPACITY,
                flush_latency,
            )),
            LogPolicy::Consolidated => Box::new(ConsolidatedLogBuffer::with_config_at(
                base,
                crate::decoupled::DEFAULT_CAPACITY,
                ConsolidatedLogBuffer::DEFAULT_SLOTS,
                flush_latency,
            )),
        };
        Self::with_buffer(buffer)
    }

    /// Wraps an explicit buffer implementation (used by benchmarks).
    pub fn with_buffer(buffer: Box<dyn LogBuffer>) -> Self {
        Wal {
            buffer,
            hub: (std::sync::Mutex::new(()), std::sync::Condvar::new()),
        }
    }

    /// Wakes every subscriber blocked in [`Wal::wait_durable_beyond`].
    fn notify_durable(&self) {
        let _guard = self.hub.0.lock().unwrap();
        self.hub.1.notify_all();
    }

    /// Appends one record. Returns its LSN range; the record is not durable
    /// until a flush covers `range.end`.
    pub fn append(&self, txn_id: u64, prev_lsn: Lsn, body: &LogBody) -> LsnRange {
        let bytes = record::encode(txn_id, prev_lsn, body);
        self.buffer.insert(&bytes)
    }

    /// Appends a commit record and makes it durable (group commit: one
    /// physical flush may cover many concurrent committers).
    pub fn commit(&self, txn_id: u64, prev_lsn: Lsn) -> Lsn {
        let range = self.append(txn_id, prev_lsn, &LogBody::Commit);
        if esdb_obs::enabled() {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::CommitFlush);
            let start = std::time::Instant::now();
            self.buffer.flush(range.end);
            esdb_obs::record_component(
                esdb_obs::Component::WalFlush,
                start.elapsed().as_nanos() as u64,
            );
        } else {
            self.buffer.flush(range.end);
        }
        self.notify_durable();
        range.start
    }

    /// Appends a commit record *without* waiting for durability — the early
    /// lock release path. The caller later waits via [`Wal::wait_durable`].
    pub fn commit_no_flush(&self, txn_id: u64, prev_lsn: Lsn) -> LsnRange {
        self.append(txn_id, prev_lsn, &LogBody::Commit)
    }

    /// Blocks until everything up to `lsn` is durable.
    pub fn wait_durable(&self, lsn: Lsn) {
        if esdb_obs::enabled() {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::LogWait);
            let start = std::time::Instant::now();
            self.buffer.flush(lsn);
            esdb_obs::record_component(
                esdb_obs::Component::WalFlush,
                start.elapsed().as_nanos() as u64,
            );
        } else {
            self.buffer.flush(lsn);
        }
        self.notify_durable();
    }

    /// The batched group-commit entry point: makes every LSN in `lsns`
    /// durable with **one** physical flush covering the maximum, and returns
    /// that covering LSN (`None` when the batch is empty — no flush at all).
    ///
    /// This is what a reactor tick calls: every session that committed during
    /// the tick contributes its commit LSN, and the whole tick pays a single
    /// log-device wait instead of one per session. `wait_durable` in a loop
    /// would be *correct* (later waits return instantly) but would still ring
    /// the flush path per call; this never touches the device more than once.
    pub fn flush_batch(&self, lsns: impl IntoIterator<Item = Lsn>) -> Option<Lsn> {
        let max = lsns.into_iter().max()?;
        self.wait_durable(max);
        Some(max)
    }

    /// Blocks until the durable LSN advances *past* `lsn` or `timeout`
    /// expires, returning the durable LSN either way. This is the log
    /// shipper's subscription point: commits ring the condvar, and the wait
    /// re-polls on a short cadence regardless, so correctness never depends
    /// on a wakeup arriving.
    pub fn wait_durable_beyond(&self, lsn: Lsn, timeout: Duration) -> Lsn {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.hub.0.lock().unwrap();
        loop {
            let durable = self.buffer.durable_lsn();
            if durable > lsn {
                return durable;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return durable;
            }
            let wait = (deadline - now).min(Duration::from_millis(5));
            let (g, _) = self.hub.1.wait_timeout(guard, wait).unwrap();
            guard = g;
        }
    }

    /// Copies the persisted log tail `[from, end)` for shipping, returning
    /// the bytes and the stream offset they start at. `None` means `from`
    /// predates the store's base — that prefix was reclaimed by
    /// [`Wal::truncate_before`], so the subscriber needs a snapshot.
    ///
    /// With a tripped lying-device fault the store holds fewer bytes than
    /// `durable_lsn` claims; this reads what the device actually kept, which
    /// is exactly what a replica of a lying primary would receive.
    pub fn durable_tail(&self, from: Lsn) -> Option<(Vec<u8>, Lsn)> {
        self.buffer.store().read_tail(from)
    }

    /// Reclaims the persisted log prefix before `lsn` (a checkpoint's
    /// `redo_lsn`, which always sits on a record boundary). Decoding entry
    /// points follow the advanced base automatically.
    pub fn truncate_before(&self, lsn: Lsn) {
        self.buffer.store().truncate_before(lsn);
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.buffer.durable_lsn()
    }

    /// End of the allocated log.
    pub fn current_lsn(&self) -> Lsn {
        self.buffer.current_lsn()
    }

    /// Number of physical log-device flushes so far. Together with a commit
    /// count this measures group-commit effectiveness: batched commits from
    /// pipelined sessions should push commits-per-flush well above 1.
    pub fn flush_count(&self) -> u64 {
        self.buffer.flush_count()
    }

    /// Buffer implementation name.
    pub fn buffer_name(&self) -> &'static str {
        self.buffer.name()
    }

    /// Flushes everything and decodes the full durable log (recovery entry
    /// point and test oracle).
    pub fn records(&self) -> Vec<LogRecord> {
        self.buffer.flush(self.buffer.current_lsn());
        let base = self.buffer.start_lsn();
        record::decode_stream(&self.buffer.read_durable(base), base)
    }

    /// Decodes only the durable prefix of the log *without* forcing a flush —
    /// what recovery would actually see after a crash.
    pub fn durable_records(&self) -> Vec<LogRecord> {
        let base = self.buffer.start_lsn();
        record::decode_stream(&self.buffer.read_durable(base), base)
    }

    /// Like [`Wal::durable_records`] but keeps the salvage report: how many
    /// bytes were valid and why decoding stopped, if it did.
    pub fn durable_records_checked(&self) -> record::SalvagedLog {
        let base = self.buffer.start_lsn();
        record::decode_stream_checked(&self.buffer.read_durable(base), base)
    }

    /// Arms the lying-log-device fault on the underlying store (see
    /// [`crate::buffer::LogFault`]).
    pub fn inject_log_fault(&self, fault: crate::buffer::LogFault) {
        self.buffer.store().set_fault(fault);
    }

    /// Truncates the *persisted* log to its first `keep` bytes — direct
    /// crash damage for torture tests.
    pub fn truncate_durable(&self, keep: usize) {
        self.buffer.store().truncate_to(keep);
    }

    /// Flips one bit of the persisted log at absolute stream offset
    /// `offset` — direct corruption for torture tests.
    pub fn flip_durable_bit(&self, offset: Lsn, bit: u8) {
        self.buffer.store().flip_bit(offset, bit);
    }

    /// Bytes actually persisted on the log device (less than
    /// `durable_lsn() - start_lsn()` once a lying-device fault tripped).
    pub fn durable_len(&self) -> u64 {
        self.buffer.store().len()
    }

    /// First LSN of this log incarnation.
    pub fn start_lsn(&self) -> Lsn {
        self.buffer.start_lsn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NULL_LSN;

    #[test]
    fn policy_roundtrip() {
        for p in LogPolicy::ALL {
            assert_eq!(p.to_string().parse::<LogPolicy>().unwrap(), p);
        }
        assert!("raft".parse::<LogPolicy>().is_err());
    }

    #[test]
    fn append_and_replay_across_policies() {
        for policy in LogPolicy::ALL {
            let wal = Wal::new(policy, None);
            let b = wal.append(1, NULL_LSN, &LogBody::Begin);
            let u = wal.append(
                1,
                b.start,
                &LogBody::Update {
                    table: 1,
                    key: 9,
                    rid: esdb_storage::Rid::new(0, 0),
                    before: vec![1],
                    after: vec![2],
                },
            );
            wal.commit(1, u.start);
            let records = wal.records();
            assert_eq!(records.len(), 3, "policy {policy}");
            assert_eq!(records[0].body, LogBody::Begin);
            assert_eq!(records[2].body, LogBody::Commit);
            assert_eq!(records[1].prev_lsn, records[0].lsn);
            assert!(wal.durable_lsn() >= records[2].lsn);
        }
    }

    #[test]
    fn commit_no_flush_leaves_log_volatile() {
        let wal = Wal::new(LogPolicy::Consolidated, None);
        let b = wal.append(7, NULL_LSN, &LogBody::Begin);
        let c = wal.commit_no_flush(7, b.start);
        // Not yet durable...
        assert!(wal.durable_lsn() < c.end);
        assert!(wal.durable_records().is_empty());
        // ...until explicitly waited on.
        wal.wait_durable(c.end);
        assert_eq!(wal.durable_records().len(), 2);
    }

    #[test]
    fn flush_batch_covers_the_max_with_one_flush() {
        let wal = Wal::new(LogPolicy::Consolidated, None);
        let mut ends = Vec::new();
        for txn in 0..4u64 {
            let b = wal.append(txn, NULL_LSN, &LogBody::Begin);
            let c = wal.commit_no_flush(txn, b.start);
            ends.push(c.end);
        }
        assert!(wal.durable_lsn() < *ends.iter().max().unwrap());
        let before = wal.flush_count();
        let covered = wal.flush_batch(ends.iter().copied()).expect("non-empty batch");
        assert_eq!(covered, *ends.iter().max().unwrap());
        assert!(wal.durable_lsn() >= covered, "every commit in the batch is durable");
        assert_eq!(wal.flush_count(), before + 1, "one physical flush for the whole batch");
        // An empty batch flushes nothing.
        assert_eq!(wal.flush_batch(std::iter::empty()), None);
        assert_eq!(wal.flush_count(), before + 1);
    }

    #[test]
    fn txn_chain_walks_backwards() {
        let wal = Wal::new(LogPolicy::Serial, None);
        let b = wal.append(3, NULL_LSN, &LogBody::Begin);
        let u1 = wal.append(
            3,
            b.start,
            &LogBody::Insert {
                table: 0,
                key: 1,
                rid: esdb_storage::Rid::new(0, 0),
                row: vec![],
            },
        );
        let u2 = wal.append(
            3,
            u1.start,
            &LogBody::Insert {
                table: 0,
                key: 2,
                rid: esdb_storage::Rid::new(0, 1),
                row: vec![],
            },
        );
        let records = wal.records();
        let by_lsn: std::collections::HashMap<_, _> =
            records.iter().map(|r| (r.lsn, r)).collect();
        // Walk the chain from the last record back to Begin.
        let mut cur = u2.start;
        let mut seen = Vec::new();
        while cur != NULL_LSN {
            let r = by_lsn[&cur];
            seen.push(r.lsn);
            cur = r.prev_lsn;
        }
        assert_eq!(seen, vec![u2.start, u1.start, b.start]);
    }
}
