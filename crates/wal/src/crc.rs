//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for WAL record checksums.
//!
//! Self-contained table-driven implementation — the vendored dependency set
//! has no checksum crate, and the WAL needs exactly one algorithm. The table
//! is built in a `const fn` so it costs nothing at startup and the whole
//! module is allocation-free.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state.
///
/// ```
/// use esdb_wal::crc::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    #[inline]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum value.
    #[inline]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
