//! Crash-torture matrix for online slot migration.
//!
//! Every cell migrates slot 0 from shard 0 to shard 1 while scripted
//! foreground load — single-shard writes on both sides plus cross-shard
//! 2PC transactions — runs between coordinator steps. One of
//! {coordinator, source, destination} crashes once the migration reaches
//! a chosen phase; the run then resumes and completes. The whole history
//! (ownership transitions, committed writes, final scans) feeds
//! [`esdb_check::MigrationOracle`], which demands zero lost rows, zero
//! duplicated rows, and zero dual-ownership instants.
//!
//! Matrix: 3 crashing parties × 4 crash phases × 3 seeds = 36 cells.

use esdb_check::{MigEvent, MigrationOracle};
use esdb_core::{slot_of, Database, EngineConfig, RoutingTable};
use esdb_rebal::{Migration, MigrationEnv, MigrationLog, MigrationSpec, Phase, ShardHandle};
use esdb_shard::{
    DecisionLog, OwnedShard, ShardBackend, ShardOwnership, ShardRouter, SharedRouting,
};
use esdb_workload::{TxnSpec, WorkloadOp};
use std::collections::HashSet;
use std::sync::Arc;

const SLOTS: u32 = 8;
const MOVING: u32 = 0;
const T: u32 = 0;

struct Cluster {
    dbs: Vec<Arc<Database>>,
    owns: Vec<Arc<ShardOwnership>>,
    routing: Arc<SharedRouting>,
    coord: Arc<DecisionLog>,
}

impl Cluster {
    fn new() -> Cluster {
        let table = RoutingTable::uniform(2, SLOTS);
        let routing = Arc::new(SharedRouting::new(table.clone()));
        let mut dbs = Vec::new();
        let mut owns = Vec::new();
        for shard in 0..2u32 {
            let db = Arc::new(Database::open(EngineConfig::default()));
            db.create_table("t", 1).unwrap();
            dbs.push(db);
            owns.push(Arc::new(ShardOwnership::for_shard(&table, shard)));
        }
        Cluster { dbs, owns, routing, coord: Arc::new(DecisionLog::new()) }
    }

    fn backend(&self, shard: usize) -> OwnedShard {
        OwnedShard {
            db: Arc::clone(&self.dbs[shard]),
            own: Arc::clone(&self.owns[shard]),
            routing: Arc::clone(&self.routing),
        }
    }

    fn router(&self) -> ShardRouter {
        let shards: Vec<Box<dyn ShardBackend>> =
            (0..2).map(|s| Box::new(self.backend(s)) as Box<dyn ShardBackend>).collect();
        ShardRouter::with_routing(
            shards,
            Arc::clone(&self.routing),
            Arc::clone(&self.coord),
            None,
        )
        .unwrap()
    }

    fn env(&self) -> MigrationEnv {
        MigrationEnv {
            source: ShardHandle { db: Arc::clone(&self.dbs[0]), own: Arc::clone(&self.owns[0]) },
            dest: ShardHandle { db: Arc::clone(&self.dbs[1]), own: Arc::clone(&self.owns[1]) },
            routing: Arc::clone(&self.routing),
            coord: Arc::clone(&self.coord),
        }
    }

    /// Crash-replaces shard `s`: engine recovered from flushed pages + WAL
    /// redo, ownership gate rebuilt from the current routing table.
    fn crash_shard(&mut self, s: usize) {
        self.dbs[s] = Arc::new(self.dbs[s].simulate_crash(true));
        self.owns[s] =
            Arc::new(ShardOwnership::for_shard(&self.routing.current(), s as u32));
    }
}

/// Scripted load + oracle bookkeeping around one migration run.
struct Harness {
    cluster: Cluster,
    oracle: MigrationOracle,
    rng: u64,
    val: i64,
    live: HashSet<u64>,
    moving_keys: Vec<u64>,
    keep_keys: Vec<u64>,
    other_keys: Vec<u64>,
    owned_view: [bool; 2],
}

impl Harness {
    fn new(seed: u64) -> Harness {
        let cluster = Cluster::new();
        let table = cluster.routing.current();
        let mut moving_keys = Vec::new();
        let mut keep_keys = Vec::new();
        let mut other_keys = Vec::new();
        for k in 0..100_000u64 {
            let slot = slot_of(T, k, SLOTS);
            if slot == MOVING && moving_keys.len() < 24 {
                moving_keys.push(k);
            } else if table.slots[slot as usize] == 0 && slot != MOVING && keep_keys.len() < 16 {
                keep_keys.push(k);
            } else if table.slots[slot as usize] == 1 && other_keys.len() < 16 {
                other_keys.push(k);
            }
        }
        let mut oracle = MigrationOracle::new();
        for shard in 0..2u32 {
            for slot in 0..SLOTS {
                oracle.record(MigEvent::Own {
                    shard,
                    slot,
                    owned: cluster.owns[shard as usize].owns(slot),
                });
            }
        }
        Harness {
            cluster,
            oracle,
            rng: seed.wrapping_mul(2) | 1,
            val: 0,
            live: HashSet::new(),
            moving_keys,
            keep_keys,
            other_keys,
            owned_view: [true, false],
        }
    }

    fn rand(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng >> 33
    }

    fn pick(&mut self, which: usize) -> u64 {
        let r = self.rand() as usize;
        let list = match which {
            0 => &self.moving_keys,
            1 => &self.keep_keys,
            _ => &self.other_keys,
        };
        list[r % list.len()]
    }

    fn write_op(&mut self, key: u64) -> WorkloadOp {
        self.val += 1;
        if self.live.contains(&key) {
            WorkloadOp::Write { table: T, key, row: vec![self.val] }
        } else {
            WorkloadOp::Insert { table: T, key, row: vec![self.val] }
        }
    }

    /// Runs `spec` through the router and records its committed effects.
    fn commit(&mut self, router: &mut ShardRouter, ops: Vec<WorkloadOp>) {
        let spec = TxnSpec { kind: "rebal", ops: ops.clone(), may_fail: false };
        let table = self.cluster.routing.current();
        let outcome = router.execute(&spec).expect("scripted load must route");
        assert!(outcome.is_committed(), "scripted load must commit");
        for op in &ops {
            match op {
                WorkloadOp::Insert { key, row, .. } | WorkloadOp::Write { key, row, .. } => {
                    self.live.insert(*key);
                    self.oracle.record(MigEvent::Write {
                        shard: table.shard_of(T, *key),
                        slot: table.slot_for(T, *key),
                        key: *key,
                        val: row[0],
                    });
                }
                WorkloadOp::Delete { key, .. } => {
                    self.live.remove(key);
                    self.oracle.record(MigEvent::Delete {
                        shard: table.shard_of(T, *key),
                        slot: table.slot_for(T, *key),
                        key: *key,
                    });
                }
                _ => {}
            }
        }
    }

    /// One foreground round: a write into the moving slot, a write
    /// elsewhere, a cross-shard 2PC pair, and an occasional delete.
    ///
    /// While the migration sits in its fence window (`fenced`), the
    /// single-threaded script must not touch the moving slot — a fenced
    /// write parks until cutover, which only this thread can perform.
    /// `fence_blocks_writers_until_cutover` covers that interleaving with
    /// a real second thread.
    fn load_round(&mut self, router: &mut ShardRouter, fenced: bool) {
        if !fenced {
            let k = self.pick(0);
            let op = self.write_op(k);
            self.commit(router, vec![op]);
        }

        let side = if self.rand() % 2 == 0 { 1 } else { 2 };
        let k = self.pick(side);
        let op = self.write_op(k);
        self.commit(router, vec![op]);

        // Cross-shard: a moving-slot key plus a key on the *other* shard
        // under the current table.
        if !fenced {
            let a = self.pick(0);
            let a_shard = self.cluster.routing.current().shard_of(T, a);
            let b = self.pick(if a_shard == 0 { 2 } else { 1 });
            let op_a = self.write_op(a);
            let op_b = self.write_op(b);
            self.commit(router, vec![op_a, op_b]);

            if self.rand() % 4 == 0 {
                let k = self.pick(0);
                if self.live.contains(&k) {
                    self.commit(router, vec![WorkloadOp::Delete { table: T, key: k }]);
                }
            }
        }
    }

    /// Records ownership transitions of the moving slot since last look —
    /// releases before adoptions, matching the cutover's own order.
    fn observe(&mut self) {
        let now = [
            self.cluster.owns[0].owns(MOVING),
            self.cluster.owns[1].owns(MOVING),
        ];
        for s in 0..2 {
            if self.owned_view[s] && !now[s] {
                self.oracle.record(MigEvent::Own { shard: s as u32, slot: MOVING, owned: false });
            }
        }
        for s in 0..2 {
            if !self.owned_view[s] && now[s] {
                self.oracle.record(MigEvent::Own { shard: s as u32, slot: MOVING, owned: true });
            }
        }
        self.owned_view = now;
    }

    /// Final scans → oracle verdict.
    fn finalize(&mut self) {
        for shard in 0..2u32 {
            let t = self.cluster.dbs[shard as usize].table(T).unwrap();
            let mut rows = Vec::new();
            t.scan(|key, row| rows.push((key, row[0]))).unwrap();
            for (key, val) in rows {
                self.oracle.record(MigEvent::FinalRow { shard, key, val });
            }
        }
        if let Err(v) = self.oracle.check() {
            panic!("migration invariant violated: {v}\nhistory: {:#?}", self.oracle.events());
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Party {
    Coord,
    Source,
    Dest,
}

/// One matrix cell: run to `crash_at`, crash `party`, resume, finish,
/// check the whole history.
fn torture_cell(party: Party, crash_at: Phase, seed: u64) {
    let mut h = Harness::new(seed);
    let mut router = h.cluster.router();
    for _ in 0..4 {
        h.load_round(&mut router, false);
    }

    let spec = MigrationSpec { mid: 1, slot: MOVING, from: 0, to: 1 };
    let mut mlog = Arc::new(MigrationLog::new());
    let mut m = Migration::new(Arc::clone(&mlog), spec, h.cluster.env());
    loop {
        h.load_round(&mut router, m.phase() == Phase::Fenced);
        let p = m.step().unwrap();
        h.observe();
        if p >= crash_at {
            break;
        }
    }

    match party {
        Party::Coord => {
            // The coordinator dies; a new incarnation resumes from the
            // durable prefix of its migration log.
            mlog = Arc::new(mlog.recover());
            drop(m);
            m = Migration::resume(Arc::clone(&mlog), spec, h.cluster.env());
        }
        Party::Source => {
            drop(m);
            h.cluster.crash_shard(0);
            router = h.cluster.router();
            m = Migration::resume(Arc::clone(&mlog), spec, h.cluster.env());
        }
        Party::Dest => {
            drop(m);
            h.cluster.crash_shard(1);
            router = h.cluster.router();
            m = Migration::resume(Arc::clone(&mlog), spec, h.cluster.env());
        }
    }
    h.observe();

    loop {
        h.load_round(&mut router, m.phase() == Phase::Fenced);
        let p = m.step().unwrap();
        h.observe();
        if p == Phase::Done {
            break;
        }
    }

    // The cutover stuck: slot moved, epoch bumped, ownership flipped.
    assert_eq!(h.cluster.routing.current().slots[MOVING as usize], 1);
    assert!(h.cluster.routing.epoch() >= 1);
    assert!(!h.cluster.owns[0].owns(MOVING));
    assert!(h.cluster.owns[1].owns(MOVING));

    // Post-migration traffic routes to the destination and commits.
    for _ in 0..3 {
        h.load_round(&mut router, false);
    }
    h.finalize();
}

fn torture_row(party: Party, crash_at: Phase) {
    for seed in [11, 547, 9001] {
        torture_cell(party, crash_at, seed);
    }
}

#[test]
fn coordinator_crash_during_copy() {
    torture_row(Party::Coord, Phase::Copying);
}

#[test]
fn coordinator_crash_during_catch_up() {
    torture_row(Party::Coord, Phase::CatchUp);
}

#[test]
fn coordinator_crash_inside_fence() {
    torture_row(Party::Coord, Phase::Fenced);
}

#[test]
fn coordinator_crash_after_cutover() {
    torture_row(Party::Coord, Phase::CutOver);
}

#[test]
fn source_crash_during_copy() {
    torture_row(Party::Source, Phase::Copying);
}

#[test]
fn source_crash_during_catch_up() {
    torture_row(Party::Source, Phase::CatchUp);
}

#[test]
fn source_crash_inside_fence() {
    torture_row(Party::Source, Phase::Fenced);
}

#[test]
fn source_crash_after_cutover() {
    torture_row(Party::Source, Phase::CutOver);
}

#[test]
fn dest_crash_during_copy() {
    torture_row(Party::Dest, Phase::Copying);
}

#[test]
fn dest_crash_during_catch_up() {
    torture_row(Party::Dest, Phase::CatchUp);
}

#[test]
fn dest_crash_inside_fence() {
    torture_row(Party::Dest, Phase::Fenced);
}

#[test]
fn dest_crash_after_cutover() {
    torture_row(Party::Dest, Phase::CutOver);
}

/// No crash at all: the baseline the matrix perturbs.
#[test]
fn clean_migration_under_load() {
    let mut h = Harness::new(42);
    let mut router = h.cluster.router();
    for _ in 0..4 {
        h.load_round(&mut router, false);
    }
    let spec = MigrationSpec { mid: 1, slot: MOVING, from: 0, to: 1 };
    let mlog = Arc::new(MigrationLog::new());
    let mut m = Migration::new(mlog, spec, h.cluster.env());
    loop {
        h.load_round(&mut router, m.phase() == Phase::Fenced);
        let p = m.step().unwrap();
        h.observe();
        if p == Phase::Done {
            break;
        }
    }
    assert!(m.stats.copied_rows > 0, "the bulk copy moved the seeded rows");
    assert!(m.stats.shipped_ops > 0, "catch-up shipped the concurrent writes");
    for _ in 0..3 {
        h.load_round(&mut router, false);
    }
    h.finalize();
    // The source holds nothing from the moving slot anymore.
    let t = h.cluster.dbs[0].table(T).unwrap();
    let mut leaked = 0u64;
    t.scan(|key, _| {
        if slot_of(T, key, SLOTS) == MOVING {
            leaked += 1;
        }
    })
    .unwrap();
    assert_eq!(leaked, 0, "source cleanup left slot rows behind");
}

/// The fence resolves in-doubt prepared 2PC slices from the coordinator's
/// durable verdicts: a forced commit lands on the destination, an
/// undecided prepare is presumed aborted and its effects rolled back.
#[test]
fn fence_resolves_in_doubt_slices_from_the_coordinator() {
    let cluster = Cluster::new();
    let keys: Vec<u64> =
        (0..100_000u64).filter(|&k| slot_of(T, k, SLOTS) == MOVING).take(2).collect();
    let (k_commit, k_abort) = (keys[0], keys[1]);
    cluster.dbs[0].execute(|txn| txn.insert(T, k_commit, &[1])).unwrap();
    cluster.dbs[0].execute(|txn| txn.insert(T, k_abort, &[2])).unwrap();

    let mut source = cluster.backend(0);
    let g_commit = cluster.coord.allocate();
    let outcome = source
        .prepare(g_commit, vec![WorkloadOp::Write { table: T, key: k_commit, row: vec![111] }])
        .unwrap();
    assert!(outcome.is_committed(), "prepare must vote yes");
    // The verdict is durable at the coordinator but never delivered.
    cluster.coord.decide(g_commit, true);

    let g_abort = cluster.coord.allocate();
    let outcome = source
        .prepare(g_abort, vec![WorkloadOp::Write { table: T, key: k_abort, row: vec![222] }])
        .unwrap();
    assert!(outcome.is_committed(), "prepare must vote yes");
    // No verdict for g_abort: presumed abort.

    let spec = MigrationSpec { mid: 1, slot: MOVING, from: 0, to: 1 };
    let mlog = Arc::new(MigrationLog::new());
    let mut m = Migration::new(mlog, spec, cluster.env());
    m.run().unwrap();
    assert_eq!(m.stats.resolved_in_doubt, 2);

    let dest = cluster.dbs[1].table(T).unwrap();
    assert_eq!(dest.get(k_commit).unwrap(), vec![111], "forced commit must survive the move");
    assert_eq!(dest.get(k_abort).unwrap(), vec![2], "presumed abort must roll back");
}

/// Writes are blocked *only* during the fence window: a writer that hits
/// the fence parks (no error), wakes at cutover, gets the typed
/// `WrongShard` refusal, and the router's single refresh-and-retry lands
/// it on the destination — the full satellite retry path, end to end.
#[test]
fn fence_blocks_writers_until_cutover_then_retries_to_the_destination() {
    let cluster = Cluster::new();
    let key = (0..100_000u64).find(|&k| slot_of(T, k, SLOTS) == MOVING).unwrap();
    cluster.dbs[0].execute(|txn| txn.insert(T, key, &[1])).unwrap();

    let spec = MigrationSpec { mid: 1, slot: MOVING, from: 0, to: 1 };
    let mlog = Arc::new(MigrationLog::new());
    let mut m = Migration::new(mlog, spec, cluster.env());
    while m.phase() < Phase::Fenced {
        m.step().unwrap();
    }

    // A concurrent writer behind its own router hits the fence and parks.
    let (dbs, owns) = (cluster.dbs.clone(), cluster.owns.clone());
    let (routing, coord) = (Arc::clone(&cluster.routing), Arc::clone(&cluster.coord));
    let writer = std::thread::spawn(move || {
        let shards: Vec<Box<dyn ShardBackend>> = (0..2)
            .map(|s| {
                Box::new(OwnedShard {
                    db: Arc::clone(&dbs[s]),
                    own: Arc::clone(&owns[s]),
                    routing: Arc::clone(&routing),
                }) as Box<dyn ShardBackend>
            })
            .collect();
        let mut router = ShardRouter::with_routing(shards, routing, coord, None).unwrap();
        let spec = TxnSpec {
            kind: "w",
            ops: vec![WorkloadOp::Write { table: T, key, row: vec![42] }],
            may_fail: false,
        };
        let outcome = router.execute(&spec).unwrap();
        (outcome.is_committed(), router.stats().wrong_shard_retries)
    });

    std::thread::sleep(std::time::Duration::from_millis(60));
    assert!(!writer.is_finished(), "a fenced write must park, not fail");
    while m.phase() != Phase::Done {
        m.step().unwrap();
    }
    let (committed, retries) = writer.join().unwrap();
    assert!(committed, "the parked write must commit after the cutover");
    assert_eq!(retries, 1, "exactly one WrongShard refresh-and-retry");
    assert_eq!(cluster.dbs[1].table(T).unwrap().get(key).unwrap(), vec![42]);
}
