//! Wire-level rebalancing: two real servers on loopback loopback-serve the
//! two shard engines while a slot migrates between them in-process. Remote
//! clients observe the migration exactly as the protocol promises: the
//! `RoutingSnapshot` frame serves the versioned table, a stale client's
//! write gets the typed `WrongShard { epoch, hint }` refusal over the
//! wire, and one refresh-and-retry lands it on the new owner.

use esdb_core::{slot_of, Database, EngineConfig, RoutingTable};
use esdb_net::{Client, NetError, OwnershipCheck, RoutingSource, Server, ServerConfig};
use esdb_rebal::{Migration, MigrationEnv, MigrationLog, MigrationSpec, Phase, ShardHandle};
use esdb_shard::{
    DecisionLog, NetShard, ShardBackend, ShardError, ShardOwnership, ShardRouter, SharedRouting,
};
use esdb_workload::{TxnSpec, WorkloadOp};
use std::net::SocketAddr;
use std::sync::Arc;

const SLOTS: u32 = 8;
const MOVING: u32 = 0;
const T: u32 = 0;

/// A server config wired to the live routing table and a shard's
/// ownership gate: `RoutingSnapshot` answers from the shared table, and
/// every write is admission-checked — unowned *or fenced* slots get the
/// typed `WrongShard` refusal instead of silently serving stale keys.
fn hooked_config(routing: &Arc<SharedRouting>, own: &Arc<ShardOwnership>) -> ServerConfig {
    let r = Arc::clone(routing);
    let routing_source = RoutingSource(Arc::new(move || r.snapshot()));
    let (r, o) = (Arc::clone(routing), Arc::clone(own));
    let ownership_check = OwnershipCheck(Arc::new(move |table, key| {
        let t = r.current();
        let slot = t.slot_for(table, key);
        if o.owns(slot) && !o.fenced(slot) {
            None
        } else {
            Some((t.epoch, t.slots.get(slot as usize).copied().unwrap_or(0)))
        }
    }));
    ServerConfig {
        routing_source: Some(routing_source),
        ownership_check: Some(ownership_check),
        ..ServerConfig::default()
    }
}

struct WireCluster {
    dbs: Vec<Arc<Database>>,
    owns: Vec<Arc<ShardOwnership>>,
    routing: Arc<SharedRouting>,
    coord: Arc<DecisionLog>,
    servers: Vec<Server>,
}

impl WireCluster {
    fn start() -> WireCluster {
        let table = RoutingTable::uniform(2, SLOTS);
        let routing = Arc::new(SharedRouting::new(table.clone()));
        let mut dbs = Vec::new();
        let mut owns = Vec::new();
        let mut servers = Vec::new();
        for shard in 0..2u32 {
            let db = Arc::new(Database::open(EngineConfig::default()));
            db.create_table("t", 1).unwrap();
            let own = Arc::new(ShardOwnership::for_shard(&table, shard));
            let server = Server::start(
                Arc::clone(&db),
                "127.0.0.1:0",
                hooked_config(&routing, &own),
            )
            .expect("bind ephemeral port");
            dbs.push(db);
            owns.push(own);
            servers.push(server);
        }
        WireCluster { dbs, owns, routing, coord: Arc::new(DecisionLog::new()), servers }
    }

    fn addr(&self, shard: usize) -> SocketAddr {
        self.servers[shard].local_addr()
    }

    /// A routing-aware router over wire backends whose *own* cached table
    /// starts at epoch 0 and refreshes from server `0`'s `RoutingSnapshot`
    /// frame — the remote client's view of placement, deliberately
    /// independent of the in-process table the migration mutates.
    fn client_router(&self) -> ShardRouter {
        let shards: Vec<Box<dyn ShardBackend>> = (0..2)
            .map(|s| {
                Box::new(NetShard(Client::connect(self.addr(s)).unwrap()))
                    as Box<dyn ShardBackend>
            })
            .collect();
        let cached = Arc::new(SharedRouting::new(RoutingTable::uniform(2, SLOTS)));
        let mut refresh_conn = Client::connect(self.addr(0)).unwrap();
        let refresh = Box::new(move || {
            let (epoch, slots) =
                refresh_conn.routing_snapshot().map_err(ShardError::from)?;
            Ok(RoutingTable { epoch, slots })
        });
        ShardRouter::with_routing(shards, cached, Arc::clone(&self.coord), Some(refresh))
            .unwrap()
    }

    fn env(&self) -> MigrationEnv {
        MigrationEnv {
            source: ShardHandle { db: Arc::clone(&self.dbs[0]), own: Arc::clone(&self.owns[0]) },
            dest: ShardHandle { db: Arc::clone(&self.dbs[1]), own: Arc::clone(&self.owns[1]) },
            routing: Arc::clone(&self.routing),
            coord: Arc::clone(&self.coord),
        }
    }
}

fn write_spec(key: u64, val: i64, fresh: bool) -> TxnSpec {
    let op = if fresh {
        WorkloadOp::Insert { table: T, key, row: vec![val] }
    } else {
        WorkloadOp::Write { table: T, key, row: vec![val] }
    };
    TxnSpec { kind: "wire", ops: vec![op], may_fail: false }
}

#[test]
fn migration_under_wire_traffic_and_stale_client_recovery() {
    let cluster = WireCluster::start();
    let moving: Vec<u64> =
        (0..100_000u64).filter(|&k| slot_of(T, k, SLOTS) == MOVING).take(6).collect();
    let other = (0..100_000u64)
        .find(|&k| cluster.routing.current().shard_of(T, k) == 1)
        .unwrap();

    // Seed over the wire through the routing-aware client router.
    let mut router = cluster.client_router();
    for (i, &k) in moving.iter().enumerate() {
        assert!(router.execute(&write_spec(k, 100 + i as i64, true)).unwrap().is_committed());
    }
    assert!(router.execute(&write_spec(other, 7, true)).unwrap().is_committed());

    // The source serves the migration's bulk-read verb: a fuzzy,
    // slot-filtered row fetch.
    let mut probe = Client::connect(cluster.addr(0)).unwrap();
    let fetched = probe.mig_fetch(T, MOVING, SLOTS).unwrap();
    assert_eq!(fetched.len(), moving.len());
    for (key, _) in &fetched {
        assert_eq!(slot_of(T, *key, SLOTS), MOVING);
    }
    assert_eq!(probe.routing_snapshot().unwrap().0, 0, "pre-migration epoch");

    // Migrate the slot while wire traffic keeps flowing between steps —
    // a second, *stale* router that never hears about the cutover until
    // it trips over it.
    let mut stale = cluster.client_router();
    let spec = MigrationSpec { mid: 1, slot: MOVING, from: 0, to: 1 };
    let mlog = Arc::new(MigrationLog::new());
    let mut m = Migration::new(mlog, spec, cluster.env());
    let mut val = 1000i64;
    while m.phase() != Phase::Done {
        if m.phase() != Phase::Fenced {
            val += 1;
            let k = moving[val as usize % moving.len()];
            assert!(router.execute(&write_spec(k, val, false)).unwrap().is_committed());
            // Cross-shard 2PC pair spanning the moving slot and shard 1.
            val += 1;
            let cross = TxnSpec {
                kind: "wire",
                ops: vec![
                    WorkloadOp::Write { table: T, key: k, row: vec![val] },
                    WorkloadOp::Write { table: T, key: other, row: vec![val] },
                ],
                may_fail: false,
            };
            assert!(router.execute(&cross).unwrap().is_committed());
        }
        m.step().unwrap();
    }

    // The stale router's first write goes to the old owner, takes the
    // typed wire refusal, refreshes over `RoutingSnapshot`, and retries
    // onto the destination — exactly one retry.
    val += 1;
    let outcome = stale.execute(&write_spec(moving[0], val, false)).unwrap();
    assert!(outcome.is_committed());
    assert_eq!(stale.stats().wrong_shard_retries, 1, "one refresh-and-retry");
    assert_eq!(stale.routing_snapshot().unwrap().0, cluster.routing.epoch());
    assert_eq!(cluster.dbs[1].table(T).unwrap().get(moving[0]).unwrap(), vec![val]);

    // A raw client with no retry envelope sees the typed refusal itself.
    let mut naive = Client::connect(cluster.addr(0)).unwrap();
    match naive.one_shot(&write_spec(moving[1], 1, false)) {
        Err(NetError::WrongShard { epoch, hint }) => {
            assert_eq!(epoch, cluster.routing.epoch());
            assert_eq!(hint, 1);
        }
        other => panic!("expected WrongShard over the wire, got {other:?}"),
    }

    // Post-cutover: the snapshot frame serves the bumped table, the
    // destination serves the slot's rows, the source is clean.
    let (epoch, slots) = probe.routing_snapshot().unwrap();
    assert!(epoch >= 1);
    assert_eq!(slots[MOVING as usize], 1);
    let mut dest_probe = Client::connect(cluster.addr(1)).unwrap();
    assert_eq!(dest_probe.mig_fetch(T, MOVING, SLOTS).unwrap().len(), moving.len());
    assert_eq!(probe.mig_fetch(T, MOVING, SLOTS).unwrap().len(), 0, "source cleaned up");

    for s in cluster.servers {
        s.shutdown();
    }
}
