//! # esdb-rebal — online shard rebalancing
//!
//! Scale-out sharding (esdb-shard) fixes placement at deployment; the
//! paper's "embarrassingly scalable" promise needs placement to be
//! *re-decidable while serving*. This crate moves one hash slot between
//! two live shards with zero lost or duplicated rows, writes blocked only
//! for a final fence window measured in one drain plus one tail ship:
//!
//! 1. **Fuzzy copy** — a raw heap scan of the slot on the source
//!    ([`esdb_repl::range_rows`]), racing foreground writes by design.
//! 2. **Delta catch-up** — a WAL cursor ([`esdb_repl::RangeShip`])
//!    replays the slot's mutations in LSN order as idempotent absolute
//!    images until lag is small. Repeat-history redo makes the pair
//!    converge to the source heap state, aborted transactions included.
//! 3. **Fence** — brief write block on the source: resolve in-doubt 2PC
//!    slices, drain in-flight writers, ship the final tail up to a marker
//!    record appended to the source WAL.
//! 4. **Cutover** — install a routing table with a bumped epoch into
//!    [`esdb_shard::SharedRouting`]; stale routers and clients get a
//!    typed `WrongShard { epoch, hint }`, refresh, and retry once.
//!
//! Every transition is forced to a [`MigrationLog`] before it is acted on
//! — the same write-ahead discipline as the 2PC [`DecisionLog`]
//! (esdb-shard) — so a crashed coordinator resumes or rolls back
//! idempotently: phases before `CutOver` restart the copy, `CutOver`
//! rolls forward. See `DESIGN.md` ("Online rebalancing") for the
//! invariants and their arguments.
//!
//! [`DecisionLog`]: esdb_shard::DecisionLog

pub mod log;
pub mod migrate;

pub use log::{MigrationLog, Phase, FENCE_MARK};
pub use migrate::{
    Migration, MigrationEnv, MigrationSpec, MigrationStats, MigrateError, ShardHandle,
    DEFAULT_FENCE_LAG_BYTES,
};
