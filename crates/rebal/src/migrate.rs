//! The migration state machine: moves one hash slot between two live
//! shards with zero lost or duplicated rows and writes blocked only for
//! the final fence window.
//!
//! ```text
//! Planned ─▶ Copying ─▶ CatchUp ─▶ Fenced ─▶ CutOver ─▶ Done
//!            fuzzy      WAL delta   drain +    routing     source
//!            bulk copy  pumping     final tail epoch bump  cleanup
//! ```
//!
//! Each transition is forced to the [`MigrationLog`] *before* its work
//! runs (write-ahead). The work of every phase is idempotent, so the
//! recovery rule is two-armed:
//!
//! * **Before `CutOver`** nothing externally visible happened — the
//!   destination holds only unowned scratch rows. Restart from the copy
//!   (which first clears the destination's slot rows).
//! * **At or after `CutOver`** the new routing table is durable — roll
//!   forward: re-install (epoch-fenced, a no-op if it already landed),
//!   flip ownership, clean up the source.
//!
//! A source crash rebases its WAL stream, which the delta cursor surfaces
//! as a typed [`RangeShipError::Gap`]; the machine folds that into the
//! same restart-the-copy arm.

use crate::log::{MigrationLog, Phase, FENCE_MARK};
use esdb_core::Database;
use esdb_repl::{apply_range_op, range_rows, RangeOp, RangeShip, RangeShipError};
use esdb_shard::{DecisionLog, SharedRouting, ShardOwnership};
use esdb_wal::{LogBody, NULL_LSN};
use std::sync::Arc;

/// Default catch-up lag (bytes of unshipped durable WAL) below which the
/// migration considers the destination close enough to fence.
pub const DEFAULT_FENCE_LAG_BYTES: u64 = 4096;

/// One shard as the migration sees it: the engine plus its ownership gate.
#[derive(Clone)]
pub struct ShardHandle {
    /// The shard engine.
    pub db: Arc<Database>,
    /// The shard's slot-ownership gate.
    pub own: Arc<ShardOwnership>,
}

/// Everything a migration touches besides its own log.
#[derive(Clone)]
pub struct MigrationEnv {
    /// The shard giving the slot up.
    pub source: ShardHandle,
    /// The shard receiving it.
    pub dest: ShardHandle,
    /// The shared, epoch-fenced routing table the cutover installs into.
    pub routing: Arc<SharedRouting>,
    /// The 2PC coordinator — consulted to resolve in-doubt prepared
    /// slices caught inside the fence.
    pub coord: Arc<DecisionLog>,
}

/// What to move where.
#[derive(Debug, Clone, Copy)]
pub struct MigrationSpec {
    /// Migration id (unique per coordinator log).
    pub mid: u64,
    /// The hash slot to move.
    pub slot: u32,
    /// Source shard.
    pub from: u32,
    /// Destination shard.
    pub to: u32,
}

/// Progress counters, for observability and the bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationStats {
    /// Rows landed by the fuzzy bulk copy (latest attempt).
    pub copied_rows: u64,
    /// Delta ops shipped by catch-up and the fence tail.
    pub shipped_ops: u64,
    /// Catch-up pump rounds run.
    pub pump_rounds: u64,
    /// Copy restarts (source WAL rebased, or resume before cutover).
    pub restarts: u64,
    /// In-doubt prepared slices resolved inside the fence.
    pub resolved_in_doubt: u64,
}

/// Why a migration step could not make progress. Everything retryable is
/// folded into the state machine itself (a WAL gap restarts the copy);
/// what remains is genuinely broken state.
#[derive(Debug)]
pub enum MigrateError {
    /// The copy or delta ship hit corrupt or missing data.
    Ship(RangeShipError),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Ship(e) => write!(f, "migration data path: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<RangeShipError> for MigrateError {
    fn from(e: RangeShipError) -> Self {
        MigrateError::Ship(e)
    }
}

/// A live slot migration. Drive it with [`Migration::step`] (one bounded
/// phase transition per call — the natural crash points of the torture
/// matrix) or [`Migration::run`] (to completion).
pub struct Migration {
    spec: MigrationSpec,
    env: MigrationEnv,
    log: Arc<MigrationLog>,
    phase: Phase,
    ship: Option<RangeShip>,
    /// Fence when catch-up lag drops to this many bytes.
    pub fence_lag_bytes: u64,
    /// Progress counters.
    pub stats: MigrationStats,
}

impl Migration {
    /// Plans a new migration: the intent is durable in `log` before this
    /// returns.
    pub fn new(log: Arc<MigrationLog>, spec: MigrationSpec, env: MigrationEnv) -> Migration {
        log.record(spec.mid, Phase::Planned, spec.slot, spec.from, spec.to, 0);
        Migration {
            spec,
            env,
            log,
            phase: Phase::Planned,
            ship: None,
            fence_lag_bytes: DEFAULT_FENCE_LAG_BYTES,
            stats: MigrationStats::default(),
        }
    }

    /// Resumes (or rolls back to a restart point) after a crash, from the
    /// latest durable phase in `log`:
    ///
    /// * nothing logged, or anything before `CutOver` → restart from
    ///   `Planned`. Any stray fence on the source is lifted (the slot is
    ///   still the source's per the routing table).
    /// * `CutOver` → re-apply the cutover idempotently (epoch-fenced
    ///   install, ownership flip), then resume at source cleanup.
    /// * `Done` → nothing to do.
    pub fn resume(log: Arc<MigrationLog>, spec: MigrationSpec, env: MigrationEnv) -> Migration {
        let mut m = Migration {
            spec,
            env,
            log,
            phase: Phase::Planned,
            ship: None,
            fence_lag_bytes: DEFAULT_FENCE_LAG_BYTES,
            stats: MigrationStats::default(),
        };
        match m.log.latest(spec.mid) {
            None => m.log.record(spec.mid, Phase::Planned, spec.slot, spec.from, spec.to, 0),
            Some((p, _)) if p < Phase::CutOver => {
                // The cutover never became durable, so the source still
                // owns the slot; clear any fence a dead incarnation left.
                if m.env.routing.current().slots.get(spec.slot as usize) == Some(&spec.from) {
                    m.env.source.own.adopt(spec.slot);
                }
                m.stats.restarts += 1;
            }
            Some((Phase::CutOver, epoch)) => {
                m.roll_forward_cutover(epoch);
                m.phase = Phase::CutOver;
            }
            Some((Phase::Done, _)) => m.phase = Phase::Done,
            Some(_) => unreachable!("phases >= CutOver handled above"),
        }
        m
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current catch-up lag in bytes of unshipped durable source WAL
    /// (0 before the copy establishes a cursor).
    pub fn lag(&self) -> u64 {
        self.ship.as_ref().map_or(0, |s| s.lag(self.env.source.db.wal()))
    }

    /// Runs one bounded unit of work and returns the phase it landed in.
    /// Call repeatedly until [`Phase::Done`]; interleave foreground load
    /// between calls — that is exactly what the torture tests do.
    pub fn step(&mut self) -> Result<Phase, MigrateError> {
        match self.phase {
            Phase::Planned => self.do_copy()?,
            Phase::Copying => {
                let (s, f, t) = (self.spec.slot, self.spec.from, self.spec.to);
                self.log.record(self.spec.mid, Phase::CatchUp, s, f, t, 0);
                self.phase = Phase::CatchUp;
                self.pump_round()?;
            }
            Phase::CatchUp => {
                self.pump_round()?;
                if self.phase == Phase::CatchUp && self.lag() <= self.fence_lag_bytes {
                    self.do_fence()?;
                }
            }
            Phase::Fenced => self.do_cutover(),
            Phase::CutOver => self.do_cleanup()?,
            Phase::Done => {}
        }
        Ok(self.phase)
    }

    /// Drives the migration to completion.
    pub fn run(&mut self) -> Result<(), MigrateError> {
        while self.phase != Phase::Done {
            self.step()?;
        }
        Ok(())
    }

    /// One delta pump round (also usable while parked in catch-up, e.g. by
    /// the bench). A WAL gap — the source crashed and rebased its stream —
    /// folds back into a copy restart instead of surfacing as an error.
    pub fn pump_round(&mut self) -> Result<u64, MigrateError> {
        let Some(ship) = self.ship.as_mut() else { return Ok(0) };
        let dest = Arc::clone(&self.env.dest.db);
        let mut apply_err = None;
        let pumped = ship.pump(self.env.source.db.wal(), |op| {
            if apply_err.is_none() {
                if let Err(e) = apply_range_op(&dest, &op) {
                    apply_err = Some(e);
                }
            }
        });
        self.stats.pump_rounds += 1;
        match pumped {
            Ok(n) => {
                if let Some(e) = apply_err {
                    return Err(e.into());
                }
                self.stats.shipped_ops += n;
                Ok(n)
            }
            Err(RangeShipError::Gap { .. }) => {
                self.restart_copy();
                Ok(0)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Folds a rebased source stream back to the restart point.
    fn restart_copy(&mut self) {
        self.stats.restarts += 1;
        self.ship = None;
        if self.env.routing.current().slots.get(self.spec.slot as usize) == Some(&self.spec.from)
        {
            self.env.source.own.adopt(self.spec.slot);
        }
        self.phase = Phase::Planned;
    }

    /// Planned → Copying: fuzzy bulk copy. The delta-ship start LSN is
    /// taken *before* the heap scan (heap writes precede their record's
    /// append, so every mutation the scan misses has a record at or after
    /// it), and is durable in the log before any row moves.
    fn do_copy(&mut self) -> Result<(), MigrateError> {
        let MigrationSpec { mid, slot, from, to } = self.spec;
        let slot_count = self.env.routing.slot_count();
        let start = self.env.source.db.wal().current_lsn();
        self.log.record(mid, Phase::Copying, slot, from, to, start);

        // Clear the destination's slot rows first: a retried copy (crash,
        // WAL gap) must not leave rows a previous attempt landed but the
        // source has since deleted.
        for (tid, ..) in self.env.dest.db.catalog() {
            let t = self.env.dest.db.table(tid).ok_or(RangeShipError::NoTable(tid))?;
            let mut stale = Vec::new();
            t.scan(|key, _| {
                if esdb_core::slot_of(tid, key, slot_count) == slot {
                    stale.push(key);
                }
            })
            .map_err(RangeShipError::from)?;
            for key in stale {
                t.delete(key).map_err(RangeShipError::from)?;
            }
        }

        self.stats.copied_rows = 0;
        for (tid, ..) in self.env.source.db.catalog() {
            let rows = range_rows(&self.env.source.db, tid, slot, slot_count)?;
            self.stats.copied_rows += rows.len() as u64;
            for (key, row) in rows {
                apply_range_op(&self.env.dest.db, &RangeOp::Upsert { table: tid, key, row })?;
            }
        }
        self.ship = Some(RangeShip::new(start, slot, slot_count));
        self.phase = Phase::Copying;
        Ok(())
    }

    /// CatchUp → Fenced: the only write-unavailable window. Fence the slot
    /// on the source, resolve in-doubt prepared slices (their verdicts
    /// come from the 2PC coordinator — presumed abort), drain in-flight
    /// writers, append a fence marker to the source WAL, ship everything
    /// up to the marker, and flush the destination so the copied base
    /// survives a destination crash after cutover.
    fn do_fence(&mut self) -> Result<(), MigrateError> {
        let MigrationSpec { mid, slot, from, to } = self.spec;
        self.log.record(mid, Phase::Fenced, slot, from, to, 0);
        self.env.source.own.fence(slot);
        for gtid in self.env.source.own.prepared_on(slot) {
            let commit = self.env.coord.resolve(gtid);
            self.env.source.db.decide(gtid, commit);
            self.env.source.own.end_prepared(gtid);
            self.stats.resolved_in_doubt += 1;
        }
        self.env.source.own.drain(slot);

        // Nothing can touch the slot after this append: new writers are
        // parked on the fence, in-flight ones drained. The marker's LSN is
        // therefore the end of the slot's history on this shard.
        let wal = self.env.source.db.wal();
        let r = wal.append(
            0,
            NULL_LSN,
            &LogBody::MigrationStep { mid, phase: FENCE_MARK, slot, from, to, mark: 0 },
        );
        wal.wait_durable(r.end);
        let marker = r.end;
        while self.ship.as_ref().is_some_and(|s| s.next < marker) {
            self.pump_round()?;
            if self.phase != Phase::CatchUp {
                // The source rebased under the fence: restart the copy.
                return Ok(());
            }
        }
        let _ = self.env.dest.db.pool().flush_all();
        self.phase = Phase::Fenced;
        Ok(())
    }

    /// Fenced → CutOver: force the cutover record carrying the new routing
    /// epoch, then make it visible — install, release, adopt. Release
    /// precedes adopt so no instant has two write-admitting owners; a
    /// writer caught in the one-statement gap gets the typed refusal and
    /// retries through the refreshed table.
    fn do_cutover(&mut self) {
        let MigrationSpec { mid, slot, from, to } = self.spec;
        let next = self.env.routing.current().with_slot_moved(slot, to);
        self.log.record(mid, Phase::CutOver, slot, from, to, next.epoch);
        self.env.routing.install(next);
        self.env.source.own.release(slot);
        self.env.dest.own.adopt(slot);
        self.phase = Phase::CutOver;
    }

    /// Re-applies a durable cutover after a crash. Every piece is
    /// idempotent: the install is epoch-fenced (`logged_epoch` is the
    /// epoch the dead incarnation forced), release/adopt are absolute.
    fn roll_forward_cutover(&mut self, logged_epoch: u64) {
        let MigrationSpec { slot, to, .. } = self.spec;
        if self.env.routing.epoch() < logged_epoch {
            self.env.routing.install(self.env.routing.current().with_slot_moved(slot, to));
        }
        self.env.source.own.release(slot);
        self.env.dest.own.adopt(slot);
    }

    /// CutOver → Done: delete the source's copy of the slot (it no longer
    /// owns it; the rows live on the destination) and record completion.
    fn do_cleanup(&mut self) -> Result<(), MigrateError> {
        let MigrationSpec { mid, slot, from, to } = self.spec;
        let slot_count = self.env.routing.slot_count();
        for (tid, ..) in self.env.source.db.catalog() {
            let t = self.env.source.db.table(tid).ok_or(RangeShipError::NoTable(tid))?;
            let mut gone = Vec::new();
            t.scan(|key, _| {
                if esdb_core::slot_of(tid, key, slot_count) == slot {
                    gone.push(key);
                }
            })
            .map_err(RangeShipError::from)?;
            for key in gone {
                t.delete(key).map_err(RangeShipError::from)?;
            }
        }
        let _ = self.env.source.db.pool().flush_all();
        self.log.record(mid, Phase::Done, slot, from, to, 0);
        self.phase = Phase::Done;
        Ok(())
    }
}
