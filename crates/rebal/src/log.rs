//! The migration coordinator's durable state: a WAL-backed log of
//! state-machine transitions, modeled on the 2PC coordinator's
//! [`DecisionLog`](esdb_shard::DecisionLog).
//!
//! Every phase transition of a migration is **forced** before the
//! coordinator acts on it. The asymmetry that lets presumed abort skip
//! forcing abort verdicts does not apply here: a migration that forgot it
//! had cut over would re-run the cutover against a routing table that
//! already moved on — harmless only because installs are epoch-fenced, but
//! the slot cleanup after the cutover *is* destructive, so the `CutOver`
//! record must be durable before the routing table changes. Forcing every
//! transition keeps the rule simple, and migrations are rare enough that
//! the flushes are noise.
//!
//! Recovery rebuilds, per migration id, the **latest durable phase** and
//! its mark (the delta-ship start LSN for `Copying`, the new routing epoch
//! for `CutOver`). [`Migration::resume`](crate::Migration::resume) maps
//! that onto the idempotent restart rule: anything before `CutOver`
//! restarts the copy; `CutOver` and later roll forward.

use esdb_wal::{LogBody, LogPolicy, Wal, NULL_LSN};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The migration state machine. Ordinals are the durable wire form (the
/// `phase` byte of [`LogBody::MigrationStep`]); ordering is meaningful —
/// recovery compares phases against [`Phase::CutOver`] to pick between
/// restart-the-copy and roll-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Intent recorded; nothing moved yet.
    Planned = 0,
    /// Fuzzy bulk copy of the slot's rows is running (mark = delta-ship
    /// start LSN, taken before the copy's heap scan).
    Copying = 1,
    /// Bulk copy landed; WAL delta catch-up is pumping the slot's
    /// mutations until lag drops below the fence threshold.
    CatchUp = 2,
    /// Writes to the slot are fenced on the source; in-doubt 2PC slices
    /// resolved, in-flight writers drained, final tail shipped.
    Fenced = 3,
    /// The new routing table (mark = its epoch) is durable; ownership
    /// flips source → destination.
    CutOver = 4,
    /// Source-side slot rows cleaned up; migration complete.
    Done = 5,
}

impl Phase {
    /// The durable ordinal.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a durable ordinal; unknown bytes are `None` (a foreign or
    /// future record, skipped by recovery).
    pub fn from_u8(b: u8) -> Option<Phase> {
        match b {
            0 => Some(Phase::Planned),
            1 => Some(Phase::Copying),
            2 => Some(Phase::CatchUp),
            3 => Some(Phase::Fenced),
            4 => Some(Phase::CutOver),
            5 => Some(Phase::Done),
            _ => None,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Planned => "planned",
            Phase::Copying => "copying",
            Phase::CatchUp => "catch-up",
            Phase::Fenced => "fenced",
            Phase::CutOver => "cut-over",
            Phase::Done => "done",
        };
        f.write_str(s)
    }
}

/// The `phase` byte of the fence-marker record a migration appends to the
/// **source shard's** WAL (not this log). Everything at LSNs before the
/// marker is the slot's final history; nothing after it can touch the slot
/// — it was appended after fence + drain. Deliberately outside the
/// [`Phase`] ordinal space.
pub const FENCE_MARK: u8 = 0xFE;

/// The migration coordinator's write-ahead log: one forced
/// [`LogBody::MigrationStep`] per state-machine transition.
pub struct MigrationLog {
    wal: Arc<Wal>,
    /// Latest `(phase, mark)` per migration id, this incarnation plus
    /// whatever recovery salvaged.
    state: Mutex<HashMap<u64, (Phase, u64)>>,
}

impl Default for MigrationLog {
    fn default() -> Self {
        MigrationLog::new()
    }
}

impl MigrationLog {
    /// A fresh coordinator log.
    pub fn new() -> MigrationLog {
        MigrationLog {
            wal: Arc::new(Wal::new(LogPolicy::Serial, None)),
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Forces a transition record for migration `mid` and returns once it
    /// is durable. The caller acts on the transition only after this
    /// returns — write-ahead, like every other log in the system.
    pub fn record(&self, mid: u64, phase: Phase, slot: u32, from: u32, to: u32, mark: u64) {
        let r = self.wal.append(
            0,
            NULL_LSN,
            &LogBody::MigrationStep { mid, phase: phase.as_u8(), slot, from, to, mark },
        );
        self.wal.wait_durable(r.end);
        self.state.lock().insert(mid, (phase, mark));
    }

    /// The latest durable `(phase, mark)` for `mid`, if any transition was
    /// ever recorded.
    pub fn latest(&self, mid: u64) -> Option<(Phase, u64)> {
        self.state.lock().get(&mid).copied()
    }

    /// Simulates a coordinator crash: a new incarnation rebuilt from the
    /// durable prefix only. Because every transition is forced before it is
    /// acted on, the recovered phase is never *behind* the externally
    /// visible state — at worst it is ahead of unfinished work, and every
    /// phase's work is idempotent to redo.
    pub fn recover(&self) -> MigrationLog {
        let mut state = HashMap::new();
        for r in self.wal.durable_records() {
            if let LogBody::MigrationStep { mid, phase, mark, .. } = r.body {
                if let Some(p) = Phase::from_u8(phase) {
                    state.insert(mid, (p, mark));
                }
            }
        }
        MigrationLog {
            // Resume the LSN stream past everything the dead incarnation
            // may have handed to the device.
            wal: Arc::new(Wal::new_at(self.wal.durable_lsn() + (1 << 24), LogPolicy::Serial, None)),
            state: Mutex::new(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_ordinals_roundtrip_and_order() {
        for p in [
            Phase::Planned,
            Phase::Copying,
            Phase::CatchUp,
            Phase::Fenced,
            Phase::CutOver,
            Phase::Done,
        ] {
            assert_eq!(Phase::from_u8(p.as_u8()), Some(p));
        }
        assert!(Phase::Fenced < Phase::CutOver);
        assert_eq!(Phase::from_u8(FENCE_MARK), None, "the fence marker is not a phase");
    }

    #[test]
    fn transitions_survive_a_coordinator_crash() {
        let log = MigrationLog::new();
        log.record(7, Phase::Copying, 3, 0, 1, 4096);
        log.record(7, Phase::CatchUp, 3, 0, 1, 0);
        log.record(9, Phase::CutOver, 5, 1, 0, 2);
        let recovered = log.recover();
        assert_eq!(recovered.latest(7), Some((Phase::CatchUp, 0)));
        assert_eq!(recovered.latest(9), Some((Phase::CutOver, 2)));
        assert_eq!(recovered.latest(8), None);
        // The recovered incarnation keeps logging on the rebased stream.
        recovered.record(7, Phase::Fenced, 3, 0, 1, 0);
        assert_eq!(recovered.latest(7), Some((Phase::Fenced, 0)));
    }
}
