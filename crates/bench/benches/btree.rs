//! Criterion microbench: B+tree point ops and range scans at 100k keys.

use criterion::{criterion_group, criterion_main, Criterion};
use esdb_storage::btree::BTree;
use std::time::Duration;

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree_100k");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let tree = BTree::new();
    for k in 0..100_000u64 {
        tree.insert(k.wrapping_mul(2_654_435_761) % 1_000_000, k);
    }

    let mut probe = 0u64;
    g.bench_function("get_hit_or_miss", |b| {
        b.iter(|| {
            probe = probe.wrapping_add(104_729);
            std::hint::black_box(tree.get(probe % 1_000_000))
        })
    });

    let mut key = 1_000_000u64;
    g.bench_function("insert_fresh", |b| {
        b.iter(|| {
            key += 1;
            tree.insert(key, key)
        })
    });

    let mut start = 0u64;
    g.bench_function("range_100", |b| {
        b.iter(|| {
            start = (start + 7_919) % 1_000_000;
            std::hint::black_box(tree.range(start, start + 1_000))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
