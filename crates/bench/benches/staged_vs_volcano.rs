//! Criterion microbench: query engines on a fixed analytical plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_staged::{execute_staged, execute_volcano, AggFunc, CmpOp, PlanNode};
use std::time::Duration;

fn plan() -> PlanNode {
    let fact = PlanNode::values(
        (0..60_000i64)
            .map(|i| vec![i % 32, (i * 7) % 500, i % 11])
            .collect(),
    );
    let dim = PlanNode::values((0..32).map(|g| vec![g, g * 10]).collect());
    dim.hash_join(fact, 0, 0)
        .filter(4, CmpOp::Lt, 450)
        .aggregate(Some(0), 4, AggFunc::Sum)
        .sort(0)
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_60k_rows");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let p = plan();

    g.bench_function("volcano", |b| {
        b.iter(|| std::hint::black_box(execute_volcano(&p)))
    });
    for batch in [1usize, 64, 1_024] {
        g.bench_with_input(BenchmarkId::new("staged", batch), &batch, |b, &batch| {
            b.iter(|| std::hint::black_box(execute_staged(&p, batch)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
