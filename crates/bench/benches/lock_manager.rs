//! Criterion microbench: centralized lock-manager costs — the ablation for
//! the lock-table partition count called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_lock::{LockManager, LockMode};
use std::sync::Arc;
use std::time::Duration;

fn bench_lock_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Single-thread acquire+release of a full row-lock hierarchy.
    g.bench_function("hierarchy_acquire_release", |b| {
        let m = LockManager::new(64);
        let mut txn = 0u64;
        let mut key = 0u64;
        b.iter(|| {
            txn += 1;
            key = key.wrapping_add(7_919);
            m.lock_row(txn, 1, key, LockMode::X).unwrap();
            m.release_all(txn);
        });
    });

    // Ablation: 4 threads, disjoint rows, sweeping lock-table partitions.
    for partitions in [1usize, 4, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("4_threads_disjoint_x500", partitions),
            &partitions,
            |b, &partitions| {
                b.iter(|| {
                    let m = Arc::new(LockManager::new(partitions));
                    std::thread::scope(|s| {
                        for t in 0..4u64 {
                            let m = Arc::clone(&m);
                            s.spawn(move || {
                                for i in 0..500u64 {
                                    let txn = t * 1_000_000 + i + 1;
                                    m.lock_row(txn, 1, t * 100_000 + i, LockMode::X).unwrap();
                                    m.release_all(txn);
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lock_manager);
criterion_main!(benches);
