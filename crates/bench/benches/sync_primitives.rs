//! Criterion microbench: uncontended acquisition cost of every critical-
//! section primitive, plus the reader-writer latch.

use criterion::{criterion_group, criterion_main, Criterion};
use esdb_sync::{BlockLock, HybridLock, McsLock, RawLock, RwLatch, TasLock, TatasLock, TicketLock};
use std::time::Duration;

fn bench_uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_unlock");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    macro_rules! case {
        ($name:literal, $lock:expr) => {
            g.bench_function($name, |b| {
                let lock = $lock;
                b.iter(|| {
                    lock.lock();
                    std::hint::black_box(());
                    lock.unlock();
                });
            });
        };
    }
    case!("tas", TasLock::new());
    case!("tatas", TatasLock::new());
    case!("ticket", TicketLock::new());
    case!("mcs", McsLock::new());
    case!("block", BlockLock::new());
    case!("hybrid", HybridLock::new());

    g.bench_function("rwlatch_shared", |b| {
        let latch = RwLatch::new();
        b.iter(|| {
            latch.lock_shared();
            std::hint::black_box(());
            latch.unlock_shared();
        });
    });
    g.bench_function("rwlatch_exclusive", |b| {
        let latch = RwLatch::new();
        b.iter(|| {
            latch.lock_exclusive();
            std::hint::black_box(());
            latch.unlock_exclusive();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_uncontended);
criterion_main!(benches);
