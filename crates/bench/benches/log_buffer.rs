//! Criterion microbench: log-buffer insert cost, serial vs decoupled vs
//! consolidated (single-thread overhead and 4-thread contention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esdb_wal::{ConsolidatedLogBuffer, DecoupledLogBuffer, LogBuffer, SerialLogBuffer};
use std::sync::Arc;
use std::time::Duration;

fn make(which: &str) -> Arc<dyn LogBuffer> {
    match which {
        "serial" => Arc::new(SerialLogBuffer::new(None)),
        "decoupled" => Arc::new(DecoupledLogBuffer::new(None)),
        _ => Arc::new(ConsolidatedLogBuffer::new(None)),
    }
}

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_insert_64B");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let payload = [7u8; 64];

    for which in ["serial", "decoupled", "consolidated"] {
        g.bench_with_input(BenchmarkId::new("single_thread", which), &which, |b, w| {
            let buf = make(w);
            b.iter(|| buf.insert(std::hint::black_box(&payload)));
        });
        g.bench_with_input(BenchmarkId::new("4_threads_x1000", which), &which, |b, w| {
            b.iter(|| {
                let buf = make(w);
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let buf = Arc::clone(&buf);
                        s.spawn(move || {
                            for _ in 0..1_000 {
                                buf.insert(&payload);
                            }
                        });
                    }
                });
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inserts);
criterion_main!(benches);
