//! # esdb-bench — the experiment harness
//!
//! One binary per figure/table of the reproduction (see DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results):
//!
//! | binary | claim | what it prints |
//! |---|---|---|
//! | `fig1_scaling` | bounded utility of conventional parallelism vs DORA | TATP throughput vs simulated contexts |
//! | `fig2_log` | serial log collapse, consolidation scaling | log-bound throughput vs contexts (sim) + real-thread buffer microbench |
//! | `fig3_sync` | spin vs block vs hybrid crossover | critical-section throughput vs CS length and oversubscription |
//! | `fig4_cache` | bigger/shared caches can hurt | fixed-area cores-vs-cache sweep, shared vs private L2 |
//! | `fig5_staged` | staged beats Volcano | query time vs packet size, both engines |
//! | `fig6_breakdown` | where the cycles go | stacked cycle breakdown vs contexts |
//! | `fig7_elr` | ELR hides flush latency | throughput vs log-device latency, ELR on/off |
//! | `tab1_engine` | end-to-end matrix | native-thread throughput per engine config |
//! | `tab2_recovery` | substrate soundness | crash-recovery outcomes and costs |
//! | `crash_torture` | soundness under damaged logs | seeded truncation/bit-flip/lying-device crash iterations |
//! | `tab3_server` | the wire costs, pipelining pays | TATP in-process vs loopback server at pipeline depths |
//! | `tab_repl` | replicas scale reads | read/write tps and replication lag vs replica count |
//! | `tab_shard` | partitioning scales writes | TPC-B tps vs shard count at cross-shard ratios |
//! | `bench_regress` | results don't rot | gated-metric diff of fresh `BENCH_*.json` vs committed |
//!
//! Every simulated experiment is deterministic; every native experiment
//! reports medians over repetitions. Run any binary with
//! `cargo run --release -p esdb-bench --bin <name>`.
//!
//! Headline tables additionally emit machine-readable `BENCH_<name>.json`
//! records (see [`json`]) that `bench_regress` gates CI on.

pub mod json;

use std::time::Instant;

/// Prints a series header (figure id + column names).
pub fn header(id: &str, title: &str, cols: &[&str]) {
    println!("\n=== {id}: {title} ===");
    println!("{}", cols.join("\t"));
}

/// Prints one row of tab-separated values.
pub fn row(vals: &[String]) {
    println!("{}", vals.join("\t"));
}

/// Median wall-clock seconds of `reps` runs of `f`.
pub fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// The context counts every simulated sweep uses.
pub const CONTEXT_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_constant_work() {
        let m = median_secs(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0);
    }
}
