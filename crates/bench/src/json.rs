//! Machine-readable benchmark results.
//!
//! Every headline table emits, next to its human-readable stdout, a
//! `BENCH_<name>.json` file: a JSON array with one record per line,
//! schema `{config, metric, value, seed, git_sha}`. The committed copies
//! at the repo root are the regression baseline; `bench_regress` diffs a
//! fresh run against them and fails CI on gated-metric regressions.
//!
//! The writer emits exactly one record per line so the reader can stay a
//! line-oriented field extractor instead of a JSON parser — the format is
//! still valid JSON for everyone else.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One measured value: which configuration produced it, what was measured,
/// and the workload seed that makes the run reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Human-readable cell label, e.g. `shards=2 cross_pct=10`.
    pub config: String,
    /// Metric name; `tps`-family metrics are regression-gated.
    pub metric: String,
    pub value: f64,
    pub seed: u64,
}

/// The commit the results were generated at: `ESDB_GIT_SHA` when set
/// (CI pins it), else `git rev-parse --short HEAD`, else `unknown`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("ESDB_GIT_SHA") {
        return sha.trim().to_string();
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Where result files land: `ESDB_BENCH_DIR` when set (CI points it at a
/// scratch dir so fresh results never clobber the committed baseline),
/// else the current directory.
pub fn bench_dir() -> PathBuf {
    std::env::var("ESDB_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| PathBuf::from("."))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes `BENCH_<name>.json` into [`bench_dir`] and returns its path.
pub fn write_bench_json(name: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    let dir = bench_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let sha = git_sha();
    let mut out = std::fs::File::create(&path)?;
    writeln!(out, "[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(
            out,
            "{{\"config\":\"{}\",\"metric\":\"{}\",\"value\":{:.6},\"seed\":{},\"git_sha\":\"{}\"}}{}",
            escape(&r.config),
            escape(&r.metric),
            r.value,
            r.seed,
            escape(&sha),
            comma,
        )?;
    }
    writeln!(out, "]")?;
    Ok(path)
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    rest.parse().ok()
}

/// Reads the records back out of a `BENCH_<name>.json` file written by
/// [`write_bench_json`]. Lines that don't carry a record are skipped.
pub fn parse_bench_json(text: &str) -> Vec<BenchRecord> {
    text.lines()
        .filter_map(|line| {
            Some(BenchRecord {
                config: field_str(line, "config")?,
                metric: field_str(line, "metric")?,
                value: field_num(line, "value")?,
                seed: field_num(line, "seed")? as u64,
            })
        })
        .collect()
}

/// Reads the file at `path` and parses it; `None` when it doesn't exist.
pub fn read_bench_json(path: &Path) -> Option<Vec<BenchRecord>> {
    std::fs::read_to_string(path).ok().map(|text| parse_bench_json(&text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_the_file_format() {
        let records = vec![
            BenchRecord {
                config: "shards=2 cross_pct=10".into(),
                metric: "tps".into(),
                value: 12345.675,
                seed: 42,
            },
            BenchRecord { config: "baseline".into(), metric: "tps".into(), value: 0.5, seed: 7 },
        ];
        let dir = std::env::temp_dir().join(format!("esdb_bench_json_{}", std::process::id()));
        std::env::set_var("ESDB_BENCH_DIR", &dir);
        let path = write_bench_json("unit", &records).unwrap();
        std::env::remove_var("ESDB_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"), "array framing");
        let parsed = parse_bench_json(&text);
        assert_eq!(parsed, records);
        assert!(text.lines().all(|l| !l.contains("\"git_sha\":\"\"")), "sha never empty");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escaped_quotes_survive() {
        let line = r#"{"config":"say \"hi\"","metric":"tps","value":1.0,"seed":3,"git_sha":"x"}"#;
        let parsed = parse_bench_json(line);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].config, "say \"hi\"");
    }
}
