//! bench_regress — the CI gate that keeps headline numbers from rotting.
//!
//! Compares freshly generated `BENCH_*.json` files (in `BENCH_NEW_DIR`,
//! default `bench_out`) against the committed snapshots at the repo root
//! (`BENCH_BASE_DIR`, default `.`). Gated metrics — throughput-family, see
//! `BENCH_GATE_METRICS` — fail the run when the fresh value drops more
//! than `BENCH_GATE_PCT`% (default 10) below the committed one. Context
//! metrics (lag, ratios, counts) are reported but never gate.
//!
//! Missing baselines are a warning, not a failure: the first run after a
//! new table lands has nothing to diff against, and the right response is
//! to commit the fresh snapshot, not to break CI.
//!
//! Caveat: committed absolute numbers only mean something on comparable
//! hardware. The checked-in snapshots are regenerated in CI's own
//! container (`scripts/ci.sh bench`); when gating elsewhere, loosen
//! `BENCH_GATE_PCT` or regenerate the baseline first.

use esdb_bench::json::{read_bench_json, BenchRecord};
use std::path::PathBuf;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn find(records: &[BenchRecord], config: &str, metric: &str) -> Option<f64> {
    records.iter().find(|r| r.config == config && r.metric == metric).map(|r| r.value)
}

fn main() {
    let new_dir = PathBuf::from(env_or("BENCH_NEW_DIR", "bench_out"));
    let base_dir = PathBuf::from(env_or("BENCH_BASE_DIR", "."));
    let gate_pct: f64 = env_or("BENCH_GATE_PCT", "10")
        .parse()
        .expect("BENCH_GATE_PCT: number");
    let gated: Vec<String> = env_or("BENCH_GATE_METRICS", "tps,read_tps")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();

    let mut names: Vec<String> = match std::fs::read_dir(&new_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(_) => Vec::new(),
    };
    names.sort();
    if names.is_empty() {
        println!("bench_regress: no BENCH_*.json under {} — nothing to gate", new_dir.display());
        return;
    }

    let mut regressions = 0u32;
    let mut compared = 0u32;
    for name in &names {
        let fresh = read_bench_json(&new_dir.join(name)).unwrap_or_default();
        let Some(base) = read_bench_json(&base_dir.join(name)) else {
            println!("warning: {name}: no committed snapshot — skipping (commit the fresh one)");
            continue;
        };
        for b in &base {
            if !gated.iter().any(|g| g == &b.metric) {
                continue;
            }
            let Some(now) = find(&fresh, &b.config, &b.metric) else {
                println!("warning: {name}: [{} / {}] vanished from the fresh run", b.config, b.metric);
                continue;
            };
            compared += 1;
            let delta_pct = (now - b.value) / b.value.max(f64::MIN_POSITIVE) * 100.0;
            let verdict = if now < b.value * (1.0 - gate_pct / 100.0) {
                regressions += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "{name}: [{} / {}] base {:.1} new {:.1} ({:+.1}%) {verdict}",
                b.config, b.metric, b.value, now, delta_pct
            );
        }
    }

    if regressions > 0 {
        eprintln!(
            "bench_regress: {regressions} gated metric(s) regressed more than {gate_pct}%"
        );
        std::process::exit(1);
    }
    println!("bench_regress: {compared} gated metric(s) within {gate_pct}% of the committed snapshot");
}
