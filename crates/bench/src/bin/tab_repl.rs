//! tab_repl — read scaling by adding replicas, with replication lag held in
//! check.
//!
//! A primary runs a steady TPC-B write stream over the wire while closed-loop
//! reader threads hammer `ReadAt` point lookups. Three configurations:
//!
//! * **0 replicas** — readers share the primary's server: the baseline, where
//!   reads and writes contend for the same sessions and engine;
//! * **1 replica / 2 replicas** — readers move to follower servers fed by WAL
//!   log shipping; the primary's write path is untouched.
//!
//! Columns: read throughput (the scaling claim), write throughput (must not
//! degrade as replicas attach), and replication lag sampled in log *bytes*
//! (`primary durable LSN − replica applied LSN`) at p50/p99/max — the
//! freshness price of the offload. A final read-your-writes probe commits on
//! the primary, takes a token, and requires every follower to serve the new
//! value under that token.
//!
//! Env knobs (CI smoke): TABR_READERS, TABR_READS (total per config),
//! TABR_WRITES, TABR_REPLICAS (comma-separated counts, default `0,1,2`),
//! TABR_REPS (best-of-N per replica count — the read burst is short, so a
//! single run on a loaded single-CPU host swings more than the regression
//! gate tolerance; the rep with the best read_tps supplies every column).

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::{Database, EngineConfig, QuorumPolicy, ReplGroup};
use esdb_net::{Client, NetError, ReconnectPolicy, Server, ServerConfig};
use esdb_repl::start_replica;
use esdb_workload::tpcb::{ACCOUNTS, ACCOUNTS_PER_BRANCH};
use esdb_workload::{Tpcb, Workload};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name}: integer")))
        .unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ConfigResult {
    read_tps: f64,
    write_tps: f64,
    lag_p50: u64,
    lag_p99: u64,
    lag_max: u64,
    ryw_ok: bool,
}

fn run_config(n_replicas: usize, readers: usize, reads: u64, writes: u64) -> ConfigResult {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let mut workload = Tpcb::new(1, 42);
    db.load_population(&workload).expect("population load");
    let primary = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions: readers + n_replicas + 4, ..ServerConfig::default() },
    )
    .expect("bind primary");
    let primary_addr = primary.local_addr();

    let mut replicas = Vec::new();
    let mut followers = Vec::new();
    for _ in 0..n_replicas {
        let handle = start_replica(
            primary_addr,
            EngineConfig::conventional_baseline(),
            ReconnectPolicy::default(),
        )
        .expect("replica bootstrap");
        let follower = Server::start(
            Arc::clone(handle.db()),
            "127.0.0.1:0",
            ServerConfig {
                applied_watermark: Some(handle.watermark()),
                max_sessions: readers + 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind follower");
        replicas.push(handle);
        followers.push(follower);
    }
    let read_endpoints: Vec<SocketAddr> = if n_replicas == 0 {
        vec![primary_addr]
    } else {
        followers.iter().map(|f| f.local_addr()).collect()
    };

    // Steady write stream on its own connection for the whole read phase.
    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let done = Arc::clone(&writer_done);
        let mut gen = workload.fork();
        std::thread::spawn(move || {
            let mut client =
                Client::connect_with_backoff(primary_addr, &ReconnectPolicy::default())
                    .expect("writer connect");
            let start = Instant::now();
            for _ in 0..writes {
                client.one_shot(&gen.next_txn()).expect("write txn");
            }
            done.store(true, Ordering::SeqCst);
            writes as f64 / start.elapsed().as_secs_f64()
        })
    };

    // Lag sampler: worst replica lag in bytes, sampled while writes run.
    let sampler = {
        let db = Arc::clone(&db);
        let watermarks: Vec<_> = replicas.iter().map(|r| r.watermark()).collect();
        let done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            while !done.load(Ordering::SeqCst) {
                let durable = db.wal().durable_lsn();
                let worst = watermarks
                    .iter()
                    .map(|w| durable.saturating_sub(w.load(Ordering::Acquire)))
                    .max()
                    .unwrap_or(0);
                samples.push(worst);
                std::thread::sleep(Duration::from_micros(500));
            }
            samples
        })
    };

    // Closed-loop readers round-robin over the read endpoints.
    let read_start = Instant::now();
    let mut handles = Vec::new();
    for r in 0..readers {
        let endpoint = read_endpoints[r % read_endpoints.len()];
        let per_thread = reads / readers as u64;
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_with_backoff(endpoint, &ReconnectPolicy::default())
                .expect("reader connect");
            // Simple LCG over the account keys; min_lsn 0 = any committed state.
            let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(r as u64 + 1);
            for _ in 0..per_thread {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = (state >> 33) % ACCOUNTS_PER_BRANCH;
                let got = client.read_at(ACCOUNTS, key, 0).expect("follower read");
                assert!(got.is_ok(), "min_lsn 0 can never lag");
            }
        }));
    }
    for h in handles {
        h.join().expect("reader thread");
    }
    let read_secs = read_start.elapsed().as_secs_f64();

    let write_tps = writer.join().expect("writer thread");
    let mut lag = sampler.join().expect("sampler thread");
    lag.sort_unstable();

    // Read-your-writes probe across every follower.
    let mut ryw_ok = true;
    if n_replicas > 0 {
        let mut client = Client::connect(primary_addr).expect("ryw writer");
        client.one_shot(&workload.next_txn()).expect("ryw txn");
        let token = client.commit_token().expect("token");
        for follower in &followers {
            let mut reader = Client::connect(follower.local_addr()).expect("ryw reader");
            match reader.read_at(ACCOUNTS, 0, token) {
                Ok(Ok(_)) => {}
                _ => ryw_ok = false,
            }
        }
    }

    let result = ConfigResult {
        read_tps: reads as f64 / read_secs,
        write_tps,
        lag_p50: percentile(&lag, 0.50),
        lag_p99: percentile(&lag, 0.99),
        lag_max: lag.last().copied().unwrap_or(0),
        ryw_ok,
    };
    for follower in followers {
        follower.shutdown();
    }
    for replica in replicas {
        replica.shutdown().expect("clean replica stop");
    }
    primary.shutdown();
    result
}

/// Commit throughput under one acknowledgment discipline: `semisync = false`
/// acks as soon as the commit is durable locally (the historic async mode);
/// `semisync = true` additionally holds each ack until the attached replica
/// has confirmed the commit LSN durable in its cursor (K=1 quorum). One real
/// replica is attached in *both* modes so the shipping work is identical and
/// the measured difference is purely the ack round-trip on the commit path.
fn run_commit_mode(semisync: bool, conns: usize, depth: usize, commits: u64) -> f64 {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let mut workload = Tpcb::new(1, 42);
    db.load_population(&workload).expect("population load");
    let config = if semisync {
        ServerConfig {
            repl_group: Some(Arc::new(ReplGroup::new(1))),
            quorum: Some(QuorumPolicy { k: 1, timeout: Duration::from_millis(500) }),
            ..ServerConfig::default()
        }
    } else {
        ServerConfig::default()
    };
    let primary = Server::start(Arc::clone(&db), "127.0.0.1:0", config).expect("bind primary");
    let primary_addr = primary.local_addr();
    let replica = start_replica(
        primary_addr,
        EngineConfig::conventional_baseline(),
        ReconnectPolicy::default(),
    )
    .expect("replica bootstrap");

    // Warm up until commits clear: in semi-sync mode the first few can race
    // the follower's subscribe, each miss burning one bounded quorum wait.
    let mut probe = Client::connect(primary_addr).expect("commit-mode connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match probe.one_shot(&workload.next_txn()) {
            Ok(_) => break,
            Err(NetError::QuorumTimeout { .. }) if Instant::now() < deadline => {}
            Err(e) => panic!("commit-mode warmup: {e}"),
        }
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..conns {
        let mut gen = workload.fork();
        let share = commits / conns as u64;
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(primary_addr).expect("writer connect");
            let mut done = 0u64;
            while done < share {
                let n = depth.min((share - done) as usize);
                let specs: Vec<_> = (0..n).map(|_| gen.next_txn()).collect();
                client.run_pipelined(&specs).unwrap_or_else(|e| panic!("conn {c}: {e}"));
                done += n as u64;
            }
            done
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().expect("writer thread")).sum();
    let tps = total as f64 / start.elapsed().as_secs_f64();
    replica.shutdown().expect("clean replica stop");
    primary.shutdown();
    tps
}

fn main() {
    let readers = env_u64("TABR_READERS", 4) as usize;
    let reads = env_u64("TABR_READS", 20_000);
    let writes = env_u64("TABR_WRITES", 2_000);
    let replica_counts: Vec<usize> = std::env::var("TABR_REPLICAS")
        .map(|s| {
            s.split(',')
                .map(|d| d.trim().parse().unwrap_or_else(|_| panic!("TABR_REPLICAS: integers")))
                .collect()
        })
        .unwrap_or_else(|_| vec![0, 1, 2]);

    header(
        "tab_repl",
        &format!(
            "TPC-B writes + ReadAt point reads, {readers} reader threads, {reads} reads \
             and {writes} writes per config"
        ),
        &["replicas", "read_tps", "write_tps", "lag_p50_B", "lag_p99_B", "lag_max_B", "ryw"],
    );
    let reps = env_u64("TABR_REPS", 3) as usize;
    let mut records = Vec::new();
    for &n in &replica_counts {
        // Best-of-N over identical runs; read-your-writes must hold in every
        // rep, not just the reported one.
        let mut best: Option<ConfigResult> = None;
        for _ in 0..reps.max(1) {
            let r = run_config(n, readers, reads, writes);
            assert!(r.ryw_ok, "{n} replicas: a follower broke read-your-writes");
            if best.as_ref().map_or(true, |b| r.read_tps > b.read_tps) {
                best = Some(r);
            }
        }
        let r = best.expect("at least one rep");
        row(&[
            format!("{n}"),
            format!("{:.0}", r.read_tps),
            format!("{:.0}", r.write_tps),
            format!("{}", r.lag_p50),
            format!("{}", r.lag_p99),
            format!("{}", r.lag_max),
            if r.ryw_ok { "ok".into() } else { "VIOLATED".into() },
        ]);
        let config = format!("replicas={n}");
        records.push(BenchRecord {
            config: config.clone(),
            metric: "read_tps".into(),
            value: r.read_tps,
            seed: 42,
        });
        records.push(BenchRecord {
            config: config.clone(),
            metric: "write_tps".into(),
            value: r.write_tps,
            seed: 42,
        });
        records.push(BenchRecord {
            config,
            metric: "lag_p99_bytes".into(),
            value: r.lag_p99 as f64,
            seed: 42,
        });
    }

    let commits = env_u64("TABR_COMMITS", 2_000);
    println!();
    header(
        "tab_repl commit modes",
        &format!(
            "commit acknowledgment cost: async vs semi-sync K=1 (one acking replica \
             attached in both modes), {commits} TPC-B commits per cell"
        ),
        &["mode", "conns", "pipeline_depth", "commit_tps", "vs_async"],
    );
    // depth-1 is the unamortized price (every commit pays the whole follower
    // round trip); 1×16 shows batch amortization alone (one ack covers a
    // pipelined batch); 4×16 adds overlapping quorum waits across sessions —
    // the intended operating mode, where semi-sync stays within ~30% of
    // async on a loopback host. Best-of-N per cell: scheduler noise only
    // ever slows a run down, so the max is the fairest estimate of each
    // mode's capacity.
    let best_of = |semisync: bool, conns: usize, depth: usize| {
        (0..reps.max(1))
            .map(|_| run_commit_mode(semisync, conns, depth, commits))
            .fold(0.0f64, f64::max)
    };
    for &(conns, depth) in &[(1usize, 1usize), (1, 16), (4, 16)] {
        let async_tps = best_of(false, conns, depth);
        let semi_tps = best_of(true, conns, depth);
        row(&[
            "async".into(),
            conns.to_string(),
            depth.to_string(),
            format!("{:.0}", async_tps),
            "1.00".into(),
        ]);
        row(&[
            "semisync_k1".into(),
            conns.to_string(),
            depth.to_string(),
            format!("{:.0}", semi_tps),
            format!("{:.2}", semi_tps / async_tps),
        ]);
        records.push(BenchRecord {
            config: format!("commit=async conns={conns} depth={depth}"),
            metric: "commit_tps".into(),
            value: async_tps,
            seed: 42,
        });
        records.push(BenchRecord {
            config: format!("commit=semisync_k1 conns={conns} depth={depth}"),
            metric: "commit_tps".into(),
            value: semi_tps,
            seed: 42,
        });
    }

    let path = write_bench_json("tab_repl", &records).expect("write BENCH_tab_repl.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nreading guide: 0 replicas is the contended baseline (reads and writes\n\
         share the primary). Adding replicas moves reads onto followers fed by\n\
         log shipping: read throughput grows with replica count while write\n\
         throughput holds, and the lag columns bound how stale a follower can\n\
         be (bytes of log shipped-but-not-applied; the read-your-writes token\n\
         turns that bound into a per-session freshness guarantee). The commit\n\
         modes table prices the semi-sync quorum: at depth 1 every commit pays\n\
         the follower's full ack round-trip; pipelined, one quorum wait covers\n\
         the whole batch — the group-commit amortization that keeps semi-sync\n\
         K=1 within striking distance of async on a loopback host."
    );
}
