//! tab3_server — what the wire costs, and what pipelining buys back.
//!
//! TATP against the same engine config three ways:
//!
//! 1. **in-process** — the embedded harness (`run_workload`), the upper bound;
//! 2. **server/depth-1** — TCP loopback, strict request/response: every
//!    commit pays a socket round trip *and* its own WAL durability wait;
//! 3. **server/depth-8** — TCP loopback with eight transactions in flight
//!    per connection: the server executes each arriving batch with deferred
//!    commits and covers it with one group-commit flush.
//!
//! The `commits/flush` column is the direct evidence. Concurrent sessions
//! already share flushes through the log buffer's own group commit, so
//! depth-1 sits at roughly the connection count; depth-8 pushes it higher
//! still, and the throughput gap between the two server rows is the
//! round-trip + flush latency the pipeline amortized away.
//!
//! Two reactor-era rows ride along: `p50_us` (depth-1 request/response
//! latency through the event loop — the number that must NOT regress when
//! trading threads for reactors) and `max_connections` (live sessions held
//! at once — the number the reactor exists to multiply: a thread-per-session
//! server caps at its thread budget, default 64; the reactor holds the
//! whole herd on a handful of threads).
//!
//! Env knobs (CI smoke): TAB3_CONNS, TAB3_TXNS, TAB3_SUBSCRIBERS, TAB3_REPS
//! (each mode reports its median run), TAB3_DEPTHS (comma-separated
//! pipeline depths, default `1,8` — the obs overhead gate in
//! `scripts/obs_overhead_gate.sh` runs a single depth-4), TAB3_REACTORS
//! (reactor thread count, 0 = host default) and TAB3_MAX_CONNS (herd size
//! for the max_connections row).

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::{Database, EngineConfig};
use esdb_net::{run_load, Client, LoadConfig, Server, ServerConfig};
use esdb_workload::{Tatp, Workload};
use std::sync::Arc;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name}: integer")))
        .unwrap_or(default)
}

/// Runs `f` `reps` times and keeps the run with the median throughput —
/// loopback tps on a shared box is too noisy for single runs to gate on.
fn median_run<T>(reps: usize, mut f: impl FnMut() -> (f64, T)) -> T {
    let mut runs: Vec<(f64, T)> = (0..reps.max(1)).map(|_| f()).collect();
    runs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    runs.swap_remove(runs.len() / 2).1
}

fn report_row(mode: &str, report: &esdb_core::WorkloadReport, db: &Database) -> Vec<String> {
    let snap = db.stats_snapshot();
    let flushes = snap.wal_flushes.max(1);
    vec![
        mode.to_string(),
        format!("{}", report.committed),
        format!("{}", report.expected_failures),
        format!("{:.0}", report.throughput()),
        format!("{}", snap.wal_flushes),
        format!("{:.1}", snap.commits as f64 / flushes as f64),
    ]
}

/// The bench's server config: `reactors == 0` keeps the host default.
fn server_config(max_sessions: usize, reactors: usize) -> ServerConfig {
    let mut config = ServerConfig { max_sessions, ..ServerConfig::default() };
    if reactors > 0 {
        config.reactors = reactors;
    }
    config
}

fn main() {
    let conns = env_u64("TAB3_CONNS", 4) as usize;
    let txns = env_u64("TAB3_TXNS", 5_000);
    let subscribers = env_u64("TAB3_SUBSCRIBERS", 10_000);
    let reps = env_u64("TAB3_REPS", 3) as usize;
    let reactors = env_u64("TAB3_REACTORS", 0) as usize;
    let max_conns = env_u64("TAB3_MAX_CONNS", 1_000) as usize;
    let depths: Vec<usize> = std::env::var("TAB3_DEPTHS")
        .map(|s| {
            s.split(',')
                .map(|d| d.trim().parse().unwrap_or_else(|_| panic!("TAB3_DEPTHS: integers")))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 8]);

    header(
        "tab3",
        &format!(
            "TATP in-process vs wire-attached ({conns} conns/threads, {txns} txns each, \
             committed tps)"
        ),
        &["mode", "committed", "expected_fail", "tps", "wal_flushes", "commits/flush"],
    );

    let mut records = Vec::new();

    // In-process upper bound.
    {
        let (report, db) = median_run(reps, || {
            let mut workload = Tatp::new(subscribers, 42);
            let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
            db.load_population(&workload).expect("population load");
            let report = db.run_workload(&mut workload, conns, txns);
            assert_eq!(report.failed, 0, "in-process failures: {report}");
            (report.throughput(), (report, db))
        });
        row(&report_row("in-process", &report, &db));
        records.push(BenchRecord {
            config: "in-process".into(),
            metric: "tps".into(),
            value: report.throughput(),
            seed: 42,
        });
    }

    // Wire-attached at the configured pipeline depths.
    for &depth in &depths {
        let (report, db) = median_run(reps, || {
            let mut workload = Tatp::new(subscribers, 42);
            let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
            db.load_population(&workload).expect("population load");
            let server = Server::start(
                Arc::clone(&db),
                "127.0.0.1:0",
                server_config(conns + 1, reactors),
            )
            .expect("bind loopback");
            let report = run_load(
                server.local_addr(),
                &mut workload,
                &LoadConfig {
                    connections: conns,
                    txns_per_conn: txns,
                    pipeline_depth: depth,
                    connect_attempts: 50,
                },
            )
            .expect("load run");
            assert_eq!(report.failed, 0, "server depth-{depth} failures: {report}");
            let mut probe = Client::connect(server.local_addr()).expect("stats probe");
            let stats = probe.stats().expect("stats");
            assert_eq!(
                stats.txns_committed, report.committed,
                "server counters must match client-observed commits"
            );
            server.shutdown();
            (report.throughput(), (report, db))
        });
        row(&report_row(&format!("server/depth-{depth}"), &report, &db));
        records.push(BenchRecord {
            config: format!("server depth={depth}"),
            metric: "tps".into(),
            value: report.throughput(),
            seed: 42,
        });
    }

    // Reactor scale rows: depth-1 p50 latency (the latency the refactor must
    // not cost) and the largest live herd the server holds at once (the
    // capacity it must buy).
    {
        let mut workload = Tatp::new(subscribers, 42);
        let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
        db.load_population(&workload).expect("population load");
        let server = Server::start(
            Arc::clone(&db),
            "127.0.0.1:0",
            server_config(max_conns + 8, reactors),
        )
        .expect("bind loopback");

        // p50: one strict request/response client, no pipelining — every
        // sample is a full socket round trip through the reactor tick.
        let p50_us = median_run(reps, || {
            let mut client = Client::connect(server.local_addr()).expect("latency probe");
            for _ in 0..200 {
                client.one_shot(&workload.next_txn()).expect("warm-up txn");
            }
            let mut samples: Vec<u64> = (0..1_000)
                .map(|_| {
                    let spec = workload.next_txn();
                    let started = Instant::now();
                    client.one_shot(&spec).expect("latency txn");
                    started.elapsed().as_micros() as u64
                })
                .collect();
            samples.sort_unstable();
            let p50 = samples[samples.len() / 2];
            // median_run keys on throughput-like "higher is better"; negate
            // so the kept run is the median *latency* run.
            (-(p50 as f64), p50)
        });
        println!("\ndepth-1 p50 latency: {p50_us} us (single client, strict request/response)");
        records.push(BenchRecord {
            config: "server depth=1".into(),
            metric: "p50_us".into(),
            value: p50_us as f64,
            seed: 42,
        });

        // max_connections: open the herd, prove a sample is live, count what
        // the server reports. A thread-per-session build needs `held` stacks
        // for this row; the reactors hold it on `config.reactors` threads.
        let mut herd = Vec::with_capacity(max_conns);
        for _ in 0..max_conns {
            match Client::connect(server.local_addr()) {
                Ok(c) => herd.push(c),
                Err(_) => break,
            }
        }
        for idx in [0, herd.len() / 2, herd.len().saturating_sub(1)] {
            herd[idx].ping().expect("herd member must answer");
        }
        let held = herd.len();
        let active = herd[0].stats().expect("stats").sessions_active;
        drop(herd);
        server.shutdown();
        println!(
            "max_connections: {held} live sessions held concurrently \
             (server reports {active} active; threaded default cap was 64)"
        );
        records.push(BenchRecord {
            config: "reactor".into(),
            metric: "max_connections".into(),
            value: held as f64,
            seed: 42,
        });
    }

    let path = write_bench_json("tab3_server", &records).expect("write BENCH_tab3_server.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nreading guide: in-process is the no-wire upper bound. depth-1 pays one\n\
         round trip and one durability wait per transaction (flushes shared only\n\
         across sessions); depth-8 also batches within each session, cutting\n\
         flushes and round trips and recovering much of the wire gap. All rows\n\
         run identical TATP request streams."
    );
}
