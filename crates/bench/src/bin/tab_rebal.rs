//! tab_rebal — foreground cost of a live slot migration between two shards.
//!
//! Two configurations, identical foreground workload (closed-loop writer
//! threads driving a routing-aware `ShardRouter` over two in-process
//! shards, mixing single-shard writes with cross-shard 2PC pairs):
//!
//! * **baseline** — the ownership gate and live routing table are active
//!   (the always-on cost of being migratable), but no migration runs;
//! * **migrating** — a full live migration of one slot (fuzzy copy → WAL
//!   delta catch-up → fence → cutover → cleanup) completes *during* the
//!   burst, with the catch-up pump sleeping between rounds so the measured
//!   ratio isolates migration coupling from plain CPU time-sharing —
//!   the zero-CPU-pin methodology of tab_htap applied to rebalancing.
//!
//! Headline cells:
//!
//! * `degradation_ratio` = migrating tps / baseline tps (gated, clamped at
//!   1.0): a live migration must not tax foreground writes beyond the
//!   fence window;
//! * `fence_bound_ok` = 1.0 iff the write-blocked window (the fence +
//!   cutover steps, during which writers touching the moving slot park)
//!   stayed under TABREB_FENCE_MS milliseconds (gated);
//! * `copy_rows_per_s`, `catchup_lag_bytes`, `fence_ms`,
//!   `wrong_shard_retries` — ungated context: bulk-copy throughput, lag
//!   when the fence decision fired, the actual window, and how many
//!   foreground transactions crossed the cutover and recovered via the
//!   typed refusal + refresh path.
//!
//! Env knobs (CI smoke): TABREB_WRITERS, TABREB_WRITES (total per config),
//! TABREB_ROWS (seeded), TABREB_REPS (best-of-N), TABREB_FENCE_MS (gate bound).

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::{Database, EngineConfig, RoutingTable};
use esdb_rebal::{Migration, MigrationEnv, MigrationLog, MigrationSpec, Phase, ShardHandle};
use esdb_shard::{
    DecisionLog, OwnedShard, ShardBackend, ShardOwnership, ShardRouter, SharedRouting,
};
use esdb_workload::{TxnSpec, WorkloadOp};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SLOTS: u32 = 16;
const MOVING: u32 = 0;
const T: u32 = 0;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name}: integer")))
        .unwrap_or(default)
}

struct Cluster {
    dbs: Vec<Arc<Database>>,
    owns: Vec<Arc<ShardOwnership>>,
    routing: Arc<SharedRouting>,
    coord: Arc<DecisionLog>,
}

fn cluster(rows: u64) -> Cluster {
    let table = RoutingTable::uniform(2, SLOTS);
    let routing = Arc::new(SharedRouting::new(table.clone()));
    let mut dbs = Vec::new();
    let mut owns = Vec::new();
    for shard in 0..2u32 {
        let db = Arc::new(Database::open(EngineConfig::default()));
        db.create_table("t", 1).unwrap();
        let keys: Vec<u64> = (0..rows).filter(|&k| table.shard_of(T, k) == shard).collect();
        for chunk in keys.chunks(128) {
            db.execute(|txn| {
                for &k in chunk {
                    txn.insert(T, k, &[k as i64])?;
                }
                Ok(())
            })
            .expect("seed rows");
        }
        dbs.push(db);
        owns.push(Arc::new(ShardOwnership::for_shard(&table, shard)));
    }
    Cluster { dbs, owns, routing, coord: Arc::new(DecisionLog::new()) }
}

fn router_of(c: &Cluster) -> ShardRouter {
    let shards: Vec<Box<dyn ShardBackend>> = (0..2)
        .map(|s| {
            Box::new(OwnedShard {
                db: Arc::clone(&c.dbs[s]),
                own: Arc::clone(&c.owns[s]),
                routing: Arc::clone(&c.routing),
            }) as Box<dyn ShardBackend>
        })
        .collect();
    ShardRouter::with_routing(shards, Arc::clone(&c.routing), Arc::clone(&c.coord), None)
        .unwrap()
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Baseline,
    Migrating,
}

#[derive(Default)]
struct RebalResult {
    foreground_tps: f64,
    wrong_shard_retries: u64,
    copy_rows_per_s: f64,
    catchup_lag_bytes: u64,
    fence_ms: f64,
    shipped_ops: u64,
}

fn run_config(mode: Mode, writers: usize, writes: u64, rows: u64) -> RebalResult {
    let c = cluster(rows);

    let mut handles = Vec::new();
    let start = Instant::now();
    for w in 0..writers {
        let (dbs, owns) = (c.dbs.clone(), c.owns.clone());
        let (routing, coord) = (Arc::clone(&c.routing), Arc::clone(&c.coord));
        let share = writes / writers as u64;
        handles.push(std::thread::spawn(move || {
            let cl = Cluster { dbs, owns, routing, coord };
            let mut router = router_of(&cl);
            let mut rng = 0x9E3779B97F4A7C15u64.wrapping_mul(w as u64 + 1) | 1;
            let mut rand = move || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng >> 33
            };
            for i in 0..share {
                let k = rand() % rows;
                let spec = if i % 5 == 0 {
                    // Cross-shard pair under the current table.
                    let table = cl.routing.current();
                    let mut k2 = rand() % rows;
                    for _ in 0..64 {
                        if table.shard_of(T, k2) != table.shard_of(T, k) {
                            break;
                        }
                        k2 = rand() % rows;
                    }
                    TxnSpec {
                        kind: "xshard",
                        ops: vec![
                            WorkloadOp::Write { table: T, key: k, row: vec![i as i64] },
                            WorkloadOp::Write { table: T, key: k2, row: vec![i as i64] },
                        ],
                        may_fail: false,
                    }
                } else {
                    TxnSpec {
                        kind: "write",
                        ops: vec![WorkloadOp::Write { table: T, key: k, row: vec![i as i64] }],
                        may_fail: false,
                    }
                };
                let outcome = router.execute(&spec).expect("foreground write");
                assert!(outcome.is_committed(), "foreground write must commit");
            }
            router.stats().wrong_shard_retries
        }));
    }

    // The migration runs concurrently with the burst: copy, park in
    // catch-up with 1 ms sleeps between pump rounds (near-zero CPU), then
    // fence and cut over as soon as lag allows.
    let mig = if mode == Mode::Migrating {
        let env = MigrationEnv {
            source: ShardHandle { db: Arc::clone(&c.dbs[0]), own: Arc::clone(&c.owns[0]) },
            dest: ShardHandle { db: Arc::clone(&c.dbs[1]), own: Arc::clone(&c.owns[1]) },
            routing: Arc::clone(&c.routing),
            coord: Arc::clone(&c.coord),
        };
        Some(std::thread::spawn(move || {
            let mlog = Arc::new(MigrationLog::new());
            let spec = MigrationSpec { mid: 1, slot: MOVING, from: 0, to: 1 };
            let mut m = Migration::new(mlog, spec, env);
            m.fence_lag_bytes = 1 << 16;
            let (mut copy_s, mut fence_s, mut lag_at_fence, mut last_lag) = (0.0, 0.0, 0u64, 0);
            loop {
                if m.phase() == Phase::CatchUp {
                    last_lag = m.lag();
                }
                let t0 = Instant::now();
                let p = m.step().expect("migration step");
                let dt = t0.elapsed().as_secs_f64();
                match p {
                    Phase::Copying => copy_s += dt,
                    Phase::Fenced => {
                        fence_s += dt;
                        lag_at_fence = last_lag;
                    }
                    Phase::CutOver => fence_s += dt,
                    Phase::Done => break,
                    _ => {}
                }
                if p == Phase::CatchUp {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            (m.stats, copy_s, fence_s, lag_at_fence)
        }))
    } else {
        None
    };

    let mut retries = 0u64;
    for h in handles {
        retries += h.join().expect("writer thread");
    }
    let foreground_tps = writes as f64 / start.elapsed().as_secs_f64();
    let (stats, copy_s, fence_s, lag_at_fence) = mig.map_or(
        (esdb_rebal::MigrationStats::default(), 0.0, 0.0, 0),
        |h| h.join().expect("migration thread"),
    );

    RebalResult {
        foreground_tps,
        wrong_shard_retries: retries,
        copy_rows_per_s: if copy_s > 0.0 { stats.copied_rows as f64 / copy_s } else { 0.0 },
        catchup_lag_bytes: lag_at_fence,
        fence_ms: fence_s * 1e3,
        shipped_ops: stats.shipped_ops,
    }
}

fn main() {
    let writers = env_u64("TABREB_WRITERS", 2) as usize;
    let writes = env_u64("TABREB_WRITES", 20_000);
    let rows = env_u64("TABREB_ROWS", 4_096);
    let reps = env_u64("TABREB_REPS", 3) as usize;
    let fence_bound_ms = env_u64("TABREB_FENCE_MS", 250) as f64;

    header(
        "tab_rebal",
        &format!(
            "foreground writes across 2 shards ± a live slot migration, \
             {writers} writer threads, {writes} writes per config, {rows} seeded rows"
        ),
        &["config", "fg_tps", "retries", "copy_rows_per_s", "lag_B", "fence_ms", "shipped"],
    );

    // Best-of-N on foreground tps; the fence window keeps its *minimum*
    // across reps — host noise only ever inflates both.
    let best = |mode: Mode| {
        let mut best: Option<RebalResult> = None;
        for _ in 0..reps.max(1) {
            let r = run_config(mode, writers, writes, rows);
            let better = match &best {
                None => true,
                Some(b) => r.foreground_tps > b.foreground_tps,
            };
            let fence_min = best.as_ref().map_or(r.fence_ms, |b| {
                if b.fence_ms > 0.0 { b.fence_ms.min(r.fence_ms) } else { r.fence_ms }
            });
            if better {
                best = Some(r);
            }
            if let Some(b) = best.as_mut() {
                b.fence_ms = fence_min;
            }
        }
        best.expect("at least one rep")
    };
    let base = best(Mode::Baseline);
    let mig = best(Mode::Migrating);
    let degradation_ratio = mig.foreground_tps / base.foreground_tps;
    let fence_ok = mig.fence_ms <= fence_bound_ms;

    for (name, r) in [("baseline", &base), ("migrating", &mig)] {
        row(&[
            name.to_string(),
            format!("{:.0}", r.foreground_tps),
            format!("{}", r.wrong_shard_retries),
            format!("{:.0}", r.copy_rows_per_s),
            format!("{}", r.catchup_lag_bytes),
            format!("{:.1}", r.fence_ms),
            format!("{}", r.shipped_ops),
        ]);
    }
    row(&[
        "degradation".into(),
        format!("{degradation_ratio:.3}"),
        "".into(),
        "".into(),
        "".into(),
        format!("bound {fence_bound_ms:.0}ms: {}", if fence_ok { "ok" } else { "EXCEEDED" }),
        "".into(),
    ]);

    let records = vec![
        BenchRecord {
            config: "baseline".into(),
            metric: "foreground_tps".into(),
            value: base.foreground_tps,
            seed: 42,
        },
        BenchRecord {
            config: "migrating".into(),
            metric: "foreground_tps".into(),
            value: mig.foreground_tps,
            seed: 42,
        },
        // Gated: a live migration's foreground cost outside the fence
        // window. Clamped at 1.0 — a migrating run beating baseline is
        // scheduler noise on a time-shared host, and committing >1.0 would
        // make the regression band flaky for honest ~1.0 runs.
        BenchRecord {
            config: "migrating".into(),
            metric: "degradation_ratio".into(),
            value: degradation_ratio.min(1.0),
            seed: 42,
        },
        // Gated boolean: the write-blocked window held its bound.
        BenchRecord {
            config: "migrating".into(),
            metric: "fence_bound_ok".into(),
            value: if fence_ok { 1.0 } else { 0.0 },
            seed: 42,
        },
        BenchRecord {
            config: "migrating".into(),
            metric: "fence_ms".into(),
            value: mig.fence_ms,
            seed: 42,
        },
        BenchRecord {
            config: "migrating".into(),
            metric: "copy_rows_per_s".into(),
            value: mig.copy_rows_per_s,
            seed: 42,
        },
        BenchRecord {
            config: "migrating".into(),
            metric: "catchup_lag_bytes".into(),
            value: mig.catchup_lag_bytes as f64,
            seed: 42,
        },
        BenchRecord {
            config: "migrating".into(),
            metric: "wrong_shard_retries".into(),
            value: mig.wrong_shard_retries as f64,
            seed: 42,
        },
    ];

    let path = write_bench_json("tab_rebal", &records).expect("write BENCH_tab_rebal.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nreading guide: both configs run the identical foreground burst through\n\
         the routing-aware router with the ownership gate active — baseline prices\n\
         being *migratable*, migrating adds one full live slot migration (copy,\n\
         catch-up with sleeping pump, fence, cutover, cleanup) completing during\n\
         the burst. degradation_ratio near 1.0 is the rebalancing claim: moving a\n\
         slot costs the foreground nothing outside the fence window. fence_ms\n\
         upper-bounds that window (the only write-blocked interval, and only for\n\
         the moving slot); fence_bound_ok gates it. retries counts transactions\n\
         that crossed the cutover and recovered through the typed WrongShard +\n\
         refresh path — each one is a correct commit, not an error."
    );
}
