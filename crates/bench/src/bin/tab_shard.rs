//! tab_shard — what partitioning buys, and what cross-shard 2PC costs.
//!
//! TPC-B over the wire in four shapes:
//!
//! 1. **baseline** — one unsharded server, closed-loop clients running
//!    `one_shot` transactions: the path that existed before the routing
//!    layer, and the yardstick the 1-shard cell must stay within 10% of;
//! 2. **shards=1** — the same traffic through a [`ShardRouter`]: every
//!    transaction is single-shard, so the router must add ≈ nothing;
//! 3. **shards=2/4, cross_pct=0** — partitioned engines, all-local
//!    traffic: the embarrassing-scalability best case;
//! 4. **cross_pct=10/50** — a fraction of transactions straddle two
//!    shards and pay full presumed-abort 2PC (two prepares, a forced
//!    coordinator decision, two decide deliveries).
//!
//! Each cell reports committed tps and the realized cross-shard count, and
//! lands in `BENCH_tab_shard.json` for the CI regression gate.
//!
//! Every cell reports the median of `TABS_REPS` full runs — loopback tps
//! on a busy box is noisy, and the 10% acceptance band needs medians.
//!
//! Env knobs (CI smoke): TABS_TXNS (per cell), TABS_THREADS (closed-loop
//! router threads; keep 1 on single-core boxes), TABS_REPS, TABS_SHARDS
//! and TABS_CROSS (comma-separated sweeps), TABS_BRANCHES, TABS_APB
//! (accounts per branch), TABS_SEED.

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::{Database, EngineConfig};
use esdb_net::{Client, Server, ServerConfig};
use esdb_shard::{
    load_shard_population, DecisionLog, NetShard, ShardBackend, ShardRouter, ShardedTpcb,
};
use esdb_workload::Workload;
use std::sync::Arc;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name}: integer")))
        .unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .map(|s| {
            s.split(',')
                .map(|d| d.trim().parse().unwrap_or_else(|_| panic!("{name}: integers")))
                .collect()
        })
        .unwrap_or_else(|_| default.to_vec())
}

struct CellResult {
    committed: u64,
    cross: u64,
    tps: f64,
}

/// Median-by-tps of `reps` full runs of `f`.
fn median_of(reps: usize, mut f: impl FnMut() -> CellResult) -> CellResult {
    let mut runs: Vec<CellResult> = (0..reps.max(1)).map(|_| f()).collect();
    runs.sort_by(|a, b| a.tps.partial_cmp(&b.tps).unwrap());
    runs.swap_remove(runs.len() / 2)
}

/// Drives `txns` transactions from `threads` closed-loop workers, each
/// running `per_txn(spec) -> committed` over its own fork of `workload`.
fn drive(
    workload: &mut ShardedTpcb,
    threads: usize,
    txns: u64,
    worker: impl Fn(usize) -> Box<dyn FnMut(&esdb_workload::TxnSpec) -> bool + Send> + Sync,
) -> CellResult {
    let start = Instant::now();
    let result = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let mut gen = workload.fork();
            let mut run = worker(t);
            let quota = txns / threads as u64 + u64::from(t < (txns % threads as u64) as usize);
            handles.push(scope.spawn(move || {
                let (mut committed, mut cross) = (0u64, 0u64);
                for _ in 0..quota {
                    let spec = gen.next_txn();
                    let is_cross = spec.kind == "CrossShard";
                    if run(&spec) {
                        committed += 1;
                        cross += u64::from(is_cross);
                    }
                }
                (committed, cross)
            }));
        }
        let mut total = (0u64, 0u64);
        for h in handles {
            let (c, x) = h.join().expect("worker thread");
            total.0 += c;
            total.1 += x;
        }
        total
    });
    CellResult {
        committed: result.0,
        cross: result.1,
        tps: result.0 as f64 / start.elapsed().as_secs_f64(),
    }
}

/// The pre-sharding path: one server, plain `one_shot` clients.
fn run_baseline(
    branches: u64,
    apb: u64,
    threads: usize,
    txns: u64,
    seed: u64,
) -> CellResult {
    let mut w = ShardedTpcb::new(branches, apb, 0, 1, seed);
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    db.load_population(&w).expect("population load");
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions: threads + 2, ..ServerConfig::default() },
    )
    .expect("bind baseline server");
    let addr = server.local_addr();
    let result = drive(&mut w, threads, txns, |_| {
        let mut client = Client::connect(addr).expect("baseline connect");
        Box::new(move |spec| client.one_shot(spec).expect("baseline txn").is_committed())
    });
    server.shutdown();
    result
}

/// One sharded cell: `shards` engines behind servers, routers on every
/// worker thread, a shared durable coordinator.
fn run_cell(
    shards: usize,
    cross_pct: u32,
    branches: u64,
    apb: u64,
    threads: usize,
    txns: u64,
    seed: u64,
) -> CellResult {
    let mut w = ShardedTpcb::new(branches, apb, cross_pct, shards, seed);
    let part = w.partitioner();
    let coord = Arc::new(DecisionLog::new());
    let mut dbs = Vec::new();
    let mut servers = Vec::new();
    for idx in 0..shards {
        let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
        load_shard_population(&db, &w, &part, idx, shards).expect("population slice");
        let server = Server::start(
            Arc::clone(&db),
            "127.0.0.1:0",
            ServerConfig {
                max_sessions: threads + 2,
                decision_source: Some(coord.decision_source()),
                ..ServerConfig::default()
            },
        )
        .expect("bind shard server");
        dbs.push(db);
        servers.push(server);
    }
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    let result = drive(&mut w, threads, txns, |_| {
        let backends: Vec<Box<dyn ShardBackend>> = addrs
            .iter()
            .map(|a| Box::new(NetShard(Client::connect(*a).expect("shard connect"))) as _)
            .collect();
        let mut router = ShardRouter::new(backends, Arc::new(part), Arc::clone(&coord))
            .expect("router over ≥1 shard");
        Box::new(move |spec| router.execute(spec).expect("routed txn").is_committed())
    });
    for server in servers {
        server.shutdown();
    }
    result
}

fn main() {
    let txns = env_u64("TABS_TXNS", 4_000);
    let reps = env_u64("TABS_REPS", 3) as usize;
    let threads = env_u64("TABS_THREADS", 1) as usize;
    let branches = env_u64("TABS_BRANCHES", 12);
    let apb = env_u64("TABS_APB", 500);
    let seed = env_u64("TABS_SEED", 42);
    let shard_counts = env_list("TABS_SHARDS", &[1, 2, 4]);
    let cross_ratios = env_list("TABS_CROSS", &[0, 10, 50]);

    header(
        "tab_shard",
        &format!(
            "sharded TPC-B over loopback servers, {threads} router thread(s), \
             {txns} txns/cell, median of {reps}, {branches} branches"
        ),
        &["shards", "cross_pct", "committed", "cross", "tps", "vs_base"],
    );

    let mut records = Vec::new();
    let base = median_of(reps, || run_baseline(branches, apb, threads, txns, seed));
    records.push(BenchRecord {
        config: "baseline unsharded".into(),
        metric: "tps".into(),
        value: base.tps,
        seed,
    });
    row(&[
        "base".into(),
        "0".into(),
        format!("{}", base.committed),
        format!("{}", base.cross),
        format!("{:.0}", base.tps),
        "1.00".into(),
    ]);

    let mut single_shard_ratio = None;
    for &shards in &shard_counts {
        for &cross in &cross_ratios {
            if shards == 1 && cross > 0 {
                continue; // one shard cannot host a cross-shard transaction
            }
            let r = median_of(reps, || {
                run_cell(shards, cross as u32, branches, apb, threads, txns, seed)
            });
            let ratio = r.tps / base.tps;
            if shards == 1 && cross == 0 {
                single_shard_ratio = Some(ratio);
            }
            records.push(BenchRecord {
                config: format!("shards={shards} cross_pct={cross}"),
                metric: "tps".into(),
                value: r.tps,
                seed,
            });
            records.push(BenchRecord {
                config: format!("shards={shards} cross_pct={cross}"),
                metric: "cross_committed".into(),
                value: r.cross as f64,
                seed,
            });
            row(&[
                format!("{shards}"),
                format!("{cross}"),
                format!("{}", r.committed),
                format!("{}", r.cross),
                format!("{:.0}", r.tps),
                format!("{ratio:.2}"),
            ]);
        }
    }

    // Acceptance: routing a single-shard workload through the router must
    // cost < 10% vs the raw one-shot path.
    let ratio = single_shard_ratio.expect("sweep must include the shards=1 cell");
    records.push(BenchRecord {
        config: "shards=1 vs baseline".into(),
        metric: "single_shard_ratio".into(),
        value: ratio,
        seed,
    });
    if ratio < 0.90 {
        println!("\nWARNING: shards=1 tps is {:.0}% of baseline (acceptance: ≥ 90%)", ratio * 100.0);
    }

    let path = write_bench_json("tab_shard", &records).expect("write BENCH_tab_shard.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nreading guide: `base` is the unsharded one-shot server. shards=1 must\n\
         match it (the router's fast path adds no hop). At cross_pct=0, shards\n\
         scale writes near-linearly — partitioned engines share nothing. The\n\
         10/50% columns price distribution: each cross-shard transaction pays\n\
         two prepares, a forced coordinator decision, and two decide frames."
    );
}
