//! tab2_recovery — crash-recovery correctness and replay cost.
//!
//! Runs TPC-B, crashes with in-flight transactions (with and without dirty
//! page steal), recovers, and reports the analysis/redo/undo work plus
//! recovery wall time. Invariants (money conservation, loser rollback) are
//! asserted, not just printed.

use esdb_bench::{header, row};
use esdb_core::{Database, EngineConfig};
use esdb_workload::{tpcb, Tpcb};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    header(
        "tab2",
        "crash recovery after 4x2000 TPC-B txns + 4 in-flight losers",
        &["steal", "log_records", "winners", "losers", "redo", "skipped", "undo", "recovery_ms", "invariants"],
    );
    for flush_pages in [false, true] {
        let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
        let mut w = Tpcb::new(4, 77);
        db.load_population(&w).expect("population load");
        let report = db.run_workload(&mut w, 4, 2_000);
        assert_eq!(report.failed, 0);

        // In-flight losers at crash time.
        let mgr = db.txn_manager().clone();
        for i in 0..4u64 {
            let mut t = mgr.begin();
            t.update(tpcb::BRANCHES, i % 4, &[123_456_789]).unwrap();
            t.insert(tpcb::HISTORY, u64::MAX - i, &[0, 0, 0]).unwrap();
            std::mem::forget(t);
        }
        db.wal().wait_durable(db.wal().current_lsn());

        let records = db.wal().durable_records();
        let analysis = esdb_wal::recovery::analyze(&records);

        let t = Instant::now();
        let (recovered, rep) = db.simulate_crash_with_report(flush_pages);
        let recovery_ms = t.elapsed().as_secs_f64() * 1e3;

        // Invariants on the recovered instance.
        let sum = |table: u32, col: usize| {
            let t = recovered.table(table).unwrap();
            let mut total = 0i64;
            t.scan(|_, r| total += r[col]).unwrap();
            total
        };
        let ok = sum(tpcb::ACCOUNTS, 1) == sum(tpcb::BRANCHES, 0)
            && sum(tpcb::TELLERS, 1) == sum(tpcb::BRANCHES, 0)
            && recovered.table(tpcb::HISTORY).unwrap().len() == 8_000
            && recovered.read_committed(tpcb::HISTORY, u64::MAX).is_err();
        assert!(ok, "recovery invariants violated (steal={flush_pages})");

        row(&[
            flush_pages.to_string(),
            records.len().to_string(),
            analysis.winners.len().to_string(),
            analysis.losers.len().to_string(),
            rep.redo_applied.to_string(),
            rep.redo_skipped.to_string(),
            rep.undo_applied.to_string(),
            format!("{recovery_ms:.1}"),
            "pass".into(),
        ]);
    }
    println!(
        "\nreading guide: without steal, redo does all the work and undo is nearly\n\
         free (loser pages never hit the store); with steal, redo is mostly\n\
         skipped via page LSNs and undo rolls the stolen loser pages back."
    );
}
