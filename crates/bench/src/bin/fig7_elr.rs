//! fig7_elr — early lock release hides log-flush latency.
//!
//! Claim (Aether): holding locks across the commit flush makes every lock
//! holder's wait part of its dependents' critical path; releasing at
//! commit-record *insertion* (and acknowledging after durability) removes
//! the flush from the contention window.
//!
//! TPC-B (hot branch rows) at 32 simulated contexts, sweeping the log
//! device's flush latency, ELR off vs on.

use esdb_bench::{header, row};
use esdb_core::config::LogChoice;
use esdb_core::{run_sim_workload, EngineConfig, ExecutionModel, SimRunConfig};
use esdb_sim::ChipConfig;
use esdb_workload::Tpcb;

fn run(elr: bool, flush_latency: u64) -> f64 {
    let cfg = EngineConfig {
        execution: ExecutionModel::Conventional { lock_partitions: 64 },
        log: LogChoice::Consolidated,
        elr,
        ..EngineConfig::default()
    };
    // Few branches → hot rows → lock waits dominated by commit latency.
    let mut w = Tpcb::new(4, 13);
    let r = run_sim_workload(
        &mut w,
        &cfg,
        &SimRunConfig {
            chip: ChipConfig::with_contexts(32),
            clients: 0,
            horizon: 6_000_000,
            flush_latency,
        },
    );
    r.tpmc()
}

fn main() {
    header(
        "fig7",
        "TPC-B throughput vs log flush latency, 32 contexts (txn/Mcycle)",
        &["flush_cycles", "no_elr", "elr", "elr_gain"],
    );
    for flush in [0u64, 1_000, 10_000, 50_000, 200_000, 1_000_000] {
        let off = run(false, flush);
        let on = run(true, flush);
        row(&[
            flush.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
            format!("{:.2}x", on / off.max(1e-9)),
        ]);
    }
    println!(
        "\nexpected shape: at zero latency ELR is a wash; as the device slows, the\n\
         no-ELR line falls off (locks held across flushes serialize the hot branch\n\
         row) while ELR holds throughput — gains grow with latency."
    );
}
