//! crash_torture — seeded crash-fault torture for WAL salvage + recovery.
//!
//! Runs TPC-B, damages the durable log the way a real crash would (clean
//! stop, truncation at a random byte offset, a random bit flip mid-stream,
//! or a lying log device that acks appends it no longer persists), recovers,
//! and checks the durability invariants on every iteration:
//!
//! * money conservation: sum(accounts) == sum(tellers) == sum(branches)
//!   == sum(history deltas),
//! * exactly one history row per salvaged winner transaction,
//! * in-flight loser probes rolled back,
//! * salvage never loses an *undamaged* log (clean mode: zero lost commits).
//!
//! Damage modes rotate per iteration and every log-buffer policy is
//! exercised. Knobs: `CRASH_ITERS` (default 200), `CRASH_SEED`,
//! `CRASH_BRANCHES` (2), `CRASH_THREADS` (2), `CRASH_TXNS` (per thread, 100).

use esdb_bench::{header, row};
use esdb_core::config::LogChoice;
use esdb_core::{Database, EngineConfig};
use esdb_storage::FaultRng;
use esdb_wal::LogFault;
use esdb_wal::recovery;
use esdb_workload::{tpcb, Tpcb};
use std::sync::Arc;
use std::time::Instant;

const MODES: [&str; 4] = ["clean", "truncate", "bitflip", "lying-device"];
const MODE_CLEAN: usize = 0;
const MODE_TRUNCATE: usize = 1;
const MODE_BITFLIP: usize = 2;
const MODE_LYING: usize = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Default)]
struct ModeAgg {
    iters: u64,
    corruptions: u64,
    torn_tails: u64,
    winners: u64,
    losers: u64,
    redo: u64,
    undo: u64,
    lost_commits: u64,
}

struct IterOutcome {
    corrupted: bool,
    torn: bool,
    winners: u64,
    losers: u64,
    redo: u64,
    undo: u64,
    lost_commits: u64,
}

fn torture_iteration(
    mode: usize,
    log: LogChoice,
    rng: &mut FaultRng,
    branches: u64,
    threads: usize,
    txns: u64,
) -> IterOutcome {
    let config = EngineConfig { log, ..EngineConfig::conventional_baseline() };
    let db = Arc::new(Database::open(config));
    let mut w = Tpcb::new(branches, rng.next_u64());
    db.load_population(&w).expect("population load");

    let first = db.run_workload(&mut w, threads, txns);
    assert_eq!(first.failed, 0, "pre-damage workload must be clean");
    let mut acked = first.committed;

    if mode == MODE_LYING {
        // Arm the lying device, then keep committing into the void: every
        // commit is acknowledged, but from the crash append on nothing
        // reaches the persistent stream.
        db.wal().inject_log_fault(LogFault {
            seed: rng.next_u64(),
            crash_on_append: rng.below(16),
            flip_bit: rng.chance(1, 2),
        });
        let second = db.run_workload(&mut w, threads, txns);
        acked += second.committed;
    }

    // In-flight losers at crash time, with probe keys recovery must erase.
    let probes = 2u64;
    let mgr = db.txn_manager().clone();
    for i in 0..probes {
        let mut t = mgr.begin();
        t.update(tpcb::BRANCHES, i % branches, &[123_456_789]).unwrap();
        t.insert(tpcb::HISTORY, u64::MAX - i, &[0, 0, 0]).unwrap();
        std::mem::forget(t);
    }
    db.wal().wait_durable(db.wal().current_lsn());

    // Damage the persistent log the way the crash would have left it.
    match mode {
        MODE_TRUNCATE => {
            let len = db.wal().durable_len();
            db.wal().truncate_durable(rng.below(len + 1) as usize);
        }
        MODE_BITFLIP => {
            let len = db.wal().durable_len();
            if len > 0 {
                let offset = db.wal().start_lsn() + rng.below(len);
                db.wal().flip_durable_bit(offset, rng.below(8) as u8);
            }
        }
        _ => {}
    }

    let salvaged = db.wal().durable_records_checked();
    let analysis = recovery::analyze(&salvaged.records);
    let (recovered, report) = db.simulate_crash_with_report(false);
    assert_eq!(
        report.winners, analysis.winners,
        "recovery must act on exactly the salvaged prefix"
    );

    // --- Durability invariants -----------------------------------------
    let sum = |table: u32, col: usize| {
        let t = recovered.table(table).unwrap();
        let mut total = 0i64;
        t.scan(|_, r| total += r[col]).unwrap();
        total
    };
    let b = sum(tpcb::BRANCHES, 0);
    assert_eq!(sum(tpcb::ACCOUNTS, 1), b, "account/branch money conservation");
    assert_eq!(sum(tpcb::TELLERS, 1), b, "teller/branch money conservation");
    assert_eq!(sum(tpcb::HISTORY, 2), b, "history deltas conserve money");
    let history = recovered.table(tpcb::HISTORY).unwrap().len();
    assert_eq!(
        history,
        report.winners.len() as u64,
        "exactly one history row per salvaged winner"
    );
    for i in 0..probes {
        assert!(
            recovered.read_committed(tpcb::HISTORY, u64::MAX - i).is_err(),
            "loser probe {i} must be rolled back"
        );
    }
    let lost = acked - report.winners.len() as u64;
    if mode == MODE_CLEAN {
        assert_eq!(lost, 0, "an undamaged durable log loses nothing");
        assert!(salvaged.corruption.is_none(), "{:?}", salvaged.corruption);
    }

    IterOutcome {
        corrupted: salvaged.corruption.is_some(),
        torn: salvaged.corruption.is_none() && salvaged.valid_len < db.wal().durable_len(),
        winners: report.winners.len() as u64,
        losers: report.losers.len() as u64,
        redo: report.redo_applied as u64,
        undo: report.undo_applied as u64,
        lost_commits: lost,
    }
}

fn main() {
    let iters = env_u64("CRASH_ITERS", 200);
    let seed = env_u64("CRASH_SEED", 0xE5DB);
    let branches = env_u64("CRASH_BRANCHES", 2).max(1);
    let threads = env_u64("CRASH_THREADS", 2).max(1) as usize;
    let txns = env_u64("CRASH_TXNS", 100);

    header(
        "crash_torture",
        &format!("{iters} seeded crash/recover iterations, TPC-B, all log policies"),
        &["mode", "iters", "corrupt", "torn", "winners", "losers", "redo", "undo", "lost_acked", "invariants"],
    );

    let mut rng = FaultRng::new(seed);
    let mut agg: Vec<ModeAgg> = (0..MODES.len()).map(|_| ModeAgg::default()).collect();
    let policies = [LogChoice::Serial, LogChoice::Decoupled, LogChoice::Consolidated];
    let t = Instant::now();
    for iter in 0..iters {
        let mode = (iter % MODES.len() as u64) as usize;
        let log = policies[((iter / MODES.len() as u64) % policies.len() as u64) as usize];
        let out = torture_iteration(mode, log, &mut rng, branches, threads, txns);
        let a = &mut agg[mode];
        a.iters += 1;
        a.corruptions += out.corrupted as u64;
        a.torn_tails += out.torn as u64;
        a.winners += out.winners;
        a.losers += out.losers;
        a.redo += out.redo;
        a.undo += out.undo;
        a.lost_commits += out.lost_commits;
    }
    let elapsed = t.elapsed().as_secs_f64();

    for (mode, a) in agg.iter().enumerate() {
        row(&[
            MODES[mode].to_string(),
            a.iters.to_string(),
            a.corruptions.to_string(),
            a.torn_tails.to_string(),
            a.winners.to_string(),
            a.losers.to_string(),
            a.redo.to_string(),
            a.undo.to_string(),
            a.lost_commits.to_string(),
            "pass".into(),
        ]);
    }
    println!(
        "\n{iters} iterations in {elapsed:.1}s, zero invariant violations \
         (every iteration asserts; a violation aborts this binary).\n\
         reading guide: clean crashes lose nothing; truncation and bit flips\n\
         salvage the valid prefix (corrupt = CRC/framing detected, torn =\n\
         incomplete final record); the lying device shows acked-but-lost\n\
         commits — the window an fsync-lying disk opens — while every\n\
         recovered state still satisfies all TPC-B invariants."
    );
}
