//! fig5_staged — staged (service-oriented) query execution.
//!
//! Claim: StagedDB-style operators-as-services exploit locality a Volcano
//! engine destroys. On native hardware we measure the dispatch/locality
//! proxy directly: per-row virtual-call execution vs batched stage
//! execution over the same plans, sweeping packet size (packet = 1 row is
//! Volcano-equivalent work).

use esdb_bench::{header, median_secs, row};
use esdb_staged::{execute_staged, execute_staged_parallel, execute_volcano, AggFunc, CmpOp, PlanNode};

fn make_plan(rows: usize) -> PlanNode {
    let fact = PlanNode::values(
        (0..rows as i64)
            .map(|i| vec![i % 64, (i * 7) % 1_000, i % 13])
            .collect(),
    );
    let dim = PlanNode::values((0..64).map(|g| vec![g, g * 100]).collect());
    // Joined rows: [dim_g, dim_val, f_region, f_amount, f_disc] (5 cols).
    dim.hash_join(fact, 0, 0)
        .filter(3, CmpOp::Lt, 900)
        .filter(4, CmpOp::Ne, 6)
        .aggregate(Some(0), 3, AggFunc::Sum)
        .sort(0)
}

fn main() {
    const ROWS: usize = 400_000;
    let plan = make_plan(ROWS);
    let expected = execute_volcano(&plan);

    header(
        "fig5",
        "join+filter+aggregate over 400k rows: execution time (ms, median of 3)",
        &["engine", "batch", "ms", "speedup_vs_volcano"],
    );
    let volcano_ms = median_secs(3, || {
        std::hint::black_box(execute_volcano(&plan));
    }) * 1e3;
    row(&["volcano".into(), "1".into(), format!("{volcano_ms:.1}"), "1.00x".into()]);

    for batch in [1usize, 4, 16, 64, 256, 1_024, 8_192] {
        let got = execute_staged(&plan, batch);
        assert_eq!(got, expected, "engines must agree");
        let ms = median_secs(3, || {
            std::hint::black_box(execute_staged(&plan, batch));
        }) * 1e3;
        row(&[
            "staged".into(),
            batch.to_string(),
            format!("{ms:.1}"),
            format!("{:.2}x", volcano_ms / ms),
        ]);
    }

    let got = execute_staged_parallel(&plan, 1_024);
    assert_eq!(got, expected);
    let ms = median_secs(3, || {
        std::hint::black_box(execute_staged_parallel(&plan, 1_024));
    }) * 1e3;
    row(&[
        "staged-parallel".into(),
        "1024".into(),
        format!("{ms:.1}"),
        format!("{:.2}x", volcano_ms / ms),
    ]);

    println!(
        "\nexpected shape: staged with packet=1 pays the queue machinery and loses;\n\
         throughput climbs steeply with packet size, beating Volcano once dispatch\n\
         amortizes, then plateaus. (On a multi-core host the parallel deployment\n\
         adds pipeline parallelism on top.)"
    );
}
