//! fig2_log — scalable logging (Aether).
//!
//! Claim: *"parallelism needs to be extracted from seemingly serial
//! operations such as logging."* Two parts:
//!
//! 1. **Simulated**: update-heavy TPC-B on DORA execution with ample
//!    partitions, so the log buffer is the only shared structure; contexts
//!    1→64 for serial vs decoupled vs consolidated buffers.
//! 2. **Native threads**: raw insert throughput of the three real buffer
//!    implementations under 1–8 threads on this host (on a single-core box
//!    this measures contention overhead, not parallel speedup).

use esdb_bench::{header, median_secs, row, CONTEXT_SWEEP};
use esdb_core::config::LogChoice;
use esdb_core::{run_sim_workload, EngineConfig, ExecutionModel, SimRunConfig};
use esdb_wal::{ConsolidatedLogBuffer, DecoupledLogBuffer, LogBuffer, SerialLogBuffer};
use esdb_workload::Tpcb;
use std::sync::Arc;

fn sim_part() {
    header(
        "fig2a",
        "log-bound TPC-B throughput vs contexts (simulated, txn/Mcycle)",
        &["contexts", "serial", "decoupled", "consolidated"],
    );
    let logs = [LogChoice::Serial, LogChoice::Decoupled, LogChoice::Consolidated];
    for &contexts in &CONTEXT_SWEEP {
        let mut vals = vec![contexts.to_string()];
        for log in logs {
            let cfg = EngineConfig {
                execution: ExecutionModel::Dora { partitions: 256 },
                log,
                ..EngineConfig::default()
            };
            let mut w = Tpcb::new(64, 11);
            let r = run_sim_workload(&mut w, &cfg, &SimRunConfig::at_contexts(contexts));
            vals.push(format!("{:.0}", r.tpmc()));
        }
        row(&vals);
    }
}

fn native_part() {
    header(
        "fig2b",
        "native log-buffer insert throughput (Minserts/s, 64B records, median of 3)",
        &["threads", "serial", "decoupled", "consolidated"],
    );
    const INSERTS_PER_THREAD: usize = 100_000;
    for threads in [1usize, 2, 4, 8] {
        let mut vals = vec![threads.to_string()];
        for which in 0..3 {
            let make = || -> Box<dyn LogBuffer> {
                match which {
                    0 => Box::new(SerialLogBuffer::new(None)),
                    1 => Box::new(DecoupledLogBuffer::new(None)),
                    _ => Box::new(ConsolidatedLogBuffer::new(None)),
                }
            };
            let secs = median_secs(3, || {
                let buf: Arc<dyn LogBuffer> = Arc::from(make());
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        let buf = Arc::clone(&buf);
                        s.spawn(move || {
                            let payload = [7u8; 64];
                            for _ in 0..INSERTS_PER_THREAD {
                                buf.insert(&payload);
                            }
                        });
                    }
                });
                buf.flush(buf.current_lsn());
            });
            let total = (threads * INSERTS_PER_THREAD) as f64;
            vals.push(format!("{:.2}", total / secs / 1e6));
        }
        row(&vals);
    }
}

fn main() {
    sim_part();
    native_part();
    println!(
        "\nexpected shape: simulated serial flattens at the log critical section's\n\
         service rate; consolidated tracks the contention-free bound. Native numbers\n\
         on a 1-core host show the same ordering via per-insert overhead."
    );
}
