//! fig4_cache — "common sense is often contradicted".
//!
//! Claim: *"increasing on-chip cache size or aggressively sharing data among
//! processors is often detrimental to performance."* Two sweeps:
//!
//! 1. **Fixed transistor budget**: spend area on contexts vs L2 capacity;
//!    OLTP working sets don't fit anyway, so past a modest cache the extra
//!    area is better spent on contexts — and the oversized cache's latency
//!    actively hurts.
//! 2. **L2 size at fixed contexts**: throughput vs L2 capacity, showing the
//!    rise (capacity) and fall (latency) directly.

use esdb_bench::{header, row};
use esdb_core::{run_sim_workload, EngineConfig, SimRunConfig};
use esdb_sim::topology::AreaModel;
use esdb_sim::ChipConfig;
use esdb_workload::Ycsb;

fn run(chip: ChipConfig) -> f64 {
    let cfg = EngineConfig::scalable(256); // engine out of the way: cache-bound
    let mut w = Ycsb::new(2_000_000, 70, 0.2, 4, 5);
    let r = run_sim_workload(
        &mut w,
        &cfg,
        &SimRunConfig {
            chip,
            clients: 0,
            horizon: 3_000_000,
            flush_latency: 0,
        },
    );
    r.tpmc()
}

fn main() {
    let budget = AreaModel::new(1_280);
    header(
        "fig4a",
        "fixed transistor budget: contexts vs shared-L2 capacity (YCSB, txn/Mcycle)",
        &["contexts", "l2_kib", "tpmc_shared_l2", "tpmc_private_l2"],
    );
    for (contexts, l2_kib) in budget.allocations() {
        if contexts > 128 {
            break;
        }
        let shared = run(budget.chip(contexts, l2_kib, true));
        let private = run(budget.chip(contexts, (l2_kib / contexts).max(64), false));
        row(&[
            contexts.to_string(),
            l2_kib.to_string(),
            format!("{shared:.0}"),
            format!("{private:.0}"),
        ]);
    }

    header(
        "fig4b",
        "L2 capacity sweep at 16 contexts (shared L2; latency grows with size)",
        &["l2_kib", "tpmc", "l2_latency_cycles"],
    );
    for l2_kib in [512usize, 1024, 2048, 4096, 8192, 16384, 32768, 65536] {
        let chip = ChipConfig {
            contexts: 16,
            l2_kib,
            ..ChipConfig::default()
        };
        let lat = chip.l2_latency();
        row(&[
            l2_kib.to_string(),
            format!("{:.0}", run(chip)),
            lat.to_string(),
        ]);
    }
    println!(
        "\nexpected shape: (a) core-heavy allocations beat cache-heavy ones once the\n\
         cache exceeds what the working set rewards; (b) throughput rises with L2\n\
         capacity, then declines as the bigger array's latency taxes every miss\n\
         from L1 — bigger is not better."
    );
}
