//! tab1_engine — end-to-end native-thread engine matrix.
//!
//! The real (non-simulated) engine: TATP and TPC-B with 4 worker threads on
//! this host, across {conventional, DORA} × {serial, consolidated log} ×
//! {ELR off, on}. On a single-core host this measures per-transaction
//! overhead and contention cost, not parallel speedup — the speedup figures
//! are fig1/fig2/fig7 on the simulator.
//!
//! Emits `BENCH_tab1.json` (one `engine_tps` record per workload × config
//! cell) for the perf-trajectory snapshots. The metric is deliberately not
//! in the default `bench_regress` gate set: on a preempted single-vCPU host
//! the consolidation-array cells are bimodal (group formation convoys when
//! a mid-copy thread loses its timeslice, 3-5× swings that survive
//! best-of-N), so the numbers are recorded for trajectory and gated only on
//! hosts with real cores. Env knobs: TAB1_TXNS (per thread), TAB1_REPS
//! (best-of-N per cell).

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::config::LogChoice;
use esdb_core::{Database, EngineConfig, ExecutionModel};
use esdb_workload::{Tatp, Tpcb, Workload};
use std::sync::Arc;

fn run(
    cfg: EngineConfig,
    make: &dyn Fn() -> Box<dyn Workload>,
    threads: usize,
    txns: u64,
    reps: usize,
    records: &mut Vec<BenchRecord>,
) -> Vec<String> {
    let label = cfg.label();
    // Best-of-N with a fresh database and workload stream per rep: every rep
    // executes the identical request sequence, so the max is the run least
    // perturbed by scheduler noise, not a luckier workload.
    let mut best = None;
    let mut name = String::new();
    for _ in 0..reps.max(1) {
        let mut workload = make();
        name = workload.name().to_string();
        let db = Arc::new(Database::open(cfg.clone()));
        db.load_population(workload.as_mut()).expect("population load");
        let report = db.run_workload(workload.as_mut(), threads, txns);
        assert_eq!(report.failed, 0, "[{label}] unexpected failures: {report}");
        if best
            .as_ref()
            .map_or(true, |b: &esdb_core::WorkloadReport| report.throughput() > b.throughput())
        {
            best = Some(report);
        }
    }
    let report = best.expect("at least one rep");
    records.push(BenchRecord {
        config: format!("{name} {label}"),
        metric: "engine_tps".into(),
        value: report.throughput(),
        seed: 42,
    });
    vec![
        name,
        label,
        format!("{}", report.committed),
        format!("{}", report.expected_failures),
        format!("{:.0}", report.throughput()),
    ]
}

fn main() {
    let txns: u64 = std::env::var("TAB1_TXNS")
        .map(|s| s.parse().expect("TAB1_TXNS: integer"))
        .unwrap_or(5_000);
    let reps: usize = std::env::var("TAB1_REPS")
        .map(|s| s.parse().expect("TAB1_REPS: integer"))
        .unwrap_or(3);
    header(
        "tab1",
        &format!("native engine matrix: 4 threads, {txns} txns/thread (committed tps)"),
        &["workload", "config", "committed", "expected_fail", "tps"],
    );
    let mut configs = Vec::new();
    for execution in [
        ExecutionModel::Conventional { lock_partitions: 64 },
        ExecutionModel::Dora { partitions: 4 },
    ] {
        for log in [LogChoice::Serial, LogChoice::Consolidated] {
            for elr in [false, true] {
                configs.push(EngineConfig {
                    execution,
                    log,
                    elr,
                    ..EngineConfig::default()
                });
            }
        }
    }
    let mut records = Vec::new();
    for cfg in &configs {
        let make = || Box::new(Tatp::new(10_000, 42)) as Box<dyn Workload>;
        row(&run(cfg.clone(), &make, 4, txns, reps, &mut records));
    }
    println!();
    for cfg in &configs {
        let make = || Box::new(Tpcb::new(4, 42)) as Box<dyn Workload>;
        row(&run(cfg.clone(), &make, 4, txns, reps, &mut records));
    }
    let path = write_bench_json("tab1", &records).expect("write BENCH_tab1.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nreading guide: identical request streams per workload; differences are\n\
         pure engine overhead. Consolidated logging should not lose to serial;\n\
         DORA's message-passing tax is visible at 1 core and is repaid at scale\n\
         (fig1)."
    );
}
