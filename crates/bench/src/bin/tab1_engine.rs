//! tab1_engine — end-to-end native-thread engine matrix.
//!
//! The real (non-simulated) engine: TATP and TPC-B with 4 worker threads on
//! this host, across {conventional, DORA} × {serial, consolidated log} ×
//! {ELR off, on}. On a single-core host this measures per-transaction
//! overhead and contention cost, not parallel speedup — the speedup figures
//! are fig1/fig2/fig7 on the simulator.

use esdb_bench::{header, row};
use esdb_core::config::LogChoice;
use esdb_core::{Database, EngineConfig, ExecutionModel};
use esdb_workload::{Tatp, Tpcb, Workload};
use std::sync::Arc;

fn run(cfg: EngineConfig, workload: &mut dyn Workload, threads: usize, txns: u64) -> Vec<String> {
    let label = cfg.label();
    let db = Arc::new(Database::open(cfg));
    db.load_population(workload).expect("population load");
    let report = db.run_workload(workload, threads, txns);
    assert_eq!(report.failed, 0, "[{label}] unexpected failures: {report}");
    vec![
        workload.name().to_string(),
        label,
        format!("{}", report.committed),
        format!("{}", report.expected_failures),
        format!("{:.0}", report.throughput()),
    ]
}

fn main() {
    header(
        "tab1",
        "native engine matrix: 4 threads, 5k txns/thread (committed tps)",
        &["workload", "config", "committed", "expected_fail", "tps"],
    );
    let mut configs = Vec::new();
    for execution in [
        ExecutionModel::Conventional { lock_partitions: 64 },
        ExecutionModel::Dora { partitions: 4 },
    ] {
        for log in [LogChoice::Serial, LogChoice::Consolidated] {
            for elr in [false, true] {
                configs.push(EngineConfig {
                    execution,
                    log,
                    elr,
                    ..EngineConfig::default()
                });
            }
        }
    }
    for cfg in &configs {
        row(&run(cfg.clone(), &mut Tatp::new(10_000, 42), 4, 5_000));
    }
    println!();
    for cfg in &configs {
        row(&run(cfg.clone(), &mut Tpcb::new(4, 42), 4, 5_000));
    }
    println!(
        "\nreading guide: identical request streams per workload; differences are\n\
         pure engine overhead. Consolidated logging should not lose to serial;\n\
         DORA's message-passing tax is visible at 1 core and is repaid at scale\n\
         (fig1)."
    );
}
