//! tab_htap — commit-consistent OLAP on a follower while TPC-B writes run on
//! the primary.
//!
//! Three configurations, identical write workload:
//!
//! * **baseline** — primary + attached follower, writes only: the reference
//!   commit throughput with log shipping already paid for;
//! * **pinned** — same topology, plus a thread holding the follower's
//!   apply-gate *read* side for the entire burst: the worst-case analytical
//!   pin (a query that never finishes) at zero CPU cost, so the measured
//!   ratio isolates commit-path coupling from plain CPU time-sharing;
//! * **htap** — same topology, plus a closed-loop analytical client hammering
//!   the follower with wire `Query` frames (full-table aggregates over the
//!   TPC-B accounts, and index-scan vs full-scan pairs over a side table).
//!
//! Headline cells:
//!
//! * `degradation_ratio` = pinned primary tps / baseline primary tps — the
//!   paper's embarrassing-scalability claim applied to HTAP: a pinned
//!   analytical cut on a follower must not tax the primary's commit path
//!   (target ~1.0). The busy-OLAP ratio is also recorded (`olap_ratio`) but
//!   not gated: on a single-vCPU host it mostly prices time-sharing between
//!   the OLAP client and the primary, not engine coupling;
//! * `index_fullscan_match` = 1.0 iff every index-assisted query returned
//!   exactly the rows its full-scan twin did — on every probe, mid-stream;
//! * OLAP freshness lag (`primary durable LSN − follower watermark`, bytes),
//!   sampled at each query — how stale the follower's consistent cuts run;
//! * a read-your-writes probe: after the last commit, a `Query` pinned at
//!   the writer's commit token must be served (bounded wait), proving the
//!   freshness token composes with analytical plans, not just point reads.
//!
//! Env knobs (CI smoke): TABH_WRITERS, TABH_WRITES (total), TABH_REPS
//! (best-of-N on primary tps; the match/RYW cells must hold in every rep).

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::{Database, EngineConfig};
use esdb_net::{Client, ReconnectPolicy, Server, ServerConfig, WirePlan};
use esdb_repl::start_replica;
use esdb_staged::{AggFunc, CmpOp};
use esdb_storage::{IndexDef, IndexKind};
use esdb_workload::tpcb::ACCOUNTS;
use esdb_workload::{Tpcb, Workload};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{name}: integer")))
        .unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

const HOT_ROWS: u64 = 512;
const HOT_HASH: u32 = 0;
const HOT_RANGE: u32 = 1;

/// The analytical plans the OLAP client cycles through.
fn sum_plan() -> WirePlan {
    // Accounts scan emits [key, branch, balance]; balance is plan column 2.
    WirePlan::Aggregate {
        input: Box::new(WirePlan::Scan { table: ACCOUNTS }),
        group_col: None,
        agg_col: 2,
        func: AggFunc::Sum,
    }
}

fn index_plan(hot: u32, lo: i64, hi: i64) -> WirePlan {
    WirePlan::IndexScan { table: hot, index: HOT_RANGE, lo, hi }
}

fn fullscan_plan(hot: u32, lo: i64, hi: i64) -> WirePlan {
    // Same predicate as the index scan, answered the slow way: scan emits
    // [key, c0, c1], the range-indexed column c1 is plan column 2.
    WirePlan::Filter {
        input: Box::new(WirePlan::Filter {
            input: Box::new(WirePlan::Scan { table: hot }),
            col: 2,
            op: CmpOp::Ge,
            value: lo,
        }),
        col: 2,
        op: CmpOp::Le,
        value: hi,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Writes only.
    Baseline,
    /// Writes + a reader holding the follower's apply-gate read side for the
    /// whole burst — an unbounded pinned query at zero CPU cost.
    Pinned,
    /// Writes + the closed-loop wire-query analytical client.
    Olap,
}

struct HtapResult {
    primary_tps: f64,
    olap_qps: f64,
    freshness_p50: u64,
    freshness_p99: u64,
    index_match: bool,
    ryw_ok: bool,
}

fn run_config(mode: Mode, writers: usize, writes: u64) -> HtapResult {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let mut workload = Tpcb::new(1, 42);
    db.load_population(&workload).expect("population load");
    // Side table with real secondary indexes, static during the run so the
    // index-vs-fullscan probes have a deterministic answer mid-stream.
    let hot = db
        .create_table_with_indexes(
            "hot",
            2,
            vec![
                IndexDef { id: HOT_HASH, name: "hot_by_c0".into(), col: 0, kind: IndexKind::Hash },
                IndexDef { id: HOT_RANGE, name: "hot_by_c1".into(), col: 1, kind: IndexKind::Range },
            ],
        )
        .expect("create hot table");
    db.execute(|txn| {
        for k in 0..HOT_ROWS {
            txn.insert(hot, k, &[(k % 32) as i64, ((k * 7) % 256) as i64])?;
        }
        Ok(())
    })
    .expect("populate hot table");

    let primary = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions: writers + 8, ..ServerConfig::default() },
    )
    .expect("bind primary");
    let primary_addr = primary.local_addr();

    let handle = start_replica(
        primary_addr,
        EngineConfig::conventional_baseline(),
        ReconnectPolicy::default(),
    )
    .expect("replica bootstrap");
    let follower = Server::start(
        Arc::clone(handle.db()),
        "127.0.0.1:0",
        ServerConfig {
            applied_watermark: Some(handle.watermark()),
            feed_live: Some(handle.feed_live()),
            apply_gate: Some(handle.apply_gate()),
            max_sessions: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind follower");
    let follower_addr = follower.local_addr();

    // Primary write burst across `writers` closed-loop connections.
    let writers_done = Arc::new(AtomicBool::new(false));
    let write_start = Instant::now();
    let mut write_handles = Vec::new();
    for _ in 0..writers {
        let mut gen = workload.fork();
        let share = writes / writers as u64;
        write_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_with_backoff(primary_addr, &ReconnectPolicy::default())
                .expect("writer connect");
            for _ in 0..share {
                client.one_shot(&gen.next_txn()).expect("write txn");
            }
        }));
    }

    // The worst-case pin: take the apply gate's read side before the burst
    // and hold it until the writers finish. The follower's apply loop stalls
    // completely (its frontier freezes at one consistent cut), which must
    // cost the primary nothing.
    let pin_thread = if mode == Mode::Pinned {
        let gate = handle.apply_gate();
        let done = Arc::clone(&writers_done);
        Some(std::thread::spawn(move || {
            let pin = gate.read();
            while !done.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(pin);
        }))
    } else {
        None
    };

    // The OLAP loop: wire `Query` frames against the follower until the
    // writers finish, sampling freshness lag after every answered query.
    let olap_thread = if mode == Mode::Olap {
        let done = Arc::clone(&writers_done);
        let watermark = handle.watermark();
        let db = Arc::clone(&db);
        Some(std::thread::spawn(move || {
            let mut client = Client::connect_with_backoff(follower_addr, &ReconnectPolicy::default())
                .expect("olap connect");
            let mut queries = 0u64;
            let mut lag = Vec::new();
            let mut mismatches = 0u64;
            let start = Instant::now();
            while !done.load(Ordering::SeqCst) {
                let rows = client
                    .query_at(0, &sum_plan())
                    .expect("olap sum query")
                    .expect("min_lsn 0 can never lag");
                assert!(rows.len() <= 1, "ungrouped aggregate: at most one row");
                lag.push(db.wal().durable_lsn().saturating_sub(watermark.load(Ordering::Acquire)));
                // Every probe also runs the index-vs-fullscan pair; the hot
                // table is static, so the two answers must be identical rows.
                let (lo, hi) = (32 + (queries % 64) as i64, 96 + (queries % 64) as i64);
                let mut ix = client
                    .query_at(0, &index_plan(hot, lo, hi))
                    .expect("index query")
                    .expect("min_lsn 0 can never lag");
                let mut fs = client
                    .query_at(0, &fullscan_plan(hot, lo, hi))
                    .expect("fullscan query")
                    .expect("min_lsn 0 can never lag");
                ix.sort();
                fs.sort();
                if ix != fs || ix.is_empty() {
                    mismatches += 1;
                }
                queries += 1;
            }
            let qps = queries as f64 / start.elapsed().as_secs_f64();
            (qps, lag, mismatches)
        }))
    } else {
        None
    };

    for h in write_handles {
        h.join().expect("writer thread");
    }
    let primary_tps = writes as f64 / write_start.elapsed().as_secs_f64();
    writers_done.store(true, Ordering::SeqCst);

    if let Some(h) = pin_thread {
        h.join().expect("pin thread");
    }
    let (olap_qps, mut lag, mismatches) =
        olap_thread.map_or((0.0, Vec::new(), 0), |h| h.join().expect("olap thread"));
    lag.sort_unstable();

    // Read-your-writes for analytical plans: commit once more, take the
    // token, and require the follower to serve a Query pinned at it.
    let ryw_ok = {
        let mut writer = Client::connect(primary_addr).expect("ryw writer");
        writer.one_shot(&workload.next_txn()).expect("ryw txn");
        let token = writer.commit_token().expect("token");
        let mut reader = Client::connect(follower_addr).expect("ryw olap reader");
        matches!(reader.query_at(token, &sum_plan()), Ok(Ok(rows)) if rows.len() == 1)
    };

    let result = HtapResult {
        primary_tps,
        olap_qps,
        freshness_p50: percentile(&lag, 0.50),
        freshness_p99: percentile(&lag, 0.99),
        index_match: mismatches == 0,
        ryw_ok,
    };
    follower.shutdown();
    handle.shutdown().expect("clean replica stop");
    primary.shutdown();
    result
}

fn main() {
    let writers = env_u64("TABH_WRITERS", 2) as usize;
    let writes = env_u64("TABH_WRITES", 2_000);
    let reps = env_u64("TABH_REPS", 3) as usize;

    header(
        "tab_htap",
        &format!(
            "TPC-B writes on the primary ± follower OLAP (wire Query frames), \
             {writers} writer threads, {writes} writes per config"
        ),
        &["config", "primary_tps", "olap_qps", "fresh_p50_B", "fresh_p99_B", "ix=scan", "ryw"],
    );

    // Best-of-N on primary tps (host noise only slows runs down); the
    // correctness cells — index/fullscan equality and token-pinned RYW —
    // must hold in EVERY rep, not just the reported one.
    let best = |mode: Mode| {
        let mut best: Option<HtapResult> = None;
        for _ in 0..reps.max(1) {
            let r = run_config(mode, writers, writes);
            assert!(r.index_match, "index-assisted query diverged from full scan");
            assert!(r.ryw_ok, "follower failed a token-pinned analytical query");
            if best.as_ref().map_or(true, |b| r.primary_tps > b.primary_tps) {
                best = Some(r);
            }
        }
        best.expect("at least one rep")
    };
    let base = best(Mode::Baseline);
    let pinned = best(Mode::Pinned);
    let htap = best(Mode::Olap);
    let degradation_ratio = pinned.primary_tps / base.primary_tps;
    let olap_ratio = htap.primary_tps / base.primary_tps;

    for (name, r) in [("baseline", &base), ("pinned", &pinned), ("htap", &htap)] {
        row(&[
            name.to_string(),
            format!("{:.0}", r.primary_tps),
            format!("{:.1}", r.olap_qps),
            format!("{}", r.freshness_p50),
            format!("{}", r.freshness_p99),
            if r.index_match { "ok".into() } else { "DIVERGED".into() },
            if r.ryw_ok { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    row(&["degradation(pin)".into(), format!("{degradation_ratio:.3}"), "".into(), "".into(), "".into(), "".into(), "".into()]);
    row(&["degradation(olap)".into(), format!("{olap_ratio:.3}"), "".into(), "".into(), "".into(), "".into(), "".into()]);

    let records = vec![
        BenchRecord {
            config: "baseline".into(),
            metric: "primary_tps".into(),
            value: base.primary_tps,
            seed: 42,
        },
        BenchRecord {
            config: "pinned".into(),
            metric: "primary_tps".into(),
            value: pinned.primary_tps,
            seed: 42,
        },
        BenchRecord {
            config: "htap".into(),
            metric: "primary_tps".into(),
            value: htap.primary_tps,
            seed: 42,
        },
        BenchRecord {
            config: "htap".into(),
            metric: "olap_ratio".into(),
            value: olap_ratio,
            seed: 42,
        },
        BenchRecord {
            config: "htap".into(),
            metric: "olap_qps".into(),
            value: htap.olap_qps,
            seed: 42,
        },
        BenchRecord {
            config: "htap".into(),
            metric: "freshness_p99_bytes".into(),
            value: htap.freshness_p99 as f64,
            seed: 42,
        },
        // Gated cells: a pinned analytical cut must not slow the primary
        // down (zero-CPU pin isolates coupling from time-sharing), and
        // index-assisted answers must equal their full-scan twins
        // (1.0 = every probe matched; any divergence => 0). The ratio is
        // clamped at 1.0 before recording: a pinned run beating baseline is
        // pure scheduler noise on a time-shared host, and committing a >1.0
        // baseline would make the regression band flaky for honest ~1.0 runs.
        BenchRecord {
            config: "pinned".into(),
            metric: "degradation_ratio".into(),
            value: degradation_ratio.min(1.0),
            seed: 42,
        },
        BenchRecord {
            config: "htap".into(),
            metric: "index_fullscan_match".into(),
            value: if htap.index_match && base.index_match { 1.0 } else { 0.0 },
            seed: 42,
        },
    ];

    let path = write_bench_json("tab_htap", &records).expect("write BENCH_tab_htap.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nreading guide: all three configs run the identical primary write burst.\n\
         pinned adds a zero-CPU thread holding the follower's apply gate for the\n\
         whole burst — the worst-case analytical pin — so degradation(pin) near\n\
         1.0 is the HTAP claim: follower OLAP rides the already-paid log-shipping\n\
         stream and never touches the primary's commit path. htap adds a busy\n\
         closed-loop analytical client instead; on a single-vCPU host its\n\
         degradation(olap) conflates commit-path coupling with plain CPU\n\
         time-sharing, so it is reported as ungated context only. Freshness\n\
         columns bound how far behind a pinned analytical cut runs (bytes of\n\
         shipped-but-unapplied log). ix=scan asserts every index-assisted probe\n\
         returned exactly its full-scan twin's rows, and ryw that a\n\
         commit-token-pinned Query is served once the follower's consistent cut\n\
         passes the token."
    );
}
