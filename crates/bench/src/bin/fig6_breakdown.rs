//! fig6_breakdown — where the cycles go as contexts grow.
//!
//! The keynote's diagnosis in one table: on the conventional engine, the
//! fraction of context-cycles doing *useful compute* shrinks as contexts
//! grow — eaten by spinning on the lock manager, memory/coherence stalls on
//! shared lines, and context-switch overhead. The scalable stack keeps the
//! useful fraction roughly flat.

use esdb_bench::{header, row, CONTEXT_SWEEP};
use esdb_core::{run_sim_workload, EngineConfig, SimRunConfig};
use esdb_workload::Tatp;

fn breakdown_row(label: &str, cfg: &EngineConfig, contexts: usize) -> Vec<String> {
    let mut w = Tatp::new(100_000, 7);
    let r = run_sim_workload(&mut w, cfg, &SimRunConfig::at_contexts(contexts));
    let cap = (r.horizon * r.contexts as u64) as f64;
    let b = r.breakdown;
    vec![
        label.to_string(),
        contexts.to_string(),
        format!("{:.0}", r.tpmc()),
        format!("{:.1}%", 100.0 * b.compute as f64 / cap),
        format!("{:.1}%", 100.0 * b.mem_stall as f64 / cap),
        format!("{:.1}%", 100.0 * b.spin as f64 / cap),
        format!("{:.1}%", 100.0 * b.switch_overhead as f64 / cap),
        format!("{:.1}%", 100.0 * b.idle as f64 / cap),
    ]
}

fn main() {
    header(
        "fig6",
        "cycle breakdown vs contexts (TATP, % of context-cycle capacity)",
        &["engine", "contexts", "tpmc", "compute", "mem_stall", "spin", "switch", "idle"],
    );
    let conv = EngineConfig::conventional_baseline();
    let scal = EngineConfig::scalable(64);
    for &contexts in &CONTEXT_SWEEP {
        row(&breakdown_row("conventional", &conv, contexts));
    }
    println!();
    for &contexts in &CONTEXT_SWEEP {
        row(&breakdown_row("scalable", &scal, contexts));
    }
    println!(
        "\nexpected shape: conventional compute% collapses with contexts (spin/idle\n\
         take over as the lock-manager latches serialize); scalable compute% stays\n\
         near its single-context level."
    );
}
