//! fig6_breakdown — where the cycles go as contexts grow.
//!
//! The keynote's diagnosis, rendered entirely through the shared
//! observability layer (`esdb-obs`) instead of this binary's former private
//! counters. Two sections, one vocabulary:
//!
//! 1. **Measured** — TPC-B on the real engine, sweeping worker threads;
//!    every number read from [`Database::obs_snapshot`] (the wait breakdown
//!    drives the share columns, the txn-latency histogram the p50/p99).
//! 2. **Modeled** — the same engine configurations on the deterministic CMP
//!    simulator, sweeping contexts past the host's core count; the sim's
//!    per-class wait cycles are converted by [`sim_wait_profile`] into the
//!    identical `WaitProfile` shape and printed by the same code.
//!
//! Claim 6 reads off section 2: under a serial log the log-wait share grows
//! with contexts (every insert funnels through the log-head lock); the
//! consolidation array holds it near zero. Section 1 shows the same
//! instrumentation live on the host — with one CPU, thread preemption makes
//! lock waits, not log-head queueing, the dominant measured class.
//!
//! Emits `BENCH_fig6.json` for the `bench_regress` snapshot pipeline:
//! measured cells contribute `engine_tps` (recorded for trajectory, not in
//! the default gate set — consolidated-log cells are bimodal under
//! single-vCPU preemption, see tab1_engine) and `log_wait_share`; sim cells
//! contribute `tpmc` (deterministic, gated) and `log_wait_share`. Env
//! knobs: FIG6_THREADS / FIG6_CONTEXTS (comma lists), FIG6_TXNS (per
//! thread), FIG6_REPS (best-of-N for the measured cells).

use esdb_bench::json::{write_bench_json, BenchRecord};
use esdb_bench::{header, row};
use esdb_core::config::LogChoice;
use esdb_core::{
    run_sim_workload, sim_wait_profile, Database, EngineConfig, ExecutionModel, SimRunConfig,
};
use esdb_obs::WaitProfile;
use esdb_workload::Tpcb;
use std::sync::Arc;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .map(|s| {
            s.split(',')
                .map(|d| d.trim().parse().unwrap_or_else(|_| panic!("{name}: integers")))
                .collect()
        })
        .unwrap_or_else(|_| default.to_vec())
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}

fn share(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        return 0.0;
    }
    part as f64 / whole as f64
}

fn shares(b: &WaitProfile) -> Vec<String> {
    let wall = b.wall();
    vec![
        pct(b.useful, wall),
        pct(b.lock_wait, wall),
        pct(b.latch_spin, wall),
        pct(b.log_wait, wall),
        pct(b.commit_flush, wall),
        pct(b.io_retry, wall),
    ]
}

fn cell(
    label: &str,
    log: LogChoice,
    threads: usize,
    txns: u64,
    reps: usize,
    records: &mut Vec<BenchRecord>,
) -> Vec<String> {
    // Best-of-N over identical request streams: keep the rep least perturbed
    // by scheduler noise, and report its obs snapshot so the shares describe
    // the same run as the throughput.
    let mut best: Option<(esdb_core::WorkloadReport, _)> = None;
    for _ in 0..reps.max(1) {
        let cfg = EngineConfig {
            execution: ExecutionModel::Conventional { lock_partitions: 16 },
            log,
            elr: false,
            ..EngineConfig::default()
        };
        let db = Arc::new(Database::open(cfg));
        // Branches scale with threads so data conflicts stay rare and the log
        // path — the variable under study — dominates the contention signal.
        let mut w = Tpcb::new((threads * 4).max(2) as u64, 42);
        db.load_population(&w).expect("population load");

        esdb_obs::global().reset();
        let report = db.run_workload(&mut w, threads, txns);
        let snap = db.obs_snapshot();
        if best.as_ref().map_or(true, |(b, _)| report.throughput() > b.throughput()) {
            best = Some((report, snap));
        }
    }
    let (report, snap) = best.expect("at least one rep");

    let config = format!("measured log={label} threads={threads}");
    records.push(BenchRecord {
        config: config.clone(),
        metric: "engine_tps".into(),
        value: report.throughput(),
        seed: 42,
    });
    records.push(BenchRecord {
        config,
        metric: "log_wait_share".into(),
        value: share(snap.breakdown.log_wait, snap.breakdown.wall()),
        seed: 42,
    });

    let lat = &snap.txn_latency;
    let mut out = vec![
        label.to_string(),
        threads.to_string(),
        format!("{:.0}", report.throughput()),
    ];
    out.extend(shares(&snap.breakdown));
    out.push(format!("{:.0}", lat.p50() as f64 / 1_000.0));
    out.push(format!("{:.0}", lat.p99() as f64 / 1_000.0));
    out
}

fn sim_cell(
    label: &str,
    log: LogChoice,
    contexts: usize,
    records: &mut Vec<BenchRecord>,
) -> Vec<String> {
    // Partition execution away (DORA) so the log is the only shared
    // structure — the isolation the keynote's figure 6 argues from.
    let cfg = EngineConfig {
        execution: ExecutionModel::Dora { partitions: 64 },
        log,
        elr: false,
        ..EngineConfig::default()
    };
    let mut w = Tpcb::new(1024, 11);
    let r = run_sim_workload(&mut w, &cfg, &SimRunConfig::at_contexts(contexts));
    let profile = sim_wait_profile(&r);

    let config = format!("sim log={label} contexts={contexts}");
    records.push(BenchRecord {
        config: config.clone(),
        metric: "tpmc".into(),
        value: r.tpmc(),
        seed: 11,
    });
    records.push(BenchRecord {
        config,
        metric: "log_wait_share".into(),
        value: share(profile.log_wait, profile.wall()),
        seed: 11,
    });

    let mut out = vec![
        label.to_string(),
        contexts.to_string(),
        format!("{:.0}", r.tpmc()),
    ];
    out.extend(shares(&profile));
    out
}

fn main() {
    if !esdb_obs::enabled() {
        eprintln!("fig6: built with obs_disabled — no breakdown to report");
        return;
    }
    let thread_sweep = env_list("FIG6_THREADS", &[1, 2, 4, 8]);
    let context_sweep = env_list("FIG6_CONTEXTS", &[2, 4, 8, 16, 32, 64]);
    let txns: u64 = std::env::var("FIG6_TXNS")
        .map(|s| s.parse().expect("FIG6_TXNS: integer"))
        .unwrap_or(300);
    let reps: usize = std::env::var("FIG6_REPS")
        .map(|s| s.parse().expect("FIG6_REPS: integer"))
        .unwrap_or(3);
    let mut records = Vec::new();
    header(
        "fig6a",
        "measured wait breakdown vs threads (TPC-B, conventional engine, % of accounted wall)",
        &[
            "log", "threads", "tps", "useful", "lock", "latch", "log_wait", "flush", "io",
            "p50us", "p99us",
        ],
    );
    for &threads in &thread_sweep {
        row(&cell("serial", LogChoice::Serial, threads, txns, reps, &mut records));
    }
    println!();
    for &threads in &thread_sweep {
        row(&cell("consolidated", LogChoice::Consolidated, threads, txns, reps, &mut records));
    }

    println!();
    header(
        "fig6b",
        "modeled wait breakdown vs contexts (TPC-B on CMP sim, DORA-64, % of accounted cycles)",
        &["log", "contexts", "tpmc", "useful", "lock", "latch", "log_wait", "flush", "io"],
    );
    for &contexts in &context_sweep {
        row(&sim_cell("serial", LogChoice::Serial, contexts, &mut records));
    }
    println!();
    for &contexts in &context_sweep {
        row(&sim_cell("consolidated", LogChoice::Consolidated, contexts, &mut records));
    }
    let path = write_bench_json("fig6", &records).expect("write BENCH_fig6.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nexpected shape (keynote fig. 6, asserted by the claim6 test in\n\
         esdb-core::simbridge): the serial log_wait share grows with contexts as\n\
         every insert funnels through the log-head lock; the consolidation array\n\
         holds it near zero and the useful share stays roughly flat."
    );
}
