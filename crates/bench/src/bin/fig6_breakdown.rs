//! fig6_breakdown — where the cycles go as contexts grow.
//!
//! The keynote's diagnosis, rendered entirely through the shared
//! observability layer (`esdb-obs`) instead of this binary's former private
//! counters. Two sections, one vocabulary:
//!
//! 1. **Measured** — TPC-B on the real engine, sweeping worker threads;
//!    every number read from [`Database::obs_snapshot`] (the wait breakdown
//!    drives the share columns, the txn-latency histogram the p50/p99).
//! 2. **Modeled** — the same engine configurations on the deterministic CMP
//!    simulator, sweeping contexts past the host's core count; the sim's
//!    per-class wait cycles are converted by [`sim_wait_profile`] into the
//!    identical `WaitProfile` shape and printed by the same code.
//!
//! Claim 6 reads off section 2: under a serial log the log-wait share grows
//! with contexts (every insert funnels through the log-head lock); the
//! consolidation array holds it near zero. Section 1 shows the same
//! instrumentation live on the host — with one CPU, thread preemption makes
//! lock waits, not log-head queueing, the dominant measured class.

use esdb_bench::{header, row};
use esdb_core::config::LogChoice;
use esdb_core::{
    run_sim_workload, sim_wait_profile, Database, EngineConfig, ExecutionModel, SimRunConfig,
};
use esdb_obs::WaitProfile;
use esdb_workload::Tpcb;
use std::sync::Arc;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const CONTEXT_SWEEP: [usize; 6] = [2, 4, 8, 16, 32, 64];
const TXNS_PER_THREAD: u64 = 300;

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}

fn shares(b: &WaitProfile) -> Vec<String> {
    let wall = b.wall();
    vec![
        pct(b.useful, wall),
        pct(b.lock_wait, wall),
        pct(b.latch_spin, wall),
        pct(b.log_wait, wall),
        pct(b.commit_flush, wall),
        pct(b.io_retry, wall),
    ]
}

fn cell(label: &str, log: LogChoice, threads: usize) -> Vec<String> {
    let cfg = EngineConfig {
        execution: ExecutionModel::Conventional { lock_partitions: 16 },
        log,
        elr: false,
        ..EngineConfig::default()
    };
    let db = Arc::new(Database::open(cfg));
    // Branches scale with threads so data conflicts stay rare and the log
    // path — the variable under study — dominates the contention signal.
    let mut w = Tpcb::new((threads * 4).max(2) as u64, 42);
    db.load_population(&w).expect("population load");

    esdb_obs::global().reset();
    let report = db.run_workload(&mut w, threads, TXNS_PER_THREAD);
    let snap = db.obs_snapshot();

    let lat = &snap.txn_latency;
    let mut out = vec![
        label.to_string(),
        threads.to_string(),
        format!("{:.0}", report.throughput()),
    ];
    out.extend(shares(&snap.breakdown));
    out.push(format!("{:.0}", lat.p50() as f64 / 1_000.0));
    out.push(format!("{:.0}", lat.p99() as f64 / 1_000.0));
    out
}

fn sim_cell(label: &str, log: LogChoice, contexts: usize) -> Vec<String> {
    // Partition execution away (DORA) so the log is the only shared
    // structure — the isolation the keynote's figure 6 argues from.
    let cfg = EngineConfig {
        execution: ExecutionModel::Dora { partitions: 64 },
        log,
        elr: false,
        ..EngineConfig::default()
    };
    let mut w = Tpcb::new(1024, 11);
    let r = run_sim_workload(&mut w, &cfg, &SimRunConfig::at_contexts(contexts));
    let mut out = vec![
        label.to_string(),
        contexts.to_string(),
        format!("{:.0}", r.tpmc()),
    ];
    out.extend(shares(&sim_wait_profile(&r)));
    out
}

fn main() {
    if !esdb_obs::enabled() {
        eprintln!("fig6: built with obs_disabled — no breakdown to report");
        return;
    }
    header(
        "fig6a",
        "measured wait breakdown vs threads (TPC-B, conventional engine, % of accounted wall)",
        &[
            "log", "threads", "tps", "useful", "lock", "latch", "log_wait", "flush", "io",
            "p50us", "p99us",
        ],
    );
    for &threads in &THREAD_SWEEP {
        row(&cell("serial", LogChoice::Serial, threads));
    }
    println!();
    for &threads in &THREAD_SWEEP {
        row(&cell("consolidated", LogChoice::Consolidated, threads));
    }

    println!();
    header(
        "fig6b",
        "modeled wait breakdown vs contexts (TPC-B on CMP sim, DORA-64, % of accounted cycles)",
        &["log", "contexts", "tpmc", "useful", "lock", "latch", "log_wait", "flush", "io"],
    );
    for &contexts in &CONTEXT_SWEEP {
        row(&sim_cell("serial", LogChoice::Serial, contexts));
    }
    println!();
    for &contexts in &CONTEXT_SWEEP {
        row(&sim_cell("consolidated", LogChoice::Consolidated, contexts));
    }
    println!(
        "\nexpected shape (keynote fig. 6, asserted by the claim6 test in\n\
         esdb-core::simbridge): the serial log_wait share grows with contexts as\n\
         every insert funnels through the log-head lock; the consolidation array\n\
         holds it near zero and the useful share stays roughly flat."
    );
}
