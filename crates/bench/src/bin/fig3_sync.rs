//! fig3_sync — spinning vs blocking critical sections.
//!
//! Claim: *"spinning wastes cycles, while blocking incurs high overhead"* —
//! which primitive wins depends on critical-section length and how
//! oversubscribed the machine is.
//!
//! Simulated closed-loop clients contend on one lock; we sweep the critical
//! section length with (a) one task per context and (b) 4× oversubscription,
//! for spin, block, and hybrid policies. Plus a native microbench of the
//! real primitives on this host.

use esdb_bench::{header, median_secs, row};
use esdb_sim::dbmodel::critical_section_txn;
use esdb_sim::{ChipConfig, Simulation, WaitPolicy};
use esdb_sync::{BlockLock, HybridLock, McsLock, RawLock, TatasLock, TicketLock};
use std::sync::Arc;

fn sim_run(policy: WaitPolicy, cs: u64, contexts: usize, tasks: usize) -> f64 {
    let mut sim = Simulation::new(ChipConfig::with_contexts(contexts), policy, 0);
    for _ in 0..tasks {
        sim.add_task(move |_| critical_section_txn(1, cs, 4 * cs));
    }
    sim.run(5_000_000).tpmc()
}

/// Mixed scenario: 16 clients contend one lock while 48 independent clients
/// have pure compute available. A spinning waiter occupies a context that an
/// independent client could use; a blocking waiter frees it. Returns total
/// throughput (all clients).
fn sim_run_mixed(policy: WaitPolicy, cs: u64) -> f64 {
    let contexts = 16;
    let mut sim = Simulation::new(ChipConfig::with_contexts(contexts), policy, 0);
    for _ in 0..contexts {
        sim.add_task(move |_| critical_section_txn(1, cs, cs / 4 + 1));
    }
    for _ in 0..3 * contexts {
        sim.add_task(move |_| esdb_sim::Program::new().compute(2_000));
    }
    sim.run(5_000_000).tpmc()
}

fn sim_part() {
    header(
        "fig3a",
        "contended lock only: throughput vs CS length, 16 contexts, 1 task/context (txn/Mcycle)",
        &["cs_cycles", "spin", "block", "hybrid"],
    );
    for cs in [50u64, 200, 1_000, 5_000, 20_000, 100_000] {
        let contexts = 16;
        row(&[
            cs.to_string(),
            format!("{:.1}", sim_run(WaitPolicy::Spin, cs, contexts, contexts)),
            format!("{:.1}", sim_run(WaitPolicy::Block, cs, contexts, contexts)),
            format!("{:.1}", sim_run(WaitPolicy::DEFAULT_HYBRID, cs, contexts, contexts)),
        ]);
    }

    header(
        "fig3a2",
        "oversubscribed with independent work: total throughput (txn/Mcycle)",
        &["cs_cycles", "spin", "block", "hybrid"],
    );
    for cs in [200u64, 1_000, 5_000, 20_000, 100_000] {
        row(&[
            cs.to_string(),
            format!("{:.1}", sim_run_mixed(WaitPolicy::Spin, cs)),
            format!("{:.1}", sim_run_mixed(WaitPolicy::Block, cs)),
            format!("{:.1}", sim_run_mixed(WaitPolicy::DEFAULT_HYBRID, cs)),
        ]);
    }
}

fn native_part() {
    header(
        "fig3b",
        "native lock primitives: ops/s under 2 threads, short critical section",
        &["primitive", "Mops_per_s"],
    );
    // Deliberately small: on an oversubscribed (1-core) host, FIFO spin
    // locks convoy at scheduler-quantum granularity — itself a data point.
    const OPS: usize = 10_000;
    const THREADS: usize = 2;
    fn run<L: RawLock + 'static>(lock: L) -> f64 {
        let lock = Arc::new(lock);
        let secs = median_secs(1, || {
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let lock = Arc::clone(&lock);
                    s.spawn(move || {
                        for _ in 0..OPS {
                            lock.lock();
                            std::hint::black_box(0u64);
                            lock.unlock();
                        }
                    });
                }
            });
        });
        (THREADS * OPS) as f64 / secs / 1e6
    }
    row(&["tatas".into(), format!("{:.2}", run(TatasLock::new()))]);
    row(&["ticket".into(), format!("{:.2}", run(TicketLock::new()))]);
    row(&["mcs".into(), format!("{:.2}", run(McsLock::new()))]);
    row(&["block".into(), format!("{:.2}", run(BlockLock::new()))]);
    row(&["hybrid".into(), format!("{:.2}", run(HybridLock::new()))]);
}

fn main() {
    sim_part();
    native_part();
    println!(
        "\nexpected shape: with 1 task/context, spinning wins short CS and ties long\n\
         ones; oversubscribed, spinning collapses (waiters burn contexts the holder\n\
         needs) while blocking/hybrid keep the machine busy. Hybrid tracks the best\n\
         policy at both extremes — the keynote's recommendation."
    );
}
