//! fig1_scaling — the headline figure.
//!
//! Claim (keynote, citing the Shore-MT/DORA line): *"current parallelism
//! methods are of bounded utility as the number of processors per chip
//! increases exponentially"* — and decoupling data access from thread
//! assignment restores scalability.
//!
//! TATP (100k subscribers) on the CMP simulator, contexts 1→64:
//! the conventional engine (centralized lock manager + serial log), an
//! intermediate configuration (DORA + serial log), and the full scalable
//! stack (DORA + consolidated log + ELR).

use esdb_bench::{header, row, CONTEXT_SWEEP};
use esdb_core::config::LogChoice;
use esdb_core::{run_sim_workload, EngineConfig, ExecutionModel, SimRunConfig};
use esdb_workload::Tatp;

fn main() {
    // CI runs a reduced sweep: FIG1_CONTEXTS="1,4" FIG1_SUBSCRIBERS=1000.
    let contexts: Vec<usize> = std::env::var("FIG1_CONTEXTS")
        .map(|s| {
            s.split(',')
                .map(|c| c.trim().parse().expect("FIG1_CONTEXTS: comma-separated integers"))
                .collect()
        })
        .unwrap_or_else(|_| CONTEXT_SWEEP.to_vec());
    let subscribers: u64 = std::env::var("FIG1_SUBSCRIBERS")
        .map(|s| s.parse().expect("FIG1_SUBSCRIBERS: integer"))
        .unwrap_or(100_000);
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("conventional", EngineConfig::conventional_baseline()),
        (
            "dora+serial-log",
            EngineConfig {
                execution: ExecutionModel::Dora { partitions: 64 },
                log: LogChoice::Serial,
                elr: false,
                ..EngineConfig::default()
            },
        ),
        ("dora+conslog+elr", EngineConfig::scalable(64)),
    ];

    header(
        "fig1",
        "TATP throughput vs hardware contexts (simulated CMP, txn/Mcycle)",
        &["contexts", "conventional", "dora+serial-log", "dora+conslog+elr", "conv_speedup", "scalable_speedup"],
    );

    let mut base: Vec<f64> = vec![0.0; configs.len()];
    let first = contexts.first().copied().unwrap_or(1);
    for &contexts in &contexts {
        let mut tpmcs = Vec::new();
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let mut w = Tatp::new(subscribers, 7);
            let r = run_sim_workload(&mut w, cfg, &SimRunConfig::at_contexts(contexts));
            let tpmc = r.tpmc();
            if contexts == first {
                base[i] = tpmc.max(1e-9);
            }
            tpmcs.push(tpmc);
        }
        row(&[
            contexts.to_string(),
            format!("{:.0}", tpmcs[0]),
            format!("{:.0}", tpmcs[1]),
            format!("{:.0}", tpmcs[2]),
            format!("{:.1}x", tpmcs[0] / base[0]),
            format!("{:.1}x", tpmcs[2] / base[2]),
        ]);
    }
    println!(
        "\nexpected shape: the conventional column flattens well before 64 contexts;\n\
         the scalable column keeps growing (bounded only by partitions/memory)."
    );
}
