//! fig1_scaling — the headline figure.
//!
//! Claim (keynote, citing the Shore-MT/DORA line): *"current parallelism
//! methods are of bounded utility as the number of processors per chip
//! increases exponentially"* — and decoupling data access from thread
//! assignment restores scalability.
//!
//! TATP (100k subscribers) on the CMP simulator, contexts 1→64:
//! the conventional engine (centralized lock manager + serial log), an
//! intermediate configuration (DORA + serial log), and the full scalable
//! stack (DORA + consolidated log + ELR).

use esdb_bench::{header, row, CONTEXT_SWEEP};
use esdb_core::config::LogChoice;
use esdb_core::{run_sim_workload, EngineConfig, ExecutionModel, SimRunConfig};
use esdb_workload::Tatp;

fn main() {
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("conventional", EngineConfig::conventional_baseline()),
        (
            "dora+serial-log",
            EngineConfig {
                execution: ExecutionModel::Dora { partitions: 64 },
                log: LogChoice::Serial,
                elr: false,
                ..EngineConfig::default()
            },
        ),
        ("dora+conslog+elr", EngineConfig::scalable(64)),
    ];

    header(
        "fig1",
        "TATP throughput vs hardware contexts (simulated CMP, txn/Mcycle)",
        &["contexts", "conventional", "dora+serial-log", "dora+conslog+elr", "conv_speedup", "scalable_speedup"],
    );

    let mut base: Vec<f64> = vec![0.0; configs.len()];
    for &contexts in &CONTEXT_SWEEP {
        let mut tpmcs = Vec::new();
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let mut w = Tatp::new(100_000, 7);
            let r = run_sim_workload(&mut w, cfg, &SimRunConfig::at_contexts(contexts));
            let tpmc = r.tpmc();
            if contexts == 1 {
                base[i] = tpmc.max(1e-9);
            }
            tpmcs.push(tpmc);
        }
        row(&[
            contexts.to_string(),
            format!("{:.0}", tpmcs[0]),
            format!("{:.0}", tpmcs[1]),
            format!("{:.0}", tpmcs[2]),
            format!("{:.1}x", tpmcs[0] / base[0]),
            format!("{:.1}x", tpmcs[2] / base[2]),
        ]);
    }
    println!(
        "\nexpected shape: the conventional column flattens well before 64 contexts;\n\
         the scalable column keeps growing (bounded only by partitions/memory)."
    );
}
