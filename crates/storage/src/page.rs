//! Slotted heap pages.
//!
//! Classic layout: a fixed header, a slot directory growing upward, and tuple
//! data growing downward from the end of the page. Deleted slots become
//! tombstones; their data space is reclaimed lazily by [`Page::compact`],
//! which runs automatically when an insert or update would otherwise fail.
//!
//! Every page carries a `page_lsn`, the LSN of the last log record that
//! modified it — the hook ARIES-style recovery needs to make redo idempotent.

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Header: lsn (8) + slot_count (2) + free_upper (2) + reserved (4).
const HEADER_SIZE: usize = 16;
/// Each slot directory entry: offset (2) + len (2).
const SLOT_SIZE: usize = 4;
/// Tombstone marker in a slot's offset field.
const TOMBSTONE: u16 = u16::MAX;

/// Largest payload a single page can store.
pub const MAX_TUPLE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// An 8 KiB slotted page.
pub struct Page {
    bytes: [u8; PAGE_SIZE],
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page { bytes: self.bytes }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// Creates an empty, formatted page.
    pub fn new() -> Self {
        let mut p = Page { bytes: [0u8; PAGE_SIZE] };
        p.set_free_upper(PAGE_SIZE as u16);
        p
    }

    /// Raw byte access (for the page store).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Mutable raw byte access (for the page store).
    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// LSN of the last log record applied to this page.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.bytes[0..8].try_into().unwrap())
    }

    /// Stamps the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.bytes[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slot directory entries (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(8)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.write_u16(8, n);
    }

    fn free_upper(&self) -> u16 {
        self.read_u16(10)
    }

    fn set_free_upper(&mut self, v: u16) {
        self.write_u16(10, v);
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        (self.read_u16(base), self.read_u16(base + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        self.write_u16(base, offset);
        self.write_u16(base + 2, len);
    }

    /// Contiguous free bytes between the slot directory and the data heap.
    pub fn free_space(&self) -> usize {
        let lower = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        self.free_upper() as usize - lower
    }

    /// Bytes that would be free after compaction (counts dead tuple space).
    pub fn reclaimable_space(&self) -> usize {
        let live: usize = self.live_slots().map(|(_, d)| d.len()).sum();
        let lower = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        PAGE_SIZE - lower - live
    }

    /// Returns `true` if a tuple of `len` bytes fits (possibly after
    /// compaction), assuming it may need a fresh slot entry.
    pub fn fits(&self, len: usize) -> bool {
        self.reclaimable_space() >= len + SLOT_SIZE
    }

    /// Inserts a tuple, compacting if fragmentation requires it. Returns the
    /// slot index, or `None` if the page genuinely lacks space.
    pub fn insert(&mut self, data: &[u8]) -> Option<u16> {
        if data.len() > MAX_TUPLE {
            return None;
        }
        // Reuse a tombstoned slot entry if one exists, else append one.
        let slot = (0..self.slot_count())
            .find(|&s| self.slot_entry(s).0 == TOMBSTONE)
            .unwrap_or_else(|| self.slot_count());
        let need_new_slot = slot == self.slot_count();
        let slot_cost = if need_new_slot { SLOT_SIZE } else { 0 };

        if self.free_space() < data.len() + slot_cost {
            if self.reclaimable_space() < data.len() + slot_cost {
                return None;
            }
            self.compact();
        }
        if need_new_slot {
            self.set_slot_count(slot + 1);
        }
        let new_upper = self.free_upper() as usize - data.len();
        self.bytes[new_upper..new_upper + data.len()].copy_from_slice(data);
        self.set_free_upper(new_upper as u16);
        self.set_slot_entry(slot, new_upper as u16, data.len() as u16);
        Some(slot)
    }

    /// Places `data` into a *specific* slot (recovery redo must be
    /// slot-exact regardless of replay order). Extends the slot directory
    /// with tombstones if needed. Fails only if the slot is live with
    /// different content or space is exhausted.
    pub fn insert_at_slot(&mut self, slot: u16, data: &[u8]) -> bool {
        if data.len() > MAX_TUPLE {
            return false;
        }
        if self.get(slot) == Some(data) {
            return true; // already applied
        }
        if self.get(slot).is_some() {
            return false; // live with different content
        }
        let new_slots = (slot as usize + 1).saturating_sub(self.slot_count() as usize);
        let need = data.len() + new_slots * SLOT_SIZE;
        if self.free_space() < need {
            if self.reclaimable_space() < need {
                return false;
            }
            self.compact();
        }
        if new_slots > 0 {
            let old = self.slot_count();
            self.set_slot_count(slot + 1);
            for s in old..slot {
                self.set_slot_entry(s, TOMBSTONE, 0);
            }
        }
        let new_upper = self.free_upper() as usize - data.len();
        self.bytes[new_upper..new_upper + data.len()].copy_from_slice(data);
        self.set_free_upper(new_upper as u16);
        self.set_slot_entry(slot, new_upper as u16, data.len() as u16);
        true
    }

    /// Reads the tuple in `slot`, if live.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.bytes[off as usize..off as usize + len as usize])
    }

    /// Overwrites the tuple in `slot`. Grows via fresh allocation (compacting
    /// if needed). Returns `false` if the slot is dead or space ran out.
    pub fn update(&mut self, slot: u16, data: &[u8]) -> bool {
        if slot >= self.slot_count() || data.len() > MAX_TUPLE {
            return false;
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE {
            return false;
        }
        if data.len() <= len as usize {
            // Shrinking or same size: overwrite in place.
            let off = off as usize;
            self.bytes[off..off + data.len()].copy_from_slice(data);
            self.set_slot_entry(slot, off as u16, data.len() as u16);
            return true;
        }
        // Growing: tombstone first so compaction can reclaim the old copy.
        self.set_slot_entry(slot, TOMBSTONE, 0);
        if self.free_space() < data.len() {
            if self.reclaimable_space() < data.len() {
                // Roll back the tombstone; the caller's data is untouched.
                self.set_slot_entry(slot, off, len);
                return false;
            }
            self.compact();
        }
        let new_upper = self.free_upper() as usize - data.len();
        self.bytes[new_upper..new_upper + data.len()].copy_from_slice(data);
        self.set_free_upper(new_upper as u16);
        self.set_slot_entry(slot, new_upper as u16, data.len() as u16);
        true
    }

    /// Tombstones `slot`, returning the old tuple bytes.
    pub fn delete(&mut self, slot: u16) -> Option<Vec<u8>> {
        let old = self.get(slot)?.to_vec();
        self.set_slot_entry(slot, TOMBSTONE, 0);
        Some(old)
    }

    /// Iterator over `(slot, tuple)` pairs for live slots.
    pub fn live_slots(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|d| (s, d)))
    }

    /// Rewrites the data heap contiguously, dropping dead tuple space.
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> = self
            .live_slots()
            .map(|(s, d)| (s, d.to_vec()))
            .collect();
        let mut upper = PAGE_SIZE;
        for (slot, data) in live {
            upper -= data.len();
            self.bytes[upper..upper + data.len()].copy_from_slice(&data);
            self.set_slot_entry(slot, upper as u16, data.len() as u16);
        }
        self.set_free_upper(upper as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_roundtrips() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_tombstones_and_slot_is_reused() {
        let mut p = Page::new();
        let s0 = p.insert(b"aaaa").unwrap();
        let _s1 = p.insert(b"bbbb").unwrap();
        assert_eq!(p.delete(s0).unwrap(), b"aaaa");
        assert!(p.get(s0).is_none());
        let s2 = p.insert(b"cccc").unwrap();
        assert_eq!(s2, s0, "tombstoned slot entry should be reused");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn update_in_place_and_growing() {
        let mut p = Page::new();
        let s = p.insert(b"12345678").unwrap();
        assert!(p.update(s, b"abcd"));
        assert_eq!(p.get(s).unwrap(), b"abcd");
        assert!(p.update(s, b"a much longer tuple than before"));
        assert_eq!(p.get(s).unwrap(), b"a much longer tuple than before");
    }

    #[test]
    fn page_fills_and_rejects_then_compaction_recovers() {
        let mut p = Page::new();
        let tuple = [7u8; 100];
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&tuple) {
            slots.push(s);
        }
        assert!(p.free_space() < tuple.len() + SLOT_SIZE);
        // Delete half the tuples; space is fragmented but reclaimable.
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        // Inserts succeed again via slot reuse + compaction.
        let mut recovered = 0;
        while p.insert(&tuple).is_some() {
            recovered += 1;
            if recovered > slots.len() {
                break;
            }
        }
        assert!(recovered >= slots.len() / 2);
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; MAX_TUPLE + 1]).is_none());
        assert!(p.insert(&vec![1u8; MAX_TUPLE]).is_some());
    }

    #[test]
    fn lsn_roundtrip() {
        let mut p = Page::new();
        assert_eq!(p.lsn(), 0);
        p.set_lsn(0xDEAD_BEEF);
        assert_eq!(p.lsn(), 0xDEAD_BEEF);
    }

    #[test]
    fn live_slots_skips_tombstones() {
        let mut p = Page::new();
        let s0 = p.insert(b"x").unwrap();
        let s1 = p.insert(b"y").unwrap();
        let _s2 = p.insert(b"z").unwrap();
        p.delete(s1);
        let live: Vec<u16> = p.live_slots().map(|(s, _)| s).collect();
        assert_eq!(live, vec![s0, 2]);
    }

    #[test]
    fn compact_preserves_content() {
        let mut p = Page::new();
        let s0 = p.insert(b"first").unwrap();
        let s1 = p.insert(b"second").unwrap();
        let s2 = p.insert(b"third").unwrap();
        p.delete(s1);
        let before_free = p.free_space();
        p.compact();
        assert!(p.free_space() > before_free);
        assert_eq!(p.get(s0).unwrap(), b"first");
        assert_eq!(p.get(s2).unwrap(), b"third");
        assert!(p.get(s1).is_none());
    }

    #[test]
    fn update_dead_slot_fails() {
        let mut p = Page::new();
        let s = p.insert(b"x").unwrap();
        p.delete(s);
        assert!(!p.update(s, b"y"));
        assert!(!p.update(99, b"y"));
    }

    #[test]
    fn failed_grow_update_preserves_old_tuple() {
        let mut p = Page::new();
        // Fill the page almost completely with one big tuple plus a small one.
        let s_small = p.insert(b"small").unwrap();
        let big = vec![3u8; p.free_space() - SLOT_SIZE - 16];
        let _s_big = p.insert(&big).unwrap();
        // Growing the small tuple beyond available space must fail cleanly.
        let huge = vec![9u8; MAX_TUPLE];
        assert!(!p.update(s_small, &huge));
        assert_eq!(p.get(s_small).unwrap(), b"small");
    }
}
