//! Minimal schema/catalog types and tuple encoding.
//!
//! Tuples are fixed-arity rows of `i64` columns. This deliberately spartan
//! model covers the OLTP benchmarks the keynote's line of work evaluates on
//! (TATP, TPC-C-style mixes reduce to integer keys, counters, and balances)
//! while keeping the tuple codec a trivially fast, fixed-width copy — the
//! storage manager, not the codec, should be what experiments measure.

use crate::StorageError;

/// Identifier of a table in the catalog.
pub type TableId = u32;

/// Identifier of a secondary index within its table.
pub type IndexId = u32;

/// Physical shape of a secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Partitioned hash index: equality lookups only.
    Hash,
    /// Ordered index: equality and range lookups.
    Range,
}

impl IndexKind {
    /// Stable wire/catalog encoding of the kind.
    pub fn as_u8(self) -> u8 {
        match self {
            IndexKind::Hash => 0,
            IndexKind::Range => 1,
        }
    }

    /// Inverse of [`IndexKind::as_u8`]; `None` on unknown codes.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(IndexKind::Hash),
            1 => Some(IndexKind::Range),
            _ => None,
        }
    }
}

/// Declaration of one secondary index over a single `i64` column.
///
/// Index declarations live in the table's [`Schema`] so they travel with the
/// catalog: through checkpoints, crash recovery, and replica snapshots. The
/// indexed column is identified by its position in the row (`col`), never by
/// the primary key (which already has the table's B+tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index id, unique within the table.
    pub id: IndexId,
    /// Human-readable index name.
    pub name: String,
    /// Indexed column position (0-based, into the row's columns).
    pub col: usize,
    /// Physical shape.
    pub kind: IndexKind,
}

/// Description of one table: a name, a column count, and any secondary
/// index declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Table id.
    pub id: TableId,
    /// Human-readable table name.
    pub name: String,
    /// Number of `i64` columns (excluding the primary key).
    pub arity: usize,
    /// Secondary indexes declared over this table's columns.
    pub indexes: Vec<IndexDef>,
}

impl Schema {
    /// Creates a schema with no secondary indexes.
    pub fn new(id: TableId, name: impl Into<String>, arity: usize) -> Self {
        Schema {
            id,
            name: name.into(),
            arity,
            indexes: Vec::new(),
        }
    }

    /// Creates a schema carrying secondary index declarations.
    pub fn with_indexes(
        id: TableId,
        name: impl Into<String>,
        arity: usize,
        indexes: Vec<IndexDef>,
    ) -> Self {
        Schema {
            id,
            name: name.into(),
            arity,
            indexes,
        }
    }

    /// Encoded byte width of one row: 8-byte key + 8 bytes per column.
    pub fn row_width(&self) -> usize {
        8 + 8 * self.arity
    }
}

/// Encodes `key` and `row` into the on-page byte representation.
pub fn encode_row(key: u64, row: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * row.len());
    out.extend_from_slice(&key.to_le_bytes());
    for v in row {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a row produced by [`encode_row`]. Returns `(key, columns)`.
///
/// On-page rows are only ever written by [`encode_row`], so a slice that is
/// shorter than a key or not a multiple of 8 bytes is corruption — reported
/// as [`StorageError::CorruptRow`] rather than aborting the process, so a bad
/// heap page degrades to a failed operation.
pub fn decode_row(bytes: &[u8]) -> crate::Result<(u64, Vec<i64>)> {
    if bytes.len() < 8 || !bytes.len().is_multiple_of(8) {
        return Err(StorageError::CorruptRow { len: bytes.len() });
    }
    let key = u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice"));
    let row = bytes[8..]
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    Ok((key, row))
}

/// Decodes only the key of an encoded row.
pub fn decode_key(bytes: &[u8]) -> crate::Result<u64> {
    let head: [u8; 8] = bytes
        .get(0..8)
        .and_then(|s| s.try_into().ok())
        .ok_or(StorageError::CorruptRow { len: bytes.len() })?;
    Ok(u64::from_le_bytes(head))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let row = vec![1, -2, i64::MAX, i64::MIN];
        let bytes = encode_row(42, &row);
        assert_eq!(bytes.len(), 8 + 32);
        let (key, decoded) = decode_row(&bytes).unwrap();
        assert_eq!(key, 42);
        assert_eq!(decoded, row);
        assert_eq!(decode_key(&bytes).unwrap(), 42);
    }

    #[test]
    fn empty_row_is_just_a_key() {
        let bytes = encode_row(7, &[]);
        assert_eq!(decode_row(&bytes).unwrap(), (7, vec![]));
    }

    #[test]
    fn schema_row_width() {
        let s = Schema::new(1, "t", 3);
        assert_eq!(s.row_width(), 32);
        assert_eq!(s.name, "t");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            decode_row(&[1, 2, 3]).unwrap_err(),
            StorageError::CorruptRow { len: 3 }
        );
        assert_eq!(
            decode_key(&[1, 2, 3]).unwrap_err(),
            StorageError::CorruptRow { len: 3 }
        );
        // Multiple of 8 but shorter than a key.
        assert_eq!(
            decode_row(&[]).unwrap_err(),
            StorageError::CorruptRow { len: 0 }
        );
    }
}
