//! Page and record identifiers.

/// Identifier of a page within the page store.
pub type PageId = u64;

/// A record identifier: page + slot, the physical address of a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the tuple.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

impl Rid {
    /// Creates a record id.
    pub const fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Packs the rid into a single `u64` (for storing rids as index values).
    ///
    /// The page id is truncated to 48 bits, which bounds the database at
    /// 2^48 pages (2 exabytes at 8 KiB pages) — comfortably beyond any
    /// workload this crate will see.
    pub fn to_u64(self) -> u64 {
        debug_assert!(self.page < (1 << 48), "page id exceeds 48 bits");
        (self.page << 16) | self.slot as u64
    }

    /// Inverse of [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        Rid {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for (page, slot) in [(0u64, 0u16), (1, 5), (123_456, u16::MAX), ((1 << 48) - 1, 7)] {
            let rid = Rid::new(page, slot);
            assert_eq!(Rid::from_u64(rid.to_u64()), rid);
        }
    }

    #[test]
    fn ordering_is_page_major() {
        assert!(Rid::new(1, 9) < Rid::new(2, 0));
        assert!(Rid::new(1, 0) < Rid::new(1, 1));
    }
}
