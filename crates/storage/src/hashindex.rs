//! Partitioned hash index.
//!
//! A flat `u64 → u64` map split into many independently latched partitions.
//! This is the index shape DORA uses for its thread-local structures, and it
//! doubles as an experiment substrate: with one partition it behaves like a
//! centralized, globally latched structure; with many, contention vanishes —
//! a miniature of the keynote's centralized-vs-distributed argument.

use esdb_sync::RwLatch;
use std::collections::HashMap;

/// Fibonacci-style multiplicative hash spreading sequential keys.
#[inline]
pub(crate) fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

struct Partition {
    latch: RwLatch,
    map: std::cell::UnsafeCell<HashMap<u64, u64>>,
}

unsafe impl Send for Partition {}
unsafe impl Sync for Partition {}

/// A hash map partitioned across independently latched shards.
pub struct HashIndex {
    partitions: Vec<Partition>,
    mask: u64,
}

impl HashIndex {
    /// Creates an index with `partitions` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(partitions: usize) -> Self {
        let n = partitions.max(1).next_power_of_two();
        HashIndex {
            partitions: (0..n)
                .map(|_| Partition {
                    latch: RwLatch::new(),
                    map: std::cell::UnsafeCell::new(HashMap::new()),
                })
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn shard(&self, key: u64) -> &Partition {
        &self.partitions[(spread(key) & self.mask) as usize]
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        let p = self.shard(key);
        p.latch.lock_exclusive();
        let old = unsafe { &mut *p.map.get() }.insert(key, value);
        p.latch.unlock_exclusive();
        old
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        let p = self.shard(key);
        p.latch.lock_shared();
        let v = unsafe { &*p.map.get() }.get(&key).copied();
        p.latch.unlock_shared();
        v
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let p = self.shard(key);
        p.latch.lock_exclusive();
        let v = unsafe { &mut *p.map.get() }.remove(&key);
        p.latch.unlock_exclusive();
        v
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.latch.lock_shared();
                let n = unsafe { &*p.map.get() }.len();
                p.latch.unlock_shared();
                n
            })
            .sum()
    }

    /// Returns `true` if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct MultiPartition {
    latch: RwLatch,
    map: std::cell::UnsafeCell<HashMap<i64, std::collections::BTreeSet<u64>>>,
}

unsafe impl Send for MultiPartition {}
unsafe impl Sync for MultiPartition {}

/// A partitioned multimap from column values to primary-key sets — the
/// substrate secondary hash indexes are built on.
///
/// Operations have set semantics (`add`/`remove` of a `(value, pk)` pair are
/// idempotent), which is what makes index maintenance through WAL redo safe
/// to replay: re-applying a prefix of the log after a crash converges to the
/// same contents instead of double-counting.
pub struct HashMultiIndex {
    partitions: Vec<MultiPartition>,
    mask: u64,
}

impl HashMultiIndex {
    /// Creates a multimap with `partitions` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(partitions: usize) -> Self {
        let n = partitions.max(1).next_power_of_two();
        HashMultiIndex {
            partitions: (0..n)
                .map(|_| MultiPartition {
                    latch: RwLatch::new(),
                    map: std::cell::UnsafeCell::new(HashMap::new()),
                })
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    fn shard(&self, value: i64) -> &MultiPartition {
        &self.partitions[(spread(value as u64) & self.mask) as usize]
    }

    /// Adds `(value, pk)`. Idempotent: returns `false` if already present.
    pub fn add(&self, value: i64, pk: u64) -> bool {
        let p = self.shard(value);
        p.latch.lock_exclusive();
        let fresh = unsafe { &mut *p.map.get() }.entry(value).or_default().insert(pk);
        p.latch.unlock_exclusive();
        fresh
    }

    /// Removes `(value, pk)`. Idempotent: returns `false` if absent.
    pub fn remove(&self, value: i64, pk: u64) -> bool {
        let p = self.shard(value);
        p.latch.lock_exclusive();
        let map = unsafe { &mut *p.map.get() };
        let hit = match map.get_mut(&value) {
            Some(set) => {
                let hit = set.remove(&pk);
                if set.is_empty() {
                    map.remove(&value);
                }
                hit
            }
            None => false,
        };
        p.latch.unlock_exclusive();
        hit
    }

    /// Primary keys indexed under `value`, in ascending order.
    pub fn get(&self, value: i64) -> Vec<u64> {
        let p = self.shard(value);
        p.latch.lock_shared();
        let pks = unsafe { &*p.map.get() }
            .get(&value)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        p.latch.unlock_shared();
        pks
    }

    /// Total `(value, pk)` pairs across all shards.
    pub fn len(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.latch.lock_shared();
                let n = unsafe { &*p.map.get() }.values().map(|s| s.len()).sum::<usize>();
                p.latch.unlock_shared();
                n
            })
            .sum()
    }

    /// Returns `true` if no pairs exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every `(value, sorted pks)` group, sorted by value — the canonical
    /// form torture tests compare for byte-identical convergence.
    pub fn entries(&self) -> Vec<(i64, Vec<u64>)> {
        let mut all: Vec<(i64, Vec<u64>)> = Vec::new();
        for p in &self.partitions {
            p.latch.lock_shared();
            for (v, set) in unsafe { &*p.map.get() }.iter() {
                all.push((*v, set.iter().copied().collect()));
            }
            p.latch.unlock_shared();
        }
        all.sort_unstable_by_key(|(v, _)| *v);
        all
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for p in &self.partitions {
            p.latch.lock_exclusive();
            unsafe { &mut *p.map.get() }.clear();
            p.latch.unlock_exclusive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_crud() {
        let idx = HashIndex::new(8);
        assert_eq!(idx.insert(1, 10), None);
        assert_eq!(idx.insert(1, 11), Some(10));
        assert_eq!(idx.get(1), Some(11));
        assert_eq!(idx.remove(1), Some(11));
        assert_eq!(idx.get(1), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn partition_count_rounds_to_power_of_two() {
        assert_eq!(HashIndex::new(0).partition_count(), 1);
        assert_eq!(HashIndex::new(3).partition_count(), 4);
        assert_eq!(HashIndex::new(16).partition_count(), 16);
    }

    #[test]
    fn keys_distribute_across_partitions() {
        let idx = HashIndex::new(16);
        for k in 0..1_000 {
            idx.insert(k, k);
        }
        assert_eq!(idx.len(), 1_000);
        // Sequential keys must not all land in one shard.
        let occupied = idx
            .partitions
            .iter()
            .filter(|p| {
                p.latch.lock_shared();
                let n = unsafe { &*p.map.get() }.len();
                p.latch.unlock_shared();
                n > 0
            })
            .count();
        assert!(occupied >= 12, "only {occupied}/16 shards used");
    }

    #[test]
    fn concurrent_inserts_land() {
        let idx = Arc::new(HashIndex::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for k in 0..1_000u64 {
                    idx.insert(t * 10_000 + k, k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 4_000);
        assert_eq!(idx.get(30_500), Some(500));
    }

    #[test]
    fn multi_index_set_semantics() {
        let idx = HashMultiIndex::new(4);
        assert!(idx.add(-5, 1));
        assert!(!idx.add(-5, 1), "re-add must be a no-op");
        assert!(idx.add(-5, 2));
        assert!(idx.add(7, 1));
        assert_eq!(idx.get(-5), vec![1, 2]);
        assert_eq!(idx.len(), 3);
        assert!(idx.remove(-5, 1));
        assert!(!idx.remove(-5, 1), "re-remove must be a no-op");
        assert_eq!(idx.get(-5), vec![2]);
        assert_eq!(idx.entries(), vec![(-5, vec![2]), (7, vec![1])]);
        idx.clear();
        assert!(idx.is_empty());
    }
}
