//! Page store abstraction.
//!
//! The engine is main-memory-oriented (like Shore-MT configured with a
//! memory-resident buffer pool), but the buffer pool still talks to a
//! [`PageStore`] so that eviction, write-back, and recovery exercise real
//! code paths. [`InMemoryDisk`] is the standard implementation; it can inject
//! a fixed per-I/O latency to model slower devices in experiments.

use crate::page::Page;
use crate::rid::PageId;
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A flat array of pages with explicit allocation.
pub trait PageStore: Send + Sync {
    /// Allocates a fresh, zeroed page and returns its id.
    fn allocate(&self) -> PageId;
    /// Copies page `id` into `out`.
    fn read(&self, id: PageId, out: &mut Page) -> Result<()>;
    /// Persists `page` as page `id`.
    fn write(&self, id: PageId, page: &Page) -> Result<()>;
    /// Persists a batch of pages in one submission — the `pwritev` shape:
    /// one device round trip amortized over every page in the batch. The
    /// default implementation degrades to per-page writes, so fault-injecting
    /// stores keep their per-page error model untouched. A failed batch may
    /// have persisted a prefix; callers retry the whole batch (rewriting a
    /// full page image is idempotent).
    fn write_batch(&self, batch: &[(PageId, &Page)]) -> Result<()> {
        for (id, page) in batch {
            self.write(*id, page)?;
        }
        Ok(())
    }
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// Counters describing page store traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Vectored submissions ([`PageStore::write_batch`] calls that took the
    /// batched path). `writes / batch_writes` is the pages-per-submission
    /// amortization a reactor tick achieves.
    pub batch_writes: u64,
}

/// A heap-resident page store with optional injected latency.
pub struct InMemoryDisk {
    pages: Mutex<Vec<Box<Page>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    batch_writes: AtomicU64,
    latency: Option<Duration>,
}

impl Default for InMemoryDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryDisk {
    /// Creates an empty store with zero-latency I/O.
    pub fn new() -> Self {
        InMemoryDisk {
            pages: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            batch_writes: AtomicU64::new(0),
            latency: None,
        }
    }

    /// Creates a store that busy-waits `latency` on every read and write,
    /// modelling a slow device for ELR/group-commit experiments.
    pub fn with_latency(latency: Duration) -> Self {
        InMemoryDisk {
            latency: Some(latency),
            ..Self::new()
        }
    }

    fn pay_latency(&self) {
        if let Some(lat) = self.latency {
            // Busy-wait: sleep granularity on most kernels is far coarser
            // than the microsecond-scale latencies experiments sweep.
            let start = std::time::Instant::now();
            while start.elapsed() < lat {
                std::hint::spin_loop();
            }
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            batch_writes: self.batch_writes.load(Ordering::Relaxed),
        }
    }
}

impl PageStore for InMemoryDisk {
    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        pages.push(Box::new(Page::new()));
        (pages.len() - 1) as PageId
    }

    fn read(&self, id: PageId, out: &mut Page) -> Result<()> {
        self.pay_latency();
        self.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        out.as_bytes_mut().copy_from_slice(page.as_bytes());
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.pay_latency();
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.lock();
        let dst = pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        dst.as_bytes_mut().copy_from_slice(page.as_bytes());
        Ok(())
    }

    /// The vectored path: one latency payment and one lock acquisition for
    /// the whole batch — the in-memory analogue of a single `pwritev`
    /// submission — instead of paying both per page.
    fn write_batch(&self, batch: &[(PageId, &Page)]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.pay_latency();
        self.batch_writes.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut pages = self.pages.lock();
        // Validate every target before copying any byte: a batch either
        // lands whole or reports the bad id without partial effects.
        for (id, _) in batch {
            if pages.get(*id as usize).is_none() {
                return Err(StorageError::PageNotFound(*id));
            }
        }
        for (id, page) in batch {
            pages[*id as usize].as_bytes_mut().copy_from_slice(page.as_bytes());
        }
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = InMemoryDisk::new();
        let id = disk.allocate();
        assert_eq!(id, 0);
        let mut page = Page::new();
        page.insert(b"persisted").unwrap();
        page.set_lsn(42);
        disk.write(id, &page).unwrap();

        let mut back = Page::new();
        disk.read(id, &mut back).unwrap();
        assert_eq!(back.get(0).unwrap(), b"persisted");
        assert_eq!(back.lsn(), 42);
    }

    #[test]
    fn missing_page_errors() {
        let disk = InMemoryDisk::new();
        let mut page = Page::new();
        assert_eq!(
            disk.read(5, &mut page).unwrap_err(),
            StorageError::PageNotFound(5)
        );
        assert_eq!(
            disk.write(5, &page).unwrap_err(),
            StorageError::PageNotFound(5)
        );
    }

    #[test]
    fn stats_count_traffic() {
        let disk = InMemoryDisk::new();
        let id = disk.allocate();
        let mut page = Page::new();
        disk.write(id, &page).unwrap();
        disk.read(id, &mut page).unwrap();
        disk.read(id, &mut page).unwrap();
        let s = disk.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(disk.num_pages(), 1);
    }

    #[test]
    fn write_batch_lands_whole_and_counts_once() {
        let disk = InMemoryDisk::new();
        let a = disk.allocate();
        let b = disk.allocate();
        let mut pa = Page::new();
        pa.insert(b"aa").unwrap();
        let mut pb = Page::new();
        pb.insert(b"bb").unwrap();
        disk.write_batch(&[(a, &pa), (b, &pb)]).unwrap();
        let s = disk.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.batch_writes, 1, "one vectored submission for the whole batch");
        let mut back = Page::new();
        disk.read(a, &mut back).unwrap();
        assert_eq!(back.get(0).unwrap(), b"aa");
        disk.read(b, &mut back).unwrap();
        assert_eq!(back.get(0).unwrap(), b"bb");
    }

    #[test]
    fn write_batch_validates_before_copying() {
        let disk = InMemoryDisk::new();
        let a = disk.allocate();
        let mut pa = Page::new();
        pa.insert(b"new").unwrap();
        let good = Page::new();
        disk.write(a, &good).unwrap();
        // Page 9 does not exist: the batch must fail without touching page a.
        assert_eq!(
            disk.write_batch(&[(a, &pa), (9, &good)]).unwrap_err(),
            StorageError::PageNotFound(9)
        );
        let mut back = Page::new();
        disk.read(a, &mut back).unwrap();
        assert_eq!(back.slot_count(), 0, "failed batch must not partially apply");
    }

    #[test]
    fn write_batch_latency_is_amortized() {
        let lat = Duration::from_micros(200);
        let disk = InMemoryDisk::with_latency(lat);
        let ids: Vec<_> = (0..8).map(|_| disk.allocate()).collect();
        let page = Page::new();
        let batch: Vec<_> = ids.iter().map(|&id| (id, &page)).collect();
        let start = std::time::Instant::now();
        disk.write_batch(&batch).unwrap();
        let spent = start.elapsed();
        assert!(spent >= lat, "one latency payment is still paid");
        assert!(spent < lat * 8, "but not one payment per page: {spent:?}");
    }

    #[test]
    fn latency_is_paid() {
        let disk = InMemoryDisk::with_latency(Duration::from_micros(200));
        let id = disk.allocate();
        let page = Page::new();
        let start = std::time::Instant::now();
        disk.write(id, &page).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(200));
    }
}
