//! Page store abstraction.
//!
//! The engine is main-memory-oriented (like Shore-MT configured with a
//! memory-resident buffer pool), but the buffer pool still talks to a
//! [`PageStore`] so that eviction, write-back, and recovery exercise real
//! code paths. [`InMemoryDisk`] is the standard implementation; it can inject
//! a fixed per-I/O latency to model slower devices in experiments.

use crate::page::Page;
use crate::rid::PageId;
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A flat array of pages with explicit allocation.
pub trait PageStore: Send + Sync {
    /// Allocates a fresh, zeroed page and returns its id.
    fn allocate(&self) -> PageId;
    /// Copies page `id` into `out`.
    fn read(&self, id: PageId, out: &mut Page) -> Result<()>;
    /// Persists `page` as page `id`.
    fn write(&self, id: PageId, page: &Page) -> Result<()>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// Counters describing page store traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
}

/// A heap-resident page store with optional injected latency.
pub struct InMemoryDisk {
    pages: Mutex<Vec<Box<Page>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    latency: Option<Duration>,
}

impl Default for InMemoryDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryDisk {
    /// Creates an empty store with zero-latency I/O.
    pub fn new() -> Self {
        InMemoryDisk {
            pages: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            latency: None,
        }
    }

    /// Creates a store that busy-waits `latency` on every read and write,
    /// modelling a slow device for ELR/group-commit experiments.
    pub fn with_latency(latency: Duration) -> Self {
        InMemoryDisk {
            latency: Some(latency),
            ..Self::new()
        }
    }

    fn pay_latency(&self) {
        if let Some(lat) = self.latency {
            // Busy-wait: sleep granularity on most kernels is far coarser
            // than the microsecond-scale latencies experiments sweep.
            let start = std::time::Instant::now();
            while start.elapsed() < lat {
                std::hint::spin_loop();
            }
        }
    }

    /// Traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

impl PageStore for InMemoryDisk {
    fn allocate(&self) -> PageId {
        let mut pages = self.pages.lock();
        pages.push(Box::new(Page::new()));
        (pages.len() - 1) as PageId
    }

    fn read(&self, id: PageId, out: &mut Page) -> Result<()> {
        self.pay_latency();
        self.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        out.as_bytes_mut().copy_from_slice(page.as_bytes());
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.pay_latency();
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.lock();
        let dst = pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        dst.as_bytes_mut().copy_from_slice(page.as_bytes());
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let disk = InMemoryDisk::new();
        let id = disk.allocate();
        assert_eq!(id, 0);
        let mut page = Page::new();
        page.insert(b"persisted").unwrap();
        page.set_lsn(42);
        disk.write(id, &page).unwrap();

        let mut back = Page::new();
        disk.read(id, &mut back).unwrap();
        assert_eq!(back.get(0).unwrap(), b"persisted");
        assert_eq!(back.lsn(), 42);
    }

    #[test]
    fn missing_page_errors() {
        let disk = InMemoryDisk::new();
        let mut page = Page::new();
        assert_eq!(
            disk.read(5, &mut page).unwrap_err(),
            StorageError::PageNotFound(5)
        );
        assert_eq!(
            disk.write(5, &page).unwrap_err(),
            StorageError::PageNotFound(5)
        );
    }

    #[test]
    fn stats_count_traffic() {
        let disk = InMemoryDisk::new();
        let id = disk.allocate();
        let mut page = Page::new();
        disk.write(id, &page).unwrap();
        disk.read(id, &mut page).unwrap();
        disk.read(id, &mut page).unwrap();
        let s = disk.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(disk.num_pages(), 1);
    }

    #[test]
    fn latency_is_paid() {
        let disk = InMemoryDisk::with_latency(Duration::from_micros(200));
        let id = disk.allocate();
        let page = Page::new();
        let start = std::time::Instant::now();
        disk.write(id, &page).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(200));
    }
}
