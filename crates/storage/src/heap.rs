//! Heap files: unordered collections of tuples in slotted pages.
//!
//! A heap file owns a list of page ids in the buffer pool's store and keeps a
//! cursor to the page most likely to have free space, so inserts are O(1) in
//! the common case. All mutating operations take the LSN of the log record
//! describing them and stamp it into the page header, which is what makes
//! redo idempotent during recovery.

use crate::buffer::BufferPool;
use crate::rid::{PageId, Rid};
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Monotone page-LSN stamp: never regresses an already-higher LSN.
fn stamp(page: &mut crate::page::Page, lsn: u64) {
    if lsn > page.lsn() {
        page.set_lsn(lsn);
    }
}

/// An unordered tuple container over the buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    state: Mutex<HeapState>,
}

struct HeapState {
    pages: Vec<PageId>,
    /// Index into `pages` of the current insertion target.
    cursor: usize,
}

impl HeapFile {
    /// Creates an empty heap file with one initial page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let id = {
            let (id, _pin) = pool.new_page()?;
            id
        };
        Ok(HeapFile {
            pool,
            state: Mutex::new(HeapState {
                pages: vec![id],
                cursor: 0,
            }),
        })
    }

    /// Reconstructs a heap file from a known page list (used by recovery).
    pub fn from_pages(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Self {
        assert!(!pages.is_empty(), "a heap file has at least one page");
        HeapFile {
            pool,
            state: Mutex::new(HeapState { cursor: pages.len() - 1, pages }),
        }
    }

    /// Page ids of this file, in order.
    pub fn pages(&self) -> Vec<PageId> {
        self.state.lock().pages.clone()
    }

    /// Inserts `data`, stamping `lsn`, and returns its record id.
    pub fn insert(&self, data: &[u8], lsn: u64) -> Result<Rid> {
        if data.len() > crate::page::MAX_TUPLE {
            return Err(StorageError::TupleTooLarge {
                size: data.len(),
                max: crate::page::MAX_TUPLE,
            });
        }
        loop {
            // Snapshot the target page, then operate on it without holding
            // the heap mutex so unrelated inserts only collide on page latch.
            let (page_id, cursor, npages) = {
                let st = self.state.lock();
                (st.pages[st.cursor], st.cursor, st.pages.len())
            };
            let pin = self.pool.pin(page_id)?;
            {
                let mut page = pin.write();
                if let Some(slot) = page.insert(data) {
                    stamp(&mut page, lsn);
                    return Ok(Rid::new(page_id, slot));
                }
            }
            drop(pin);
            // The target was full: advance the cursor or grow the file.
            let mut st = self.state.lock();
            if st.cursor == cursor && st.pages.len() == npages {
                if st.cursor + 1 < st.pages.len() {
                    st.cursor += 1;
                } else {
                    let (new_id, _pin) = self.pool.new_page()?;
                    st.pages.push(new_id);
                    st.cursor = st.pages.len() - 1;
                }
            }
            // Else another thread already advanced/grew; just retry.
        }
    }

    /// Inserts `data` at a specific rid (recovery redo of an insert). The
    /// target page must be part of this file. Returns `true` if the insert
    /// was applied, `false` if the page already reflected it (page LSN, or
    /// an identical live tuple in the slot).
    pub fn insert_at(&self, rid: Rid, data: &[u8], lsn: u64) -> Result<bool> {
        let pin = self.pool.pin(rid.page)?;
        let mut page = pin.write();
        // Redo only applies if the page has not already seen this change.
        if page.lsn() >= lsn || page.get(rid.slot) == Some(data) {
            return Ok(false);
        }
        // Slot-exact placement: concurrent pre-crash histories can replay
        // in LSN order that differs from original slot-assignment order.
        if page.insert_at_slot(rid.slot, data) {
            stamp(&mut page, lsn);
            Ok(true)
        } else {
            Err(StorageError::RecordNotFound(rid))
        }
    }

    /// Reads the tuple at `rid`.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        let pin = self.pool.pin(rid.page)?;
        let page = pin.read();
        page.get(rid.slot)
            .map(|d| d.to_vec())
            .ok_or(StorageError::RecordNotFound(rid))
    }

    /// Overwrites the tuple at `rid`, returning the before-image.
    pub fn update(&self, rid: Rid, data: &[u8], lsn: u64) -> Result<Vec<u8>> {
        let pin = self.pool.pin(rid.page)?;
        let mut page = pin.write();
        let old = page
            .get(rid.slot)
            .map(|d| d.to_vec())
            .ok_or(StorageError::RecordNotFound(rid))?;
        if !page.update(rid.slot, data) {
            return Err(StorageError::TupleTooLarge {
                size: data.len(),
                max: page.free_space() + old.len(),
            });
        }
        stamp(&mut page, lsn);
        Ok(old)
    }

    /// Idempotent update used by recovery redo: skipped if the page LSN shows
    /// the change already applied. Returns `true` if applied.
    pub fn update_if_newer(&self, rid: Rid, data: &[u8], lsn: u64) -> Result<bool> {
        let pin = self.pool.pin(rid.page)?;
        let mut page = pin.write();
        if page.lsn() >= lsn {
            return Ok(false);
        }
        if !page.update(rid.slot, data) {
            return Err(StorageError::RecordNotFound(rid));
        }
        stamp(&mut page, lsn);
        Ok(true)
    }

    /// Deletes the tuple at `rid`, returning the before-image.
    pub fn delete(&self, rid: Rid, lsn: u64) -> Result<Vec<u8>> {
        let pin = self.pool.pin(rid.page)?;
        let mut page = pin.write();
        let old = page
            .delete(rid.slot)
            .ok_or(StorageError::RecordNotFound(rid))?;
        stamp(&mut page, lsn);
        Ok(old)
    }

    /// Idempotent delete for recovery redo. Returns `true` if applied.
    pub fn delete_if_newer(&self, rid: Rid, lsn: u64) -> Result<bool> {
        let pin = self.pool.pin(rid.page)?;
        let mut page = pin.write();
        if page.lsn() >= lsn {
            return Ok(false);
        }
        let applied = page.delete(rid.slot).is_some();
        stamp(&mut page, lsn);
        Ok(applied)
    }

    /// Raises the page LSN of `page_id` to at least `lsn`. The transaction
    /// layer calls this after appending the log record that describes a
    /// mutation it performed with a provisional LSN; the monotone (max)
    /// stamp makes the narrow race with a concurrent flush harmless (redo is
    /// idempotent for every record type).
    pub fn stamp_page_lsn(&self, page_id: PageId, lsn: u64) -> Result<()> {
        let pin = self.pool.pin(page_id)?;
        let mut page = pin.write();
        stamp(&mut page, lsn);
        Ok(())
    }

    /// Full scan: invokes `f` for every live tuple. Pages are latched shared
    /// one at a time, so the scan interleaves with concurrent updates.
    pub fn scan(&self, mut f: impl FnMut(Rid, &[u8])) -> Result<()> {
        let pages = self.pages();
        for page_id in pages {
            let pin = self.pool.pin(page_id)?;
            let page = pin.read();
            for (slot, data) in page.live_slots() {
                f(Rid::new(page_id, slot), data);
            }
        }
        Ok(())
    }

    /// Number of live tuples (scans the file).
    pub fn count(&self) -> Result<usize> {
        let mut n = 0;
        self.scan(|_, _| n += 1)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn heap() -> HeapFile {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(64, disk));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let rid = h.insert(b"tuple-1", 1).unwrap();
        assert_eq!(h.get(rid).unwrap(), b"tuple-1");
    }

    #[test]
    fn update_returns_before_image() {
        let h = heap();
        let rid = h.insert(b"old", 1).unwrap();
        let before = h.update(rid, b"new", 2).unwrap();
        assert_eq!(before, b"old");
        assert_eq!(h.get(rid).unwrap(), b"new");
    }

    #[test]
    fn delete_then_get_fails() {
        let h = heap();
        let rid = h.insert(b"gone", 1).unwrap();
        assert_eq!(h.delete(rid, 2).unwrap(), b"gone");
        assert_eq!(h.get(rid).unwrap_err(), StorageError::RecordNotFound(rid));
    }

    #[test]
    fn file_grows_across_pages() {
        let h = heap();
        let tuple = [9u8; 512];
        let mut rids = Vec::new();
        for _ in 0..100 {
            rids.push(h.insert(&tuple, 1).unwrap());
        }
        assert!(h.pages().len() > 1, "100 x 512B tuples should span pages");
        for rid in &rids {
            assert_eq!(h.get(*rid).unwrap(), tuple);
        }
        assert_eq!(h.count().unwrap(), 100);
    }

    #[test]
    fn scan_sees_all_live_tuples() {
        let h = heap();
        let a = h.insert(b"a", 1).unwrap();
        let b = h.insert(b"b", 2).unwrap();
        h.delete(a, 3).unwrap();
        let mut seen = Vec::new();
        h.scan(|rid, data| seen.push((rid, data.to_vec()))).unwrap();
        assert_eq!(seen, vec![(b, b"b".to_vec())]);
    }

    #[test]
    fn update_if_newer_is_idempotent() {
        let h = heap();
        let rid = h.insert(b"v1", 5).unwrap();
        h.update_if_newer(rid, b"v2", 10).unwrap();
        assert_eq!(h.get(rid).unwrap(), b"v2");
        // Replaying an older change is a no-op.
        h.update_if_newer(rid, b"v0", 7).unwrap();
        assert_eq!(h.get(rid).unwrap(), b"v2");
    }

    #[test]
    fn concurrent_inserts_are_all_stored() {
        let h = Arc::new(heap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                let mut rids = Vec::new();
                for i in 0..200u32 {
                    let payload = [t; 64];
                    let _ = i;
                    rids.push(h.insert(&payload, 1).unwrap());
                }
                rids
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 800, "rids must be unique");
        assert_eq!(h.count().unwrap(), 800);
    }

    #[test]
    fn oversized_insert_rejected() {
        let h = heap();
        let e = h.insert(&vec![0u8; crate::page::MAX_TUPLE + 1], 1).unwrap_err();
        assert!(matches!(e, StorageError::TupleTooLarge { .. }));
    }
}
