//! Storage-layer error type.

use crate::rid::{PageId, Rid};

/// Which I/O direction an injected device error hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A page read.
    Read,
    /// A page write.
    Write,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        })
    }
}

/// Errors surfaced by the storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested page does not exist on the page store.
    PageNotFound(PageId),
    /// A record id pointed at a missing or deleted slot.
    RecordNotFound(Rid),
    /// The tuple is larger than a page can hold.
    TupleTooLarge {
        /// Requested payload size in bytes.
        size: usize,
        /// Maximum payload a page accepts.
        max: usize,
    },
    /// The buffer pool could not find an evictable frame (all pinned).
    PoolExhausted,
    /// A primary-key lookup missed.
    KeyNotFound(u64),
    /// An insert collided with an existing primary key.
    DuplicateKey(u64),
    /// A tuple had the wrong arity for its table.
    ArityMismatch {
        /// Columns the table declares.
        expected: usize,
        /// Columns the caller supplied.
        got: usize,
    },
    /// An on-page row failed structural validation (not a multiple of 8
    /// bytes, or shorter than a key): the page carries corrupt data.
    CorruptRow {
        /// Byte length of the rejected row image.
        len: usize,
    },
    /// A transient device error: the operation did not happen but may
    /// succeed if retried (the buffer pool retries these with backoff).
    TransientIo {
        /// Which direction failed.
        op: IoOp,
    },
    /// The device tripped its crash latch: every subsequent operation fails
    /// until the simulated restart ([`crate::fault::FaultInjector::heal`]).
    DeviceFailed,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::RecordNotFound(r) => write!(f, "record {r} not found"),
            StorageError::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: every frame is pinned"),
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: table has {expected} columns, tuple has {got}")
            }
            StorageError::CorruptRow { len } => write!(f, "corrupt row of {len} bytes"),
            StorageError::TransientIo { op } => write!(f, "transient {op} error (retryable)"),
            StorageError::DeviceFailed => write!(f, "device failed (crash latch tripped)"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::TupleTooLarge { size: 10_000, max: 8_000 };
        assert!(e.to_string().contains("10000"));
        let e = StorageError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("3"));
    }
}
