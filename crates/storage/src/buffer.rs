//! Buffer pool: fixed frame array, clock eviction, pin counts, frame latches.
//!
//! Each frame guards its page with a reader–writer lock, so page accesses
//! from different worker threads proceed in parallel unless they touch the
//! same page — the latching granularity Shore-MT uses. The page table and the
//! clock hand live behind a single mutex; on a memory-resident working set
//! (the common case here) that mutex is only touched on pin/unpin, and the
//! benchmark harness can quantify its contention via [`PoolStats`].

use crate::disk::PageStore;
use crate::page::Page;
use crate::rid::PageId;
use crate::{Result, StorageError};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

const NO_PAGE: u64 = u64::MAX;

struct Frame {
    data: RwLock<Page>,
    page_id: AtomicU64,
    pin: AtomicU32,
    dirty: AtomicBool,
    refbit: AtomicBool,
}

struct MapState {
    table: HashMap<PageId, usize>,
    hand: usize,
}

/// Buffer pool traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins that found the page resident.
    pub hits: u64,
    /// Pins that required a disk read.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub writebacks: u64,
    /// Transient device errors absorbed by retry-with-backoff.
    pub io_retries: u64,
}

/// Attempts per device operation before a transient error is surfaced.
const IO_ATTEMPTS: u32 = 8;

/// Callback enforcing the WAL rule: invoked with a dirty page's LSN before
/// the page is written back; must not return until the log is durable up to
/// that LSN.
pub type LsnBarrier = Box<dyn Fn(u64) + Send + Sync>;

/// A fixed-capacity page cache in front of a [`PageStore`].
pub struct BufferPool {
    frames: Vec<Frame>,
    map: Mutex<MapState>,
    disk: Arc<dyn PageStore>,
    lsn_barrier: parking_lot::RwLock<Option<LsnBarrier>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    io_retries: AtomicU64,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over `disk`.
    pub fn new(capacity: usize, disk: Arc<dyn PageStore>) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                data: RwLock::new(Page::new()),
                page_id: AtomicU64::new(NO_PAGE),
                pin: AtomicU32::new(0),
                dirty: AtomicBool::new(false),
                refbit: AtomicBool::new(false),
            })
            .collect();
        BufferPool {
            frames,
            map: Mutex::new(MapState {
                table: HashMap::new(),
                hand: 0,
            }),
            disk,
            lsn_barrier: parking_lot::RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
        }
    }

    /// Reads `id` from the store, retrying transient errors with bounded
    /// exponential backoff. Non-transient errors surface immediately.
    fn read_retrying(&self, id: PageId, out: &mut Page) -> Result<()> {
        let mut backoff = esdb_sync::Backoff::new();
        // Started lazily: the no-error path pays nothing.
        let mut retry_wait = None;
        for attempt in 1..=IO_ATTEMPTS {
            match self.disk.read(id, out) {
                Err(StorageError::TransientIo { .. }) if attempt < IO_ATTEMPTS => {
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    retry_wait
                        .get_or_insert_with(|| esdb_obs::wait_timer(esdb_obs::WaitClass::IoRetry));
                    backoff.pause();
                }
                other => return other,
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Writes `page` to the store with the same retry policy as
    /// [`BufferPool::read_retrying`]. A retried torn write is harmless: the
    /// successful attempt rewrites the full page image.
    fn write_retrying(&self, id: PageId, page: &Page) -> Result<()> {
        let mut backoff = esdb_sync::Backoff::new();
        let mut retry_wait = None;
        for attempt in 1..=IO_ATTEMPTS {
            match self.disk.write(id, page) {
                Err(StorageError::TransientIo { .. }) if attempt < IO_ATTEMPTS => {
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    retry_wait
                        .get_or_insert_with(|| esdb_obs::wait_timer(esdb_obs::WaitClass::IoRetry));
                    backoff.pause();
                }
                other => return other,
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Installs the write-ahead-logging barrier: before any dirty page is
    /// written back, `barrier(page_lsn)` runs and must make the log durable
    /// up to that LSN (steal-safe recovery depends on it).
    pub fn set_lsn_barrier(&self, barrier: LsnBarrier) {
        *self.lsn_barrier.write() = Some(barrier);
    }

    fn wal_fence(&self, lsn: u64) {
        if lsn != 0 {
            if let Some(b) = self.lsn_barrier.read().as_ref() {
                b(lsn);
            }
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The underlying page store.
    pub fn disk(&self) -> &Arc<dyn PageStore> {
        &self.disk
    }

    /// Allocates a fresh page on the store and pins it.
    pub fn new_page(&self) -> Result<(PageId, PinnedPage<'_>)> {
        let id = self.disk.allocate();
        let pin = self.pin(id)?;
        Ok((id, pin))
    }

    /// Pins page `id` into a frame, reading it from the store on a miss.
    pub fn pin(&self, id: PageId) -> Result<PinnedPage<'_>> {
        let mut map = self.map.lock();
        if let Some(&idx) = map.table.get(&id) {
            self.frames[idx].pin.fetch_add(1, Ordering::Relaxed);
            self.frames[idx].refbit.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PinnedPage { pool: self, idx });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let miss_start = esdb_obs::enabled().then(std::time::Instant::now);
        let idx = self.find_victim(&mut map)?;

        // Evict the old occupant (unpinned by construction).
        let frame = &self.frames[idx];
        let old_id = frame.page_id.load(Ordering::Relaxed);
        if old_id != NO_PAGE {
            map.table.remove(&old_id);
            if frame.dirty.swap(false, Ordering::Relaxed) {
                let page = frame.data.read();
                self.wal_fence(page.lsn());
                self.write_retrying(old_id, &page)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Load the new page.
        {
            let mut page = frame.data.write();
            self.read_retrying(id, &mut page)?;
        }
        frame.page_id.store(id, Ordering::Relaxed);
        frame.pin.store(1, Ordering::Relaxed);
        frame.refbit.store(true, Ordering::Relaxed);
        map.table.insert(id, idx);
        if let Some(start) = miss_start {
            esdb_obs::record_component(
                esdb_obs::Component::PoolMiss,
                start.elapsed().as_nanos() as u64,
            );
        }
        Ok(PinnedPage { pool: self, idx })
    }

    /// Clock sweep over the frames; two full passes give every referenced
    /// frame a second chance before declaring the pool exhausted.
    fn find_victim(&self, map: &mut MapState) -> Result<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n {
            let idx = map.hand;
            map.hand = (map.hand + 1) % n;
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::Relaxed) != 0 {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            return Ok(idx);
        }
        Err(StorageError::PoolExhausted)
    }

    /// Retries a whole-batch submission with the same backoff policy as the
    /// single-page paths. Rewriting full page images is idempotent, so
    /// retrying a batch whose prefix landed is harmless.
    fn write_batch_retrying(&self, batch: &[(PageId, &Page)]) -> Result<()> {
        let mut backoff = esdb_sync::Backoff::new();
        let mut retry_wait = None;
        for attempt in 1..=IO_ATTEMPTS {
            match self.disk.write_batch(batch) {
                Err(StorageError::TransientIo { .. }) if attempt < IO_ATTEMPTS => {
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    retry_wait
                        .get_or_insert_with(|| esdb_obs::wait_timer(esdb_obs::WaitClass::IoRetry));
                    backoff.pause();
                }
                other => return other,
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Writes back every dirty page as **one vectored submission**
    /// ([`PageStore::write_batch`]): a single WAL fence covering the highest
    /// dirty-page LSN, then one batched device round trip, instead of a
    /// fence + write per page. Pages stay resident.
    pub fn flush_all(&self) -> Result<()> {
        let _map = self.map.lock();
        let mut guards: Vec<(PageId, RwLockReadGuard<'_, Page>)> = Vec::new();
        let mut max_lsn = 0u64;
        for frame in &self.frames {
            let id = frame.page_id.load(Ordering::Relaxed);
            if id != NO_PAGE && frame.dirty.swap(false, Ordering::Relaxed) {
                let page = frame.data.read();
                max_lsn = max_lsn.max(page.lsn());
                guards.push((id, page));
            }
        }
        if guards.is_empty() {
            return Ok(());
        }
        // One fence bounds every page in the batch: the log is durable up to
        // the newest dirty LSN before any page image hits the store.
        self.wal_fence(max_lsn);
        let batch: Vec<(PageId, &Page)> = guards.iter().map(|(id, g)| (*id, &**g)).collect();
        self.write_batch_retrying(&batch)?;
        self.writebacks.fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
        }
    }
}

/// A pinned page: the frame cannot be evicted while this guard lives.
///
/// Reading or writing the page content still requires taking the frame latch
/// via [`PinnedPage::read`] / [`PinnedPage::write`]; pin and latch are
/// deliberately separate, as in any real buffer manager.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    idx: usize,
}

impl std::fmt::Debug for PinnedPage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage").field("page", &self.page_id()).finish()
    }
}

impl PinnedPage<'_> {
    /// The id of the pinned page.
    pub fn page_id(&self) -> PageId {
        self.pool.frames[self.idx].page_id.load(Ordering::Relaxed)
    }

    /// Takes the frame latch in shared mode.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.pool.frames[self.idx].data.read()
    }

    /// Takes the frame latch in exclusive mode and marks the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        let frame = &self.pool.frames[self.idx];
        let guard = frame.data.write();
        frame.dirty.store(true, Ordering::Relaxed);
        guard
    }
}

impl Drop for PinnedPage<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.idx].pin.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn pool(frames: usize) -> (Arc<InMemoryDisk>, BufferPool) {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = BufferPool::new(frames, disk.clone());
        (disk, pool)
    }

    #[test]
    fn pin_hit_after_first_load() {
        let (_disk, pool) = pool(4);
        let (id, first) = pool.new_page().unwrap();
        drop(first);
        let again = pool.pin(id).unwrap();
        assert_eq!(again.page_id(), id);
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn writes_survive_eviction() {
        let (_disk, pool) = pool(2);
        let (id, pinned) = pool.new_page().unwrap();
        pinned.write().insert(b"durable").unwrap();
        drop(pinned);

        // Force eviction by cycling more pages than frames.
        for _ in 0..4 {
            let (_, p) = pool.new_page().unwrap();
            drop(p);
        }

        let back = pool.pin(id).unwrap();
        assert_eq!(back.read().get(0).unwrap(), b"durable");
        assert!(pool.stats().writebacks >= 1);
    }

    #[test]
    fn pool_exhausted_when_all_pinned() {
        let (_disk, pool) = pool(2);
        let (_, _a) = pool.new_page().unwrap();
        let (_, _b) = pool.new_page().unwrap();
        let id = pool.disk().allocate();
        assert_eq!(pool.pin(id).unwrap_err(), StorageError::PoolExhausted);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (disk, pool) = pool(4);
        let (id, pinned) = pool.new_page().unwrap();
        pinned.write().insert(b"flushed").unwrap();
        drop(pinned);
        pool.flush_all().unwrap();

        let mut raw = Page::new();
        disk.read(id, &mut raw).unwrap();
        assert_eq!(raw.get(0).unwrap(), b"flushed");
    }

    #[test]
    fn concurrent_pins_of_same_page() {
        let (_disk, pool) = pool(4);
        let (id, p) = pool.new_page().unwrap();
        drop(p);
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let pin = pool.pin(id).unwrap();
                    let mut page = pin.write();
                    if page.slot_count() == 0 {
                        page.insert(&0u64.to_le_bytes()).unwrap();
                    }
                    let v = u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap());
                    page.update(0, &(v + 1).to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let pin = pool.pin(id).unwrap();
        let page = pin.read();
        let v = u64::from_le_bytes(page.get(0).unwrap().try_into().unwrap());
        assert_eq!(v, 4 * 200); // the inserting iteration also increments 0 -> 1
    }

    #[test]
    fn transient_io_is_retried_transparently() {
        use crate::fault::{FaultConfig, FaultInjector};
        let disk = Arc::new(InMemoryDisk::new());
        let faulty = Arc::new(FaultInjector::new(
            disk,
            FaultConfig {
                seed: 11,
                read_error_per_10k: 2_500,
                write_error_per_10k: 2_500,
                torn_write_per_10k: 5_000,
                ..FaultConfig::default()
            },
        ));
        let pool = BufferPool::new(2, faulty.clone());
        // Cycle enough pages through a tiny pool that reads and writebacks
        // both hit injected errors; every operation must still succeed.
        let mut ids = Vec::new();
        for i in 0..8u64 {
            let (id, p) = pool.new_page().unwrap();
            p.write().insert(&i.to_le_bytes()).unwrap();
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            let pin = pool.pin(*id).unwrap();
            assert_eq!(pin.read().get(0).unwrap(), (i as u64).to_le_bytes());
        }
        assert!(pool.stats().io_retries > 0, "faults were injected and absorbed");
        assert!(faulty.stats().injected_write_errors + faulty.stats().injected_read_errors > 0);
    }

    #[test]
    fn eviction_prefers_unreferenced_frames() {
        let (_disk, pool) = pool(3);
        let (hot, p) = pool.new_page().unwrap();
        drop(p);
        // Touch the hot page between allocations so its refbit stays set.
        for _ in 0..6 {
            let (_, p) = pool.new_page().unwrap();
            drop(p);
            drop(pool.pin(hot).unwrap());
        }
        let before = pool.stats().misses;
        drop(pool.pin(hot).unwrap());
        assert_eq!(pool.stats().misses, before, "hot page should still be resident");
    }
}
