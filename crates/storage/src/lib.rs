//! # esdb-storage — Shore-MT-style storage manager substrate
//!
//! The keynote's subject is "transform[ing] a database storage manager from a
//! single-threaded Atlas into a multi-threaded Lernaean Hydra". This crate is
//! that storage manager: the layer every other subsystem (locking, logging,
//! transactions, DORA, staged queries) is built on.
//!
//! Components:
//!
//! * [`page`] — 8 KiB slotted pages with per-page LSNs.
//! * [`disk`] — a page store abstraction with an in-memory implementation
//!   (optionally with injected latency) standing in for a disk array.
//! * [`fault`] — a deterministic, seeded fault-injecting decorator over any
//!   page store (transient errors, torn writes, crash points) used by the
//!   crash-torture harness.
//! * [`buffer`] — a fixed-size buffer pool with clock eviction, frame pinning,
//!   and per-frame reader–writer latches.
//! * [`heap`] — heap files of slotted pages addressed by [`rid::Rid`].
//! * [`btree`] — an in-memory B+tree with per-node latches and latch
//!   crabbing, mapping `u64` keys to values.
//! * [`hashindex`] — a partitioned hash index (used for DORA-local indexes)
//!   plus the partitioned multimap backing secondary hash indexes.
//! * [`secondary`] — secondary indexes over single columns (hash and range),
//!   maintained with idempotent set semantics so WAL redo can replay them.
//! * [`schema`] — minimal catalog types. Tuples are fixed-arity `i64` rows;
//!   this is sufficient for the TATP/TPC-C-style workloads the keynote's
//!   experiments use and keeps tuple (de)serialization trivial.
//! * [`table`] — the composition: heap file + primary B+tree index.
//!
//! ```
//! use esdb_storage::{buffer::BufferPool, disk::InMemoryDisk, table::Table};
//! use std::sync::Arc;
//!
//! let disk = Arc::new(InMemoryDisk::new());
//! let pool = Arc::new(BufferPool::new(64, disk));
//! let table = Table::create(0, "accounts", 2, pool);
//! table.insert(7, &[100, 1]).unwrap();
//! assert_eq!(table.get(7).unwrap(), vec![100, 1]);
//! ```

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod fault;
pub mod hashindex;
pub mod heap;
pub mod page;
pub mod rid;
pub mod schema;
pub mod secondary;
pub mod table;

pub use buffer::BufferPool;
pub use disk::InMemoryDisk;
pub use error::{IoOp, StorageError};
pub use fault::{FaultConfig, FaultInjector, FaultRng, FaultStats};
pub use rid::{PageId, Rid};
pub use schema::{IndexDef, IndexId, IndexKind};
pub use secondary::SecondaryIndex;
pub use table::Table;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
