//! Concurrent B+tree with per-node latches and latch crabbing.
//!
//! The primary index of every table. Readers descend with *shared* latch
//! coupling (latch child, release parent); writers use *pessimistic exclusive
//! crabbing*: they keep ancestors latched only while the child could split,
//! releasing the whole held path as soon as a "safe" node is reached. This is
//! the Shore-MT-era design the keynote's storage-manager work builds on —
//! fine-grained enough that index traffic is never the scalability bottleneck
//! the centralized lock manager is.
//!
//! Structural simplification: deletion is *lazy* (keys are removed from
//! leaves, but nodes are never merged), as in several production engines.
//! This keeps removal structurally read-only above the leaf level, so deletes
//! use shared crabbing plus one exclusive leaf latch.
//!
//! Keys and values are `u64`; tables store packed [`crate::rid::Rid`]s as
//! values.

use esdb_sync::RwLatch;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum keys per node; a node splits when it would exceed this.
const MAX_KEYS: usize = 32;

enum NodeKind {
    Internal { children: Vec<*mut Node> },
    Leaf { values: Vec<u64>, next: *mut Node },
}

struct Node {
    latch: RwLatch,
    keys: Vec<u64>,
    kind: NodeKind,
}

impl Node {
    fn new_leaf() -> *mut Node {
        Box::into_raw(Box::new(Node {
            latch: RwLatch::new(),
            keys: Vec::new(),
            kind: NodeKind::Leaf {
                values: Vec::new(),
                next: std::ptr::null_mut(),
            },
        }))
    }

    fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// A node is insert-safe if one more key cannot overflow it.
    fn insert_safe(&self) -> bool {
        self.keys.len() < MAX_KEYS
    }

    /// Child index covering `key`: keys[i-1] <= key < keys[i].
    fn child_index(&self, key: u64) -> usize {
        self.keys.partition_point(|&k| k <= key)
    }
}

/// A concurrent ordered map from `u64` to `u64`.
pub struct BTree {
    /// Meta latch protecting the *root pointer* itself.
    meta: RwLatch,
    root: std::cell::UnsafeCell<*mut Node>,
    len: AtomicU64,
}

unsafe impl Send for BTree {}
unsafe impl Sync for BTree {}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BTree {
            meta: RwLatch::new(),
            root: std::cell::UnsafeCell::new(Node::new_leaf()),
            len: AtomicU64::new(0),
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the tree has no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup with shared latch coupling.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.meta.lock_shared();
        let mut cur = unsafe { *self.root.get() };
        unsafe { (*cur).latch.lock_shared() };
        self.meta.unlock_shared();
        loop {
            let node = unsafe { &*cur };
            match &node.kind {
                NodeKind::Internal { children } => {
                    let child = children[node.child_index(key)];
                    unsafe { (*child).latch.lock_shared() };
                    node.latch.unlock_shared();
                    cur = child;
                }
                NodeKind::Leaf { values, .. } => {
                    let result = node
                        .keys
                        .binary_search(&key)
                        .ok()
                        .map(|i| values[i]);
                    node.latch.unlock_shared();
                    return result;
                }
            }
        }
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        // Exclusive crabbing. `held` is the chain of exclusively latched
        // nodes (potentially-splitting ancestors down to the current node);
        // `meta_held` tracks whether the root pointer may still change.
        self.meta.lock_exclusive();
        let mut meta_held = true;
        let root = unsafe { *self.root.get() };
        unsafe { (*root).latch.lock_exclusive() };
        let mut held: Vec<*mut Node> = vec![root];

        if unsafe { (*root).insert_safe() } {
            self.meta.unlock_exclusive();
            meta_held = false;
        }

        // Descend to the leaf.
        loop {
            let cur = *held.last().unwrap();
            let node = unsafe { &*cur };
            match &node.kind {
                NodeKind::Internal { children } => {
                    let child = children[node.child_index(key)];
                    unsafe { (*child).latch.lock_exclusive() };
                    if unsafe { (*child).insert_safe() } {
                        // Child cannot split: everything above is safe.
                        for &n in held.iter() {
                            unsafe { (*n).latch.unlock_exclusive() };
                        }
                        held.clear();
                        if meta_held {
                            self.meta.unlock_exclusive();
                            meta_held = false;
                        }
                    }
                    held.push(child);
                }
                NodeKind::Leaf { .. } => break,
            }
        }

        // Insert into the leaf.
        let leaf_ptr = *held.last().unwrap();
        let leaf = unsafe { &mut *leaf_ptr };
        let NodeKind::Leaf { values, .. } = &mut leaf.kind else {
            unreachable!()
        };
        let old = match leaf.keys.binary_search(&key) {
            Ok(i) => {
                let prev = values[i];
                values[i] = value;
                Some(prev)
            }
            Err(i) => {
                leaf.keys.insert(i, key);
                values.insert(i, value);
                self.len.fetch_add(1, Ordering::Relaxed);
                None
            }
        };

        // Split propagation up the held chain.
        let mut pending: Option<(u64, *mut Node)> = None;
        if leaf.keys.len() > MAX_KEYS {
            pending = Some(Self::split(leaf_ptr));
        }
        // Walk ancestors (held is root-most .. leaf).
        let mut level = held.len();
        while let Some((sep, right)) = pending.take() {
            level = level
                .checked_sub(1)
                .expect("split reached above the held chain");
            if level == 0 {
                // The topmost held node split: it must have been the root,
                // and we must still hold the meta latch.
                debug_assert!(meta_held, "root split without meta latch");
                let old_root = held[0];
                let new_root = Box::into_raw(Box::new(Node {
                    latch: RwLatch::new(),
                    keys: vec![sep],
                    kind: NodeKind::Internal {
                        children: vec![old_root, right],
                    },
                }));
                unsafe { *self.root.get() = new_root };
                break;
            }
            let parent_ptr = held[level - 1];
            let parent = unsafe { &mut *parent_ptr };
            let NodeKind::Internal { children } = &mut parent.kind else {
                unreachable!()
            };
            let idx = parent.keys.partition_point(|&k| k <= sep);
            parent.keys.insert(idx, sep);
            children.insert(idx + 1, right);
            if parent.keys.len() > MAX_KEYS {
                pending = Some(Self::split(parent_ptr));
            }
        }

        for &n in held.iter().rev() {
            unsafe { (*n).latch.unlock_exclusive() };
        }
        if meta_held {
            self.meta.unlock_exclusive();
        }
        old
    }

    /// Splits an over-full node, returning `(separator, right sibling)`.
    /// Caller holds the node's exclusive latch.
    fn split(ptr: *mut Node) -> (u64, *mut Node) {
        let node = unsafe { &mut *ptr };
        let mid = node.keys.len() / 2;
        match &mut node.kind {
            NodeKind::Leaf { values, next } => {
                let right_keys = node.keys.split_off(mid);
                let right_values = values.split_off(mid);
                let sep = right_keys[0];
                let right = Box::into_raw(Box::new(Node {
                    latch: RwLatch::new(),
                    keys: right_keys,
                    kind: NodeKind::Leaf {
                        values: right_values,
                        next: *next,
                    },
                }));
                *next = right;
                (sep, right)
            }
            NodeKind::Internal { children } => {
                let sep = node.keys[mid];
                let right_keys = node.keys.split_off(mid + 1);
                node.keys.pop(); // drop the separator that moved up
                let right_children = children.split_off(mid + 1);
                let right = Box::into_raw(Box::new(Node {
                    latch: RwLatch::new(),
                    keys: right_keys,
                    kind: NodeKind::Internal {
                        children: right_children,
                    },
                }));
                (sep, right)
            }
        }
    }

    /// Removes `key`, returning its value. Lazy: no node merging, so the
    /// descent is structurally read-only and uses shared crabbing.
    pub fn remove(&self, key: u64) -> Option<u64> {
        self.meta.lock_shared();
        let mut cur = unsafe { *self.root.get() };
        let root_is_leaf = unsafe { (*cur).is_leaf() };
        if root_is_leaf {
            unsafe { (*cur).latch.lock_exclusive() };
        } else {
            unsafe { (*cur).latch.lock_shared() };
        }
        self.meta.unlock_shared();
        loop {
            let node = unsafe { &*cur };
            match &node.kind {
                NodeKind::Internal { children } => {
                    let child = children[node.child_index(key)];
                    if unsafe { (*child).is_leaf() } {
                        unsafe { (*child).latch.lock_exclusive() };
                    } else {
                        unsafe { (*child).latch.lock_shared() };
                    }
                    node.latch.unlock_shared();
                    cur = child;
                }
                NodeKind::Leaf { .. } => {
                    let node = unsafe { &mut *cur };
                    let NodeKind::Leaf { values, .. } = &mut node.kind else {
                        unreachable!()
                    };
                    let result = match node.keys.binary_search(&key) {
                        Ok(i) => {
                            node.keys.remove(i);
                            let v = values.remove(i);
                            self.len.fetch_sub(1, Ordering::Relaxed);
                            Some(v)
                        }
                        Err(_) => None,
                    };
                    node.latch.unlock_exclusive();
                    return result;
                }
            }
        }
    }

    /// Inclusive range scan. Leaves are traversed with latch coupling via
    /// their `next` pointers.
    pub fn range(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if start > end {
            return out;
        }
        self.meta.lock_shared();
        let mut cur = unsafe { *self.root.get() };
        unsafe { (*cur).latch.lock_shared() };
        self.meta.unlock_shared();
        // Descend to the leaf containing `start`.
        loop {
            let node = unsafe { &*cur };
            match &node.kind {
                NodeKind::Internal { children } => {
                    let child = children[node.child_index(start)];
                    unsafe { (*child).latch.lock_shared() };
                    node.latch.unlock_shared();
                    cur = child;
                }
                NodeKind::Leaf { .. } => break,
            }
        }
        // Walk the leaf chain.
        loop {
            let node = unsafe { &*cur };
            let NodeKind::Leaf { values, next } = &node.kind else {
                unreachable!()
            };
            for (i, &k) in node.keys.iter().enumerate() {
                if k > end {
                    node.latch.unlock_shared();
                    return out;
                }
                if k >= start {
                    out.push((k, values[i]));
                }
            }
            let next = *next;
            if next.is_null() {
                node.latch.unlock_shared();
                return out;
            }
            unsafe { (*next).latch.lock_shared() };
            node.latch.unlock_shared();
            cur = next;
        }
    }

    /// First key >= `start`, if any (cheap successor probe).
    pub fn next_key(&self, start: u64) -> Option<(u64, u64)> {
        self.range(start, u64::MAX).into_iter().next()
    }

    /// Tree height (diagnostics; takes shared latches down the leftmost path).
    pub fn height(&self) -> usize {
        self.meta.lock_shared();
        let mut cur = unsafe { *self.root.get() };
        unsafe { (*cur).latch.lock_shared() };
        self.meta.unlock_shared();
        let mut h = 1;
        loop {
            let node = unsafe { &*cur };
            match &node.kind {
                NodeKind::Internal { children } => {
                    let child = children[0];
                    unsafe { (*child).latch.lock_shared() };
                    node.latch.unlock_shared();
                    cur = child;
                    h += 1;
                }
                NodeKind::Leaf { .. } => {
                    node.latch.unlock_shared();
                    return h;
                }
            }
        }
    }
}

impl Drop for BTree {
    fn drop(&mut self) {
        fn free(ptr: *mut Node) {
            let node = unsafe { Box::from_raw(ptr) };
            if let NodeKind::Internal { children } = &node.kind {
                for &c in children {
                    free(c);
                }
            }
        }
        free(unsafe { *self.root.get() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_small() {
        let t = BTree::new();
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(8, 80), None);
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(8), Some(80));
        assert_eq!(t.get(4), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_overwrites_and_returns_old() {
        let t = BTree::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_inserts_force_splits() {
        let t = BTree::new();
        let n = 10_000u64;
        for k in 0..n {
            t.insert(k.wrapping_mul(2654435761) % n, k);
        }
        assert!(t.height() > 2, "10k keys must produce a multi-level tree");
        for k in 0..n {
            let key = k.wrapping_mul(2654435761) % n;
            assert!(t.get(key).is_some(), "missing key {key}");
        }
    }

    #[test]
    fn remove_then_get_misses() {
        let t = BTree::new();
        for k in 0..200 {
            t.insert(k, k * 10);
        }
        for k in (0..200).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 10));
        }
        for k in 0..200 {
            if k % 2 == 0 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(k * 10));
            }
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.remove(0), None);
    }

    #[test]
    fn range_scan_is_sorted_and_inclusive() {
        let t = BTree::new();
        for k in (0..1000).rev() {
            t.insert(k, k + 1);
        }
        let r = t.range(100, 199);
        assert_eq!(r.len(), 100);
        assert_eq!(r.first(), Some(&(100, 101)));
        assert_eq!(r.last(), Some(&(199, 200)));
        assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(t.range(5, 4).is_empty());
    }

    #[test]
    fn next_key_probe() {
        let t = BTree::new();
        t.insert(10, 1);
        t.insert(20, 2);
        assert_eq!(t.next_key(0), Some((10, 1)));
        assert_eq!(t.next_key(10), Some((10, 1)));
        assert_eq!(t.next_key(11), Some((20, 2)));
        assert_eq!(t.next_key(21), None);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = Arc::new(BTree::new());
        let mut handles = Vec::new();
        for part in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for k in 0..2_000u64 {
                    t.insert(part * 1_000_000 + k, k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8_000);
        for part in 0..4u64 {
            for k in (0..2_000u64).step_by(97) {
                assert_eq!(t.get(part * 1_000_000 + k), Some(k));
            }
        }
    }

    #[test]
    fn concurrent_mixed_readers_writers() {
        let t = Arc::new(BTree::new());
        for k in 0..1_000 {
            t.insert(k, k);
        }
        let mut handles = Vec::new();
        for id in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let k = (id * 7_919 + i * 104_729) % 4_000;
                    if i % 3 == 0 {
                        t.insert(k, k);
                    } else {
                        if let Some(v) = t.get(k) {
                            assert_eq!(v, k);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.remove(1), None);
        assert!(t.range(0, u64::MAX).is_empty());
        assert_eq!(t.height(), 1);
    }
}
