//! Tables: heap file + primary B+tree index + schema.
//!
//! `Table` is the storage-level object the transaction layer manipulates.
//! All methods are physically safe under concurrency (page latches, index
//! crabbing) but provide **no transactional isolation** — that is the job of
//! the lock manager and transaction manager layered above. Mutating methods
//! accept an LSN to stamp pages for recovery; un-logged callers pass 0.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::heap::HeapFile;
use crate::rid::Rid;
use crate::schema::{decode_row, encode_row, IndexDef, IndexId, Schema, TableId};
use crate::secondary::SecondaryIndex;
use crate::{Result, StorageError};
use std::sync::Arc;

/// A keyed table of fixed-arity `i64` rows.
pub struct Table {
    schema: Schema,
    heap: HeapFile,
    index: BTree,
    /// Secondary indexes declared in the schema, in declaration order.
    /// Like the primary B+tree these are derived, in-memory state: never
    /// checkpointed, rebuilt from the heap after recovery or bootstrap.
    secondaries: Vec<Arc<SecondaryIndex>>,
}

fn build_secondaries(schema: &Schema) -> Vec<Arc<SecondaryIndex>> {
    schema
        .indexes
        .iter()
        .map(|def| Arc::new(SecondaryIndex::new(def.clone())))
        .collect()
}

impl Table {
    /// Creates an empty table with `arity` value columns.
    pub fn create(id: TableId, name: impl Into<String>, arity: usize, pool: Arc<BufferPool>) -> Self {
        Self::create_indexed(id, name, arity, Vec::new(), pool)
    }

    /// Creates an empty table carrying secondary index declarations.
    pub fn create_indexed(
        id: TableId,
        name: impl Into<String>,
        arity: usize,
        indexes: Vec<IndexDef>,
        pool: Arc<BufferPool>,
    ) -> Self {
        let schema = Schema::with_indexes(id, name, arity, indexes);
        let secondaries = build_secondaries(&schema);
        Table {
            schema,
            heap: HeapFile::create(pool).expect("allocating first heap page"),
            index: BTree::new(),
            secondaries,
        }
    }

    /// Reconstructs a table around an existing heap (crash recovery: the
    /// heap pages survive on the page store, the in-memory indexes do not).
    /// The primary and secondary indexes start empty; call
    /// [`Table::rebuild_index`] and [`Table::rebuild_secondaries`] after
    /// redo/undo have restored the heap.
    pub fn from_heap(schema: Schema, heap: HeapFile) -> Self {
        let secondaries = build_secondaries(&schema);
        Table {
            schema,
            heap,
            index: BTree::new(),
            secondaries,
        }
    }

    /// Rebuilds the primary index from a full heap scan. Fails with
    /// [`StorageError::CorruptRow`] if any live slot holds an undecodable
    /// row image.
    pub fn rebuild_index(&self) -> Result<()> {
        let mut bad: Option<StorageError> = None;
        self.heap.scan(|rid, bytes| {
            if bad.is_some() {
                return;
            }
            match crate::schema::decode_key(bytes) {
                Ok(key) => {
                    self.index.insert(key, rid.to_u64());
                }
                Err(e) => bad = Some(e),
            }
        })?;
        match bad {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Rebuilds every secondary index from a full heap scan (clearing any
    /// stale contents first). Fails with [`StorageError::CorruptRow`] if any
    /// live slot holds an undecodable row image.
    pub fn rebuild_secondaries(&self) -> Result<()> {
        if self.secondaries.is_empty() {
            return Ok(());
        }
        for ix in &self.secondaries {
            ix.clear();
        }
        let mut bad: Option<StorageError> = None;
        self.heap.scan(|_rid, bytes| {
            if bad.is_some() {
                return;
            }
            match decode_row(bytes) {
                Ok((key, row)) => {
                    for ix in &self.secondaries {
                        ix.insert_row(key, &row);
                    }
                }
                Err(e) => bad = Some(e),
            }
        })?;
        match bad {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// This table's secondary indexes, in declaration order.
    pub fn secondaries(&self) -> &[Arc<SecondaryIndex>] {
        &self.secondaries
    }

    /// The secondary index with the given id, if declared.
    pub fn secondary(&self, id: IndexId) -> Option<&Arc<SecondaryIndex>> {
        self.secondaries.iter().find(|ix| ix.def().id == id)
    }

    /// This table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Table id shorthand.
    pub fn id(&self) -> TableId {
        self.schema.id
    }

    fn check_arity(&self, row: &[i64]) -> Result<()> {
        if row.len() != self.schema.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity,
                got: row.len(),
            });
        }
        Ok(())
    }

    /// Inserts `key → row`. Fails with [`StorageError::DuplicateKey`] if the
    /// key exists.
    pub fn insert(&self, key: u64, row: &[i64]) -> Result<Rid> {
        self.insert_logged(key, row, 0)
    }

    /// Insert stamping `lsn` on the touched page.
    pub fn insert_logged(&self, key: u64, row: &[i64], lsn: u64) -> Result<Rid> {
        self.check_arity(row)?;
        if self.index.contains(key) {
            return Err(StorageError::DuplicateKey(key));
        }
        let rid = self.heap.insert(&encode_row(key, row), lsn)?;
        if self.index.insert(key, rid.to_u64()).is_some() {
            // Lost the race with a concurrent insert of the same key: undo
            // our heap insert and report the duplicate.
            // (The racing winner's rid is now in the index; restore it.)
            let _ = self.heap.delete(rid, lsn);
            return Err(StorageError::DuplicateKey(key));
        }
        for ix in &self.secondaries {
            ix.insert_row(key, row);
        }
        Ok(rid)
    }

    /// Reads the row for `key`.
    pub fn get(&self, key: u64) -> Result<Vec<i64>> {
        let rid = self.rid_of(key)?;
        let bytes = self.heap.get(rid)?;
        Ok(decode_row(&bytes)?.1)
    }

    /// Physical address of `key`.
    pub fn rid_of(&self, key: u64) -> Result<Rid> {
        self.index
            .get(key)
            .map(Rid::from_u64)
            .ok_or(StorageError::KeyNotFound(key))
    }

    /// Overwrites the row for `key`, returning the before-image.
    pub fn update(&self, key: u64, row: &[i64]) -> Result<Vec<i64>> {
        self.update_logged(key, row, 0)
    }

    /// Update stamping `lsn` on the touched page.
    pub fn update_logged(&self, key: u64, row: &[i64], lsn: u64) -> Result<Vec<i64>> {
        self.check_arity(row)?;
        let rid = self.rid_of(key)?;
        let old = self.heap.update(rid, &encode_row(key, row), lsn)?;
        let before = decode_row(&old)?.1;
        for ix in &self.secondaries {
            ix.update_row(key, &before, row);
        }
        Ok(before)
    }

    /// Deletes `key`, returning the before-image.
    pub fn delete(&self, key: u64) -> Result<Vec<i64>> {
        self.delete_logged(key, 0)
    }

    /// Delete stamping `lsn` on the touched page.
    pub fn delete_logged(&self, key: u64, lsn: u64) -> Result<Vec<i64>> {
        let rid = self.rid_of(key)?;
        let old = self.heap.delete(rid, lsn)?;
        self.index.remove(key);
        let before = decode_row(&old)?.1;
        for ix in &self.secondaries {
            ix.remove_row(key, &before);
        }
        Ok(before)
    }

    /// Inclusive primary-key range scan, returning `(key, row)` pairs in key
    /// order.
    pub fn range(&self, start: u64, end: u64) -> Result<Vec<(u64, Vec<i64>)>> {
        let mut out = Vec::new();
        for (key, packed) in self.index.range(start, end) {
            let bytes = self.heap.get(Rid::from_u64(packed))?;
            out.push((key, decode_row(&bytes)?.1));
        }
        Ok(out)
    }

    /// Full scan in heap (physical) order; faster than [`Table::range`] for
    /// whole-table reads because it avoids index traversal per tuple. Stops
    /// at the first corrupt row and reports it.
    pub fn scan(&self, mut f: impl FnMut(u64, &[i64])) -> Result<()> {
        let mut bad: Option<StorageError> = None;
        self.heap.scan(|_rid, bytes| {
            if bad.is_some() {
                return;
            }
            match decode_row(bytes) {
                Ok((key, row)) => f(key, &row),
                Err(e) => bad = Some(e),
            }
        })?;
        match bad {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> u64 {
        self.index.len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct access to the underlying heap (recovery only).
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// Direct access to the primary index (recovery only).
    pub fn index(&self) -> &BTree {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn table(arity: usize) -> Table {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(128, disk));
        Table::create(1, "t", arity, pool)
    }

    #[test]
    fn crud_cycle() {
        let t = table(2);
        t.insert(1, &[10, 20]).unwrap();
        assert_eq!(t.get(1).unwrap(), vec![10, 20]);
        assert_eq!(t.update(1, &[11, 21]).unwrap(), vec![10, 20]);
        assert_eq!(t.get(1).unwrap(), vec![11, 21]);
        assert_eq!(t.delete(1).unwrap(), vec![11, 21]);
        assert_eq!(t.get(1).unwrap_err(), StorageError::KeyNotFound(1));
    }

    #[test]
    fn duplicate_key_rejected() {
        let t = table(1);
        t.insert(5, &[1]).unwrap();
        assert_eq!(t.insert(5, &[2]).unwrap_err(), StorageError::DuplicateKey(5));
        assert_eq!(t.get(5).unwrap(), vec![1]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_enforced() {
        let t = table(2);
        assert!(matches!(
            t.insert(1, &[1]).unwrap_err(),
            StorageError::ArityMismatch { expected: 2, got: 1 }
        ));
    }

    #[test]
    fn range_scan_in_key_order() {
        let t = table(1);
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, &[k as i64 * 10]).unwrap();
        }
        let r = t.range(2, 8).unwrap();
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 5, 7]);
        assert_eq!(r[1].1, vec![50]);
    }

    #[test]
    fn scan_visits_every_row() {
        let t = table(1);
        for k in 0..500u64 {
            t.insert(k, &[k as i64]).unwrap();
        }
        let mut sum = 0i64;
        let mut n = 0;
        t.scan(|_, row| {
            sum += row[0];
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 500);
        assert_eq!(sum, (0..500).sum());
    }

    #[test]
    fn update_missing_key_fails() {
        let t = table(1);
        assert_eq!(t.update(99, &[1]).unwrap_err(), StorageError::KeyNotFound(99));
        assert_eq!(t.delete(99).unwrap_err(), StorageError::KeyNotFound(99));
    }

    #[test]
    fn secondaries_track_crud() {
        use crate::schema::{IndexDef, IndexKind};
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(128, disk));
        let t = Table::create_indexed(
            1,
            "t",
            2,
            vec![
                IndexDef { id: 0, name: "h0".into(), col: 0, kind: IndexKind::Hash },
                IndexDef { id: 1, name: "r1".into(), col: 1, kind: IndexKind::Range },
            ],
            pool,
        );
        t.insert(1, &[10, 100]).unwrap();
        t.insert(2, &[10, 200]).unwrap();
        t.insert(3, &[30, 300]).unwrap();
        assert_eq!(t.secondary(0).unwrap().lookup_eq(10), vec![1, 2]);
        assert_eq!(t.secondary(1).unwrap().lookup_range(150, 350).unwrap(), vec![2, 3]);
        t.update(2, &[40, 250]).unwrap();
        assert_eq!(t.secondary(0).unwrap().lookup_eq(10), vec![1]);
        assert_eq!(t.secondary(0).unwrap().lookup_eq(40), vec![2]);
        t.delete(1).unwrap();
        assert_eq!(t.secondary(0).unwrap().lookup_eq(10), Vec::<u64>::new());
        // Duplicate insert must not disturb the winner's entries.
        assert!(t.insert(3, &[99, 99]).is_err());
        assert_eq!(t.secondary(0).unwrap().lookup_eq(30), vec![3]);
        assert_eq!(t.secondary(0).unwrap().lookup_eq(99), Vec::<u64>::new());
        // Rebuild from the heap converges to the same contents.
        let before: Vec<_> = t.secondaries().iter().map(|ix| ix.entries()).collect();
        t.rebuild_secondaries().unwrap();
        let after: Vec<_> = t.secondaries().iter().map(|ix| ix.entries()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn concurrent_updates_do_not_corrupt() {
        let t = Arc::new(table(1));
        for k in 0..16u64 {
            t.insert(k, &[0]).unwrap();
        }
        let mut handles = Vec::new();
        for id in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let k = (id + i) % 16;
                    // Read-modify-write without transactions: values may race,
                    // but structure must stay intact.
                    if let Ok(row) = t.get(k) {
                        let _ = t.update(k, &[row[0] + 1]);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 16);
        for k in 0..16u64 {
            assert_eq!(t.get(k).unwrap().len(), 1);
        }
    }
}
