//! Secondary indexes over single `i64` columns.
//!
//! A [`SecondaryIndex`] maps column values to primary-key sets, in one of two
//! shapes: a partitioned hash multimap ([`crate::hashindex::HashMultiIndex`],
//! equality only) or an ordered multimap (equality + range). Both are
//! maintained with set semantics — adding or removing a `(value, pk)` pair is
//! idempotent — so the same maintenance calls are safe from the logged write
//! path, from WAL redo during recovery, and from a replica re-applying a log
//! suffix after reinstalling its snapshot. Replaying any prefix twice
//! converges to identical contents instead of corrupting counts.
//!
//! Indexes are derived state: they are never checkpointed or shipped.
//! Recovery and replica bootstrap rebuild them from the heap
//! ([`crate::table::Table::rebuild_secondaries`]) and then keep them current
//! through redo, exactly like the primary B+tree.

use crate::hashindex::HashMultiIndex;
use crate::schema::{IndexDef, IndexKind};
use esdb_sync::RwLatch;
use std::cell::UnsafeCell;
use std::collections::{BTreeMap, BTreeSet};

/// Ordered multimap: a latched `BTreeMap` from column value to pk set.
struct RangeMulti {
    latch: RwLatch,
    map: UnsafeCell<BTreeMap<i64, BTreeSet<u64>>>,
}

unsafe impl Send for RangeMulti {}
unsafe impl Sync for RangeMulti {}

impl RangeMulti {
    fn new() -> Self {
        RangeMulti {
            latch: RwLatch::new(),
            map: UnsafeCell::new(BTreeMap::new()),
        }
    }

    fn add(&self, value: i64, pk: u64) -> bool {
        self.latch.lock_exclusive();
        let fresh = unsafe { &mut *self.map.get() }.entry(value).or_default().insert(pk);
        self.latch.unlock_exclusive();
        fresh
    }

    fn remove(&self, value: i64, pk: u64) -> bool {
        self.latch.lock_exclusive();
        let map = unsafe { &mut *self.map.get() };
        let hit = match map.get_mut(&value) {
            Some(set) => {
                let hit = set.remove(&pk);
                if set.is_empty() {
                    map.remove(&value);
                }
                hit
            }
            None => false,
        };
        self.latch.unlock_exclusive();
        hit
    }

    fn get(&self, value: i64) -> Vec<u64> {
        self.latch.lock_shared();
        let pks = unsafe { &*self.map.get() }
            .get(&value)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        self.latch.unlock_shared();
        pks
    }

    fn range(&self, lo: i64, hi: i64) -> Vec<u64> {
        // An empty window is a valid (empty) answer, not a panic —
        // `lo`/`hi` can arrive straight off the wire.
        if lo > hi {
            return Vec::new();
        }
        self.latch.lock_shared();
        let mut pks: Vec<u64> = Vec::new();
        for set in unsafe { &*self.map.get() }.range(lo..=hi).map(|(_, s)| s) {
            pks.extend(set.iter().copied());
        }
        self.latch.unlock_shared();
        pks.sort_unstable();
        pks.dedup();
        pks
    }

    fn len(&self) -> usize {
        self.latch.lock_shared();
        let n = unsafe { &*self.map.get() }.values().map(|s| s.len()).sum();
        self.latch.unlock_shared();
        n
    }

    fn entries(&self) -> Vec<(i64, Vec<u64>)> {
        self.latch.lock_shared();
        let all = unsafe { &*self.map.get() }
            .iter()
            .map(|(v, s)| (*v, s.iter().copied().collect()))
            .collect();
        self.latch.unlock_shared();
        all
    }

    fn clear(&self) {
        self.latch.lock_exclusive();
        unsafe { &mut *self.map.get() }.clear();
        self.latch.unlock_exclusive();
    }
}

enum Repr {
    Hash(HashMultiIndex),
    Range(RangeMulti),
}

/// One secondary index instance: an [`IndexDef`] plus its live contents.
pub struct SecondaryIndex {
    def: IndexDef,
    repr: Repr,
}

impl SecondaryIndex {
    /// Number of shards for hash-shaped indexes.
    const HASH_PARTITIONS: usize = 16;

    /// Builds an empty index for `def`.
    pub fn new(def: IndexDef) -> Self {
        let repr = match def.kind {
            IndexKind::Hash => Repr::Hash(HashMultiIndex::new(Self::HASH_PARTITIONS)),
            IndexKind::Range => Repr::Range(RangeMulti::new()),
        };
        SecondaryIndex { def, repr }
    }

    /// The declaration this index materializes.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// The indexed column's value in `row`, if the row is wide enough.
    fn col_value(&self, row: &[i64]) -> Option<i64> {
        row.get(self.def.col).copied()
    }

    /// Indexes `row` under primary key `pk`. Idempotent.
    pub fn insert_row(&self, pk: u64, row: &[i64]) {
        if let Some(v) = self.col_value(row) {
            match &self.repr {
                Repr::Hash(h) => {
                    h.add(v, pk);
                }
                Repr::Range(r) => {
                    r.add(v, pk);
                }
            }
        }
    }

    /// Un-indexes `row` under primary key `pk`. Idempotent.
    pub fn remove_row(&self, pk: u64, row: &[i64]) {
        if let Some(v) = self.col_value(row) {
            match &self.repr {
                Repr::Hash(h) => {
                    h.remove(v, pk);
                }
                Repr::Range(r) => {
                    r.remove(v, pk);
                }
            }
        }
    }

    /// Moves `pk` from its `before` image to its `after` image.
    pub fn update_row(&self, pk: u64, before: &[i64], after: &[i64]) {
        if self.col_value(before) == self.col_value(after) {
            return;
        }
        self.remove_row(pk, before);
        self.insert_row(pk, after);
    }

    /// Primary keys whose indexed column equals `value`, ascending.
    pub fn lookup_eq(&self, value: i64) -> Vec<u64> {
        match &self.repr {
            Repr::Hash(h) => h.get(value),
            Repr::Range(r) => r.get(value),
        }
    }

    /// Primary keys whose indexed column lies in `[lo, hi]`, ascending.
    /// `None` for hash-shaped indexes, which cannot serve ranges.
    pub fn lookup_range(&self, lo: i64, hi: i64) -> Option<Vec<u64>> {
        match &self.repr {
            Repr::Hash(_) => None,
            Repr::Range(r) => Some(r.range(lo, hi)),
        }
    }

    /// Total `(value, pk)` pairs.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Hash(h) => h.len(),
            Repr::Range(r) => r.len(),
        }
    }

    /// Returns `true` if the index holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical contents: every `(value, sorted pks)` group sorted by
    /// value. Two indexes with equal `entries()` are byte-identical under
    /// any serialization — this is what idempotence torture compares.
    pub fn entries(&self) -> Vec<(i64, Vec<u64>)> {
        match &self.repr {
            Repr::Hash(h) => h.entries(),
            Repr::Range(r) => r.entries(),
        }
    }

    /// Drops all contents (rebuild precursor).
    pub fn clear(&self) {
        match &self.repr {
            Repr::Hash(h) => h.clear(),
            Repr::Range(r) => r.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(kind: IndexKind) -> IndexDef {
        IndexDef {
            id: 0,
            name: "ix".into(),
            col: 1,
            kind,
        }
    }

    #[test]
    fn hash_and_range_agree_on_equality() {
        for kind in [IndexKind::Hash, IndexKind::Range] {
            let ix = SecondaryIndex::new(def(kind));
            ix.insert_row(10, &[0, 5]);
            ix.insert_row(11, &[0, 5]);
            ix.insert_row(12, &[0, -3]);
            assert_eq!(ix.lookup_eq(5), vec![10, 11]);
            assert_eq!(ix.lookup_eq(-3), vec![12]);
            assert_eq!(ix.lookup_eq(99), Vec::<u64>::new());
            ix.update_row(11, &[0, 5], &[0, -3]);
            assert_eq!(ix.lookup_eq(5), vec![10]);
            assert_eq!(ix.lookup_eq(-3), vec![11, 12]);
            ix.remove_row(12, &[0, -3]);
            assert_eq!(ix.lookup_eq(-3), vec![11]);
        }
    }

    #[test]
    fn range_lookup_spans_values() {
        let ix = SecondaryIndex::new(def(IndexKind::Range));
        for pk in 0..10u64 {
            ix.insert_row(pk, &[0, pk as i64 - 5]);
        }
        assert_eq!(ix.lookup_range(-2, 1).unwrap(), vec![3, 4, 5, 6]);
        assert_eq!(ix.lookup_range(i64::MIN, i64::MAX).unwrap().len(), 10);
        let hash = SecondaryIndex::new(def(IndexKind::Hash));
        assert!(hash.lookup_range(0, 1).is_none());
    }

    #[test]
    fn maintenance_is_idempotent() {
        let ix = SecondaryIndex::new(def(IndexKind::Range));
        ix.insert_row(1, &[0, 7]);
        ix.insert_row(1, &[0, 7]);
        assert_eq!(ix.len(), 1);
        ix.remove_row(1, &[0, 7]);
        ix.remove_row(1, &[0, 7]);
        assert!(ix.is_empty());
    }

    #[test]
    fn narrow_rows_are_skipped() {
        let ix = SecondaryIndex::new(def(IndexKind::Range));
        ix.insert_row(1, &[0]);
        assert!(ix.is_empty());
    }
}
