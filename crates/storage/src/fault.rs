//! Deterministic fault injection for the page store.
//!
//! [`FaultInjector`] wraps any [`PageStore`] and injects the failure modes a
//! real device exhibits — transient read/write errors, torn page writes, and
//! a crash latch that kills the device after a configured number of writes.
//! Every decision comes from a seeded generator, so a failing torture run
//! replays bit-identically from its seed.
//!
//! The injector is the storage half of the crash-fault torture rig; the WAL
//! side (`esdb_wal::buffer::LogFault`) reuses [`FaultRng`] so both devices
//! misbehave from one deterministic stream family.

use crate::disk::PageStore;
use crate::error::IoOp;
use crate::page::{Page, PAGE_SIZE};
use crate::rid::PageId;
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::sync::Arc;

/// A tiny self-contained xorshift64* generator for fault decisions.
///
/// Kept separate from the workload crate's `Rng` (which is layered above
/// storage) but uses the same algorithm, so fault schedules are stable across
/// platforms and releases.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from `seed` (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw: `true` with probability `num / denom`.
    #[inline]
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        num > 0 && self.below(denom) < num
    }
}

/// What the injector should break, and how often.
///
/// Probabilities are per ten thousand operations so low rates stay integral.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Probability (per 10⁴ reads) of a transient read error.
    pub read_error_per_10k: u64,
    /// Probability (per 10⁴ writes) of a transient write error.
    pub write_error_per_10k: u64,
    /// Probability (per 10⁴) that a failed write *tears*: a random prefix of
    /// the new page reaches the medium before the error is reported. A retry
    /// that eventually succeeds overwrites the torn state.
    pub torn_write_per_10k: u64,
    /// After this many successful page writes the device trips its crash
    /// latch: the in-flight write may tear, and every operation afterwards
    /// fails with [`StorageError::DeviceFailed`] until [`FaultInjector::heal`].
    pub crash_after_writes: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            read_error_per_10k: 0,
            write_error_per_10k: 0,
            torn_write_per_10k: 0,
            crash_after_writes: None,
        }
    }
}

/// Counters describing what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads that reached the inner store.
    pub reads: u64,
    /// Writes that reached the inner store intact.
    pub writes: u64,
    /// Transient read errors injected.
    pub injected_read_errors: u64,
    /// Transient write errors injected.
    pub injected_write_errors: u64,
    /// Writes that left a torn page behind.
    pub torn_writes: u64,
    /// Whether the crash latch is currently tripped.
    pub device_failed: bool,
}

struct FaultState {
    rng: FaultRng,
    writes_done: u64,
    crashed: bool,
    stats: FaultStats,
}

/// A [`PageStore`] decorator that injects deterministic faults.
pub struct FaultInjector {
    inner: Arc<dyn PageStore>,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

impl FaultInjector {
    /// Wraps `inner` with the fault plan in `config`.
    pub fn new(inner: Arc<dyn PageStore>, config: FaultConfig) -> Self {
        let rng = FaultRng::new(config.seed);
        FaultInjector {
            inner,
            config,
            state: Mutex::new(FaultState {
                rng,
                writes_done: 0,
                crashed: false,
                stats: FaultStats::default(),
            }),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn PageStore> {
        &self.inner
    }

    /// Injection counters.
    pub fn stats(&self) -> FaultStats {
        let st = self.state.lock();
        let mut stats = st.stats;
        stats.device_failed = st.crashed;
        stats
    }

    /// Simulated restart: clears the crash latch (the data already on the
    /// medium — including any torn page — stays as it is).
    pub fn heal(&self) {
        self.state.lock().crashed = false;
    }

    /// Persists `page[..cut]` over the current on-medium image of `id` — the
    /// torn write: a prefix of the new page made it, the tail is still old.
    fn tear(&self, id: PageId, page: &Page, cut: usize) -> Result<()> {
        let mut merged = Page::new();
        self.inner.read(id, &mut merged)?;
        merged.as_bytes_mut()[..cut].copy_from_slice(&page.as_bytes()[..cut]);
        self.inner.write(id, &merged)
    }
}

impl PageStore for FaultInjector {
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn read(&self, id: PageId, out: &mut Page) -> Result<()> {
        {
            let mut st = self.state.lock();
            if st.crashed {
                return Err(StorageError::DeviceFailed);
            }
            if st.rng.chance(self.config.read_error_per_10k, 10_000) {
                st.stats.injected_read_errors += 1;
                return Err(StorageError::TransientIo { op: IoOp::Read });
            }
            st.stats.reads += 1;
        }
        self.inner.read(id, out)
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        let action = {
            let mut st = self.state.lock();
            if st.crashed {
                return Err(StorageError::DeviceFailed);
            }
            if self
                .config
                .crash_after_writes
                .is_some_and(|n| st.writes_done >= n)
            {
                // The crash point: the in-flight write tears (a random prefix
                // reaches the medium), then the device is dead.
                st.crashed = true;
                st.stats.torn_writes += 1;
                let cut = st.rng.below(PAGE_SIZE as u64 + 1) as usize;
                Some((cut, StorageError::DeviceFailed))
            } else if st.rng.chance(self.config.write_error_per_10k, 10_000) {
                st.stats.injected_write_errors += 1;
                if st.rng.chance(self.config.torn_write_per_10k, 10_000) {
                    st.stats.torn_writes += 1;
                    let cut = st.rng.below(PAGE_SIZE as u64 + 1) as usize;
                    Some((cut, StorageError::TransientIo { op: IoOp::Write }))
                } else {
                    return Err(StorageError::TransientIo { op: IoOp::Write });
                }
            } else {
                st.writes_done += 1;
                st.stats.writes += 1;
                None
            }
        };
        match action {
            Some((cut, err)) => {
                let _ = self.tear(id, page, cut);
                Err(err)
            }
            None => self.inner.write(id, page),
        }
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn rig(config: FaultConfig) -> (Arc<InMemoryDisk>, FaultInjector) {
        let disk = Arc::new(InMemoryDisk::new());
        let injector = FaultInjector::new(disk.clone(), config);
        (disk, injector)
    }

    #[test]
    fn passthrough_when_quiet() {
        let (_disk, inj) = rig(FaultConfig::default());
        let id = inj.allocate();
        let mut page = Page::new();
        page.insert(b"safe").unwrap();
        inj.write(id, &page).unwrap();
        let mut back = Page::new();
        inj.read(id, &mut back).unwrap();
        assert_eq!(back.get(0).unwrap(), b"safe");
        let s = inj.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert!(!s.device_failed);
    }

    #[test]
    fn transient_errors_are_injected_deterministically() {
        let run = |seed| {
            let (_disk, inj) = rig(FaultConfig {
                seed,
                read_error_per_10k: 3_000,
                ..FaultConfig::default()
            });
            let id = inj.allocate();
            let page = Page::new();
            inj.write(id, &page).unwrap();
            let mut out = Page::new();
            (0..200)
                .map(|_| inj.read(id, &mut out).is_err())
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        assert!(a.iter().any(|e| *e), "some reads fail");
        assert!(a.iter().any(|e| !*e), "some reads succeed");
        assert_ne!(a, run(8), "different seed, different schedule");
    }

    #[test]
    fn crash_latch_kills_the_device_until_heal() {
        let (_disk, inj) = rig(FaultConfig {
            crash_after_writes: Some(2),
            ..FaultConfig::default()
        });
        let id = inj.allocate();
        let page = Page::new();
        inj.write(id, &page).unwrap();
        inj.write(id, &page).unwrap();
        assert_eq!(inj.write(id, &page).unwrap_err(), StorageError::DeviceFailed);
        let mut out = Page::new();
        assert_eq!(inj.read(id, &mut out).unwrap_err(), StorageError::DeviceFailed);
        assert!(inj.stats().device_failed);
        inj.heal();
        inj.read(id, &mut out).unwrap();
    }

    #[test]
    fn torn_write_leaves_prefix_of_new_page() {
        // Force tearing on every write error and make every write fail once.
        let (disk, inj) = rig(FaultConfig {
            seed: 42,
            write_error_per_10k: 10_000,
            torn_write_per_10k: 10_000,
            ..FaultConfig::default()
        });
        let id = inj.allocate();
        let mut page = Page::new();
        page.insert(&[0xAB; 64]).unwrap();
        let err = inj.write(id, &page).unwrap_err();
        assert_eq!(err, StorageError::TransientIo { op: IoOp::Write });
        assert_eq!(inj.stats().torn_writes, 1);
        // The medium holds a prefix of the new image over the old zero page.
        let mut medium = Page::new();
        disk.read(id, &mut medium).unwrap();
        let new = page.as_bytes();
        let got = medium.as_bytes();
        let matching = got.iter().zip(new.iter()).take_while(|(a, b)| a == b).count();
        assert!(got[matching..].iter().all(|b| *b == 0), "tail is the old page");
    }
}
