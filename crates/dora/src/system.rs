//! The client-facing DORA façade.

use crate::action::Action;
use crate::executor::{Executor, ExecutorStats, Msg, Package};
use crate::router::Router;
use crate::rvp::{FailKind, Rvp, Verdict};
use crossbeam::channel::{unbounded, Sender};
use esdb_storage::schema::TableId;
use esdb_storage::Table;
use esdb_wal::{LogBody, Wal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a DORA transaction ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoraError {
    /// A logical error (missing/duplicate key) aborted the transaction.
    Logical,
    /// Conflict retries were exhausted.
    TooManyRetries,
}

impl std::fmt::Display for DoraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DoraError::Logical => write!(f, "logical failure"),
            DoraError::TooManyRetries => write!(f, "conflict retries exhausted"),
        }
    }
}

impl std::error::Error for DoraError {}

/// Aggregate statistics across all executors plus the commit path.
#[derive(Debug, Default, Clone, Copy)]
pub struct DoraStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts (wait-die deaths + logical failures).
    pub aborts: u64,
    /// Packages executed.
    pub executed: u64,
    /// Packages parked at least once.
    pub parked: u64,
    /// Packages killed by wait-die.
    pub died: u64,
}

/// A running DORA engine: one executor thread per logical partition.
pub struct DoraSystem {
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<ExecutorStats>>,
    router: Router,
    wal: Arc<Wal>,
    next_txn: AtomicU64,
    elr: bool,
    max_retries: usize,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl DoraSystem {
    /// Default bound on wait-die retries per transaction.
    pub const DEFAULT_RETRIES: usize = 1_000;

    /// Spawns `partitions` executors over `tables`. `elr` releases keys
    /// before the commit record is durable (the client still waits).
    pub fn new(
        partitions: usize,
        tables: HashMap<TableId, Arc<Table>>,
        wal: Arc<Wal>,
        elr: bool,
    ) -> Self {
        let partitions = partitions.max(1);
        let mut senders = Vec::with_capacity(partitions);
        let mut handles = Vec::with_capacity(partitions);
        for i in 0..partitions {
            let (tx, rx) = unbounded();
            let exec = Executor::new(i, rx, tables.clone(), Arc::clone(&wal));
            senders.push(tx);
            handles.push(std::thread::spawn(move || exec.run()));
        }
        // Deterministic checking: wait until every executor registered with
        // the scheduler, so executor admission cannot race the first package.
        esdb_sync::sched::sync_spawned(partitions);
        DoraSystem {
            senders,
            handles,
            router: Router::new(partitions),
            wal,
            next_txn: AtomicU64::new(1),
            elr,
            max_retries: Self::DEFAULT_RETRIES,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// Number of partitions / executor threads.
    pub fn partitions(&self) -> usize {
        self.senders.len()
    }

    /// Executes one transaction expressed as an action list. On success,
    /// returns one entry per action: `Some(row)` for actions that produce a
    /// row (reads, adds, deletes), `None` otherwise.
    pub fn execute(&self, actions: Vec<Action>) -> Result<Vec<Option<Vec<i64>>>, DoraError> {
        let priority = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let mut attempt_txn = priority;
        for _ in 0..=self.max_retries {
            // Group actions by partition, remembering global indices.
            let mut groups: HashMap<usize, Vec<(usize, Action)>> = HashMap::new();
            for (idx, a) in actions.iter().enumerate() {
                groups
                    .entry(self.router.route(a.table, a.key))
                    .or_default()
                    .push((idx, a.clone()));
            }
            let mut involved: Vec<usize> = groups.keys().copied().collect();
            involved.sort_unstable();
            let rvp = Arc::new(Rvp::new(groups.len(), actions.len()));
            // Sorted dispatch with a yield before every send: under
            // deterministic checking the scheduler can interleave other
            // clients between a transaction's per-partition packages.
            for &part in &involved {
                esdb_sync::sched::yield_now(esdb_sync::YieldPoint::DoraDispatch);
                self.senders[part]
                    .send(Msg::Package(Package {
                        txn: attempt_txn,
                        priority,
                        rvp: Arc::clone(&rvp),
                        actions: groups.remove(&part).expect("sorted key"),
                    }))
                    .expect("executor alive");
            }
            match rvp.wait() {
                Verdict::Commit => {
                    let has_writes = actions.iter().any(|a| !a.is_read_only());
                    if self.elr {
                        // Keys released before the flush; client still waits.
                        let range = has_writes
                            .then(|| self.wal.commit_no_flush(attempt_txn, 0));
                        self.broadcast_complete(&involved, attempt_txn, true, None);
                        if let Some(range) = range {
                            self.wal.wait_durable(range.end);
                        }
                    } else {
                        if has_writes {
                            self.wal.commit(attempt_txn, 0);
                        }
                        self.broadcast_complete(&involved, attempt_txn, true, None);
                    }
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return Ok(rvp.take_results());
                }
                Verdict::Abort(kind) => {
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    // Aborts are acknowledged: the client must not observe
                    // leftover partial effects after this call returns.
                    let ack = Arc::new(Rvp::new(involved.len(), 0));
                    self.broadcast_complete(&involved, attempt_txn, false, Some(&ack));
                    ack.wait();
                    self.wal.append(attempt_txn, 0, &LogBody::Abort);
                    if kind == FailKind::Logical {
                        return Err(DoraError::Logical);
                    }
                    // Retry with a fresh attempt id but the original
                    // priority, so the oldest transaction eventually wins.
                    attempt_txn = self.next_txn.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            }
        }
        Err(DoraError::TooManyRetries)
    }

    fn broadcast_complete(&self, involved: &[usize], txn: u64, commit: bool, ack: Option<&Arc<Rvp>>) {
        for &p in involved {
            esdb_sync::sched::yield_now(esdb_sync::YieldPoint::DoraDispatch);
            self.senders[p]
                .send(Msg::Complete {
                    txn,
                    commit,
                    ack: ack.map(Arc::clone),
                })
                .expect("executor alive");
        }
    }

    /// Shuts down every executor and returns aggregate statistics.
    pub fn shutdown(mut self) -> DoraStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> DoraStats {
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop);
        }
        let mut stats = DoraStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            ..Default::default()
        };
        for h in self.handles.drain(..) {
            if let Ok(es) = h.join() {
                stats.executed += es.executed;
                stats.parked += es.parked;
                stats.died += es.died;
            }
        }
        stats
    }

    /// Commit/abort counters without shutdown.
    pub fn quick_stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }
}

impl Drop for DoraSystem {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esdb_storage::{BufferPool, InMemoryDisk};
    use esdb_wal::LogPolicy;

    fn setup(partitions: usize) -> (DoraSystem, Arc<Table>) {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(256, disk));
        let table = Arc::new(Table::create(1, "accounts", 2, pool));
        let mut tables = HashMap::new();
        tables.insert(1u32, table.clone());
        let wal = Arc::new(Wal::new(LogPolicy::Consolidated, None));
        (DoraSystem::new(partitions, tables, wal, false), table)
    }

    #[test]
    fn single_action_roundtrip() {
        let (sys, table) = setup(4);
        sys.execute(vec![Action::insert(1, 7, vec![70, 0])]).unwrap();
        assert_eq!(table.get(7).unwrap(), vec![70, 0]);
        let res = sys.execute(vec![Action::read(1, 7)]).unwrap();
        assert_eq!(res[0], Some(vec![70, 0]));
    }

    #[test]
    fn multi_partition_transfer_commits_atomically() {
        let (sys, table) = setup(4);
        sys.execute(vec![
            Action::insert(1, 1, vec![100, 0]),
            Action::insert(1, 2, vec![100, 0]),
        ])
        .unwrap();
        sys.execute(vec![
            Action::add(1, 1, 0, -25),
            Action::add(1, 2, 0, 25),
        ])
        .unwrap();
        assert_eq!(table.get(1).unwrap()[0], 75);
        assert_eq!(table.get(2).unwrap()[0], 125);
    }

    #[test]
    fn logical_failure_rolls_back_all_partitions() {
        let (sys, table) = setup(4);
        sys.execute(vec![Action::insert(1, 1, vec![10, 0])]).unwrap();
        // Second action hits a missing key → whole txn must abort.
        let err = sys
            .execute(vec![
                Action::add(1, 1, 0, 5),
                Action::add(1, 999, 0, 5),
            ])
            .unwrap_err();
        assert_eq!(err, DoraError::Logical);
        assert_eq!(table.get(1).unwrap()[0], 10, "partial effect undone");
    }

    #[test]
    fn duplicate_insert_is_logical_failure() {
        let (sys, _table) = setup(2);
        sys.execute(vec![Action::insert(1, 5, vec![1, 1])]).unwrap();
        let err = sys
            .execute(vec![Action::insert(1, 5, vec![2, 2])])
            .unwrap_err();
        assert_eq!(err, DoraError::Logical);
    }

    #[test]
    fn delete_returns_before_image() {
        let (sys, table) = setup(2);
        sys.execute(vec![Action::insert(1, 3, vec![33, 0])]).unwrap();
        let res = sys.execute(vec![Action::delete(1, 3)]).unwrap();
        assert_eq!(res[0], Some(vec![33, 0]));
        assert!(table.get(3).is_err());
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let (sys, table) = setup(4);
        const ACCOUNTS: u64 = 16;
        for k in 0..ACCOUNTS {
            sys.execute(vec![Action::insert(1, k, vec![1_000, 0])]).unwrap();
        }
        let sys = Arc::new(sys);
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let sys = Arc::clone(&sys);
            handles.push(std::thread::spawn(move || {
                let mut rng = tid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..200 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (rng >> 33) % ACCOUNTS;
                    let to = (from + 1 + (rng >> 17) % (ACCOUNTS - 1)) % ACCOUNTS;
                    sys.execute(vec![
                        Action::add(1, from, 0, -7),
                        Action::add(1, to, 0, 7),
                    ])
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut total = 0;
        table.scan(|_, row| total += row[0]).unwrap();
        assert_eq!(total, (ACCOUNTS * 1_000) as i64);
        let (commits, _aborts) = sys.quick_stats();
        assert!(commits >= ACCOUNTS + 4 * 200);
    }

    #[test]
    fn commit_record_is_durable() {
        let (sys, _table) = setup(2);
        sys.execute(vec![Action::insert(1, 1, vec![1, 1])]).unwrap();
        let records = sys.wal.durable_records();
        assert!(records.iter().any(|r| matches!(r.body, LogBody::Commit)));
        assert!(records.iter().any(|r| matches!(r.body, LogBody::Insert { .. })));
    }

    #[test]
    fn elr_mode_also_durable() {
        let disk = Arc::new(InMemoryDisk::new());
        let pool = Arc::new(BufferPool::new(64, disk));
        let table = Arc::new(Table::create(1, "t", 1, pool));
        let mut tables = HashMap::new();
        tables.insert(1u32, table.clone());
        let wal = Arc::new(Wal::new(LogPolicy::Consolidated, None));
        let sys = DoraSystem::new(2, tables, wal, true);
        sys.execute(vec![Action::insert(1, 1, vec![5])]).unwrap();
        assert!(sys
            .wal
            .durable_records()
            .iter()
            .any(|r| matches!(r.body, LogBody::Commit)));
    }

    #[test]
    fn shutdown_reports_stats() {
        let (sys, _table) = setup(3);
        for k in 0..50 {
            sys.execute(vec![Action::insert(1, k, vec![0, 0])]).unwrap();
        }
        let stats = sys.shutdown();
        assert_eq!(stats.commits, 50);
        assert!(stats.executed >= 50);
    }
}

#[cfg(test)]
mod repro_tests {
    use super::*;
    use esdb_storage::{BufferPool, InMemoryDisk};
    use esdb_wal::LogPolicy;

    #[test]
    fn insert_then_failing_delete_rolls_back() {
        for parts in [1usize, 2, 3, 4] {
            let disk = Arc::new(InMemoryDisk::new());
            let pool = Arc::new(BufferPool::new(64, disk));
            let table = Arc::new(Table::create(0, "t", 1, pool));
            let mut tables = HashMap::new();
            tables.insert(0u32, table.clone());
            let wal = Arc::new(Wal::new(LogPolicy::Consolidated, None));
            let sys = DoraSystem::new(parts, tables, wal, false);
            let err = sys
                .execute(vec![
                    Action::insert(0, 0, vec![2]),
                    Action::delete(0, 2),
                ])
                .unwrap_err();
            assert_eq!(err, DoraError::Logical, "parts={parts}");
            // Aborts are acknowledged: the rollback is visible immediately.
            assert!(table.get(0).is_err(), "parts={parts}: insert must be undone");
        }
    }
}
