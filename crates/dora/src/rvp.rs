//! Rendezvous points: per-transaction completion barriers.
//!
//! A transaction that fans out to `n` partitions creates one RVP; each
//! executor reports its package's outcome, and the submitting client blocks
//! on the RVP until either all packages succeeded or any one failed.

use std::sync::{Condvar, Mutex};

/// Why a package failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Wait-die conflict death: transient, the client should retry.
    Conflict,
    /// Logical error (missing key, duplicate key): retrying is futile.
    Logical,
}

/// Global transaction verdict at the rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every package executed.
    Commit,
    /// Some package failed.
    Abort(FailKind),
}

struct RvpState {
    remaining: usize,
    aborted: Option<FailKind>,
    /// Read results, indexed by the action's position in the original
    /// transaction. `None` for non-reading actions (or not yet filled).
    results: Vec<Option<Vec<i64>>>,
}

/// A rendezvous point shared between the client and the involved executors.
pub struct Rvp {
    state: Mutex<RvpState>,
    cv: Condvar,
}

impl Rvp {
    /// Creates an RVP expecting `packages` completions and carrying result
    /// slots for `actions` actions.
    pub fn new(packages: usize, actions: usize) -> Self {
        Rvp {
            state: Mutex::new(RvpState {
                remaining: packages,
                aborted: None,
                results: vec![None; actions],
            }),
            cv: Condvar::new(),
        }
    }

    /// An executor reports a successful package, depositing its reads.
    pub fn complete(&self, reads: Vec<(usize, Vec<i64>)>) {
        let mut st = self.state.lock().unwrap();
        for (idx, row) in reads {
            st.results[idx] = Some(row);
        }
        st.remaining = st.remaining.saturating_sub(1);
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// An executor reports failure: the transaction aborts immediately,
    /// without waiting for the other packages.
    pub fn fail(&self, kind: FailKind) {
        let mut st = self.state.lock().unwrap();
        // A logical failure verdict must not be masked by a later conflict.
        if st.aborted != Some(FailKind::Logical) {
            st.aborted = Some(kind);
        }
        self.cv.notify_all();
    }

    /// Client wait: blocks until every package completed or any failed.
    pub fn wait(&self) -> Verdict {
        // Deterministic checking: a virtual client blocks on the scheduler
        // seam so the rendezvous becomes an explorable interleaving edge.
        if esdb_sync::sched::block_until(esdb_sync::YieldPoint::RvpWait, || {
            let st = self.state.lock().unwrap();
            st.remaining == 0 || st.aborted.is_some()
        }) {
            let st = self.state.lock().unwrap();
            return match st.aborted {
                Some(kind) => Verdict::Abort(kind),
                None => Verdict::Commit,
            };
        }
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 && st.aborted.is_none() {
            st = self.cv.wait(st).unwrap();
        }
        match st.aborted {
            Some(kind) => Verdict::Abort(kind),
            None => Verdict::Commit,
        }
    }

    /// Takes the collected read results (call after a `Commit` verdict).
    pub fn take_results(&self) -> Vec<Option<Vec<i64>>> {
        std::mem::take(&mut self.state.lock().unwrap().results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn all_completions_yield_commit() {
        let rvp = Arc::new(Rvp::new(2, 3));
        let r2 = Arc::clone(&rvp);
        let h = std::thread::spawn(move || {
            r2.complete(vec![(0, vec![1])]);
            r2.complete(vec![(2, vec![3])]);
        });
        assert_eq!(rvp.wait(), Verdict::Commit);
        h.join().unwrap();
        let res = rvp.take_results();
        assert_eq!(res[0], Some(vec![1]));
        assert_eq!(res[1], None);
        assert_eq!(res[2], Some(vec![3]));
    }

    #[test]
    fn any_failure_yields_abort_immediately() {
        let rvp = Arc::new(Rvp::new(5, 0));
        let r2 = Arc::clone(&rvp);
        let h = std::thread::spawn(move || r2.fail(FailKind::Conflict));
        assert_eq!(rvp.wait(), Verdict::Abort(FailKind::Conflict));
        h.join().unwrap();
    }

    #[test]
    fn logical_failure_is_not_masked() {
        let rvp = Rvp::new(3, 0);
        rvp.fail(FailKind::Logical);
        rvp.fail(FailKind::Conflict);
        assert_eq!(rvp.wait(), Verdict::Abort(FailKind::Logical));
    }

    #[test]
    fn zero_package_txn_commits_trivially() {
        let rvp = Rvp::new(0, 0);
        assert_eq!(rvp.wait(), Verdict::Commit);
    }
}
