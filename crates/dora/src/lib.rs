//! # esdb-dora — data-oriented transaction execution
//!
//! The keynote: *"we need to ensure consistency by decoupling transaction
//! data access from process assignment"*. Conventional engines assign a
//! *transaction* to a thread, so every thread touches every datum and all
//! coordination funnels through the centralized lock manager. DORA inverts
//! the coupling: each worker thread *owns a logical partition of the data*,
//! and a transaction is decomposed into **actions** that are routed to the
//! owning executors. Within a partition there is no physical concurrency at
//! all, so "locking" degenerates to thread-local bookkeeping — no latches,
//! no shared lock table, no coherence traffic.
//!
//! Components:
//!
//! * [`action`] — the action vocabulary transactions are decomposed into
//!   (read, write, arithmetic read-modify-write, insert, delete).
//! * [`router`] — key → partition assignment.
//! * [`rvp`] — rendezvous points: the synchronization objects that collect
//!   per-partition completions and deliver the transaction verdict.
//! * [`executor`] — the per-partition worker loop with its thread-local lock
//!   table, undo buffers, and wait-die conflict resolution (older waits,
//!   younger aborts — cycles are impossible).
//! * [`system`] — the client-facing façade: build an action list, call
//!   [`system::DoraSystem::execute`], get row results back.
//!
//! Cross-partition atomicity: locks (thread-local) are held until the client
//! observes the global verdict and broadcasts `Complete{commit}`; aborts
//! replay per-executor undo buffers. Durability: executors append ordinary
//! WAL records as they apply actions; the client appends the commit record
//! and flushes before acknowledging (or after releasing, with ELR).

pub mod action;
pub mod executor;
pub mod router;
pub mod rvp;
pub mod system;

pub use action::{Action, ActionOp};
pub use router::Router;
pub use system::{DoraError, DoraStats, DoraSystem};

/// Test-only fault seams (feature `chaos`). Runtime flags, default off:
/// compiling the feature in changes nothing until a checker flips a flag.
#[cfg(feature = "chaos")]
pub mod chaos {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DISABLE_WAIT_DIE: AtomicBool = AtomicBool::new(false);

    /// Break wait-die conflict resolution: conflicting transactions co-own
    /// keys instead of parking/dying. Used by esdb-check's mutation tests.
    pub fn set_disable_wait_die(on: bool) {
        DISABLE_WAIT_DIE.store(on, Ordering::SeqCst);
    }

    pub(crate) fn wait_die_disabled() -> bool {
        DISABLE_WAIT_DIE.load(Ordering::SeqCst)
    }
}
