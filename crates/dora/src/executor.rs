//! The per-partition executor: a worker thread that owns its keys.
//!
//! Because at most one thread ever operates on a partition's keys, the
//! "lock table" here is a plain single-threaded `HashMap` — the whole point
//! of DORA. Cross-partition transactions still need transaction-duration
//! ownership, so keys stay assigned to a transaction until the client
//! broadcasts the global verdict (`Complete`), and conflicts between
//! concurrent multi-partition transactions are resolved **wait-die** on the
//! transaction's priority (its first-attempt id): an older requester parks
//! behind the key, a younger one dies and retries. Young never waits on old,
//! so waits-for cycles cannot form — no deadlock detection needed at all.

use crate::action::{Action, ActionOp};
use crate::rvp::{FailKind, Rvp};
use crossbeam::channel::Receiver;
use esdb_storage::schema::TableId;
use esdb_storage::Table;
use esdb_wal::{LogBody, Wal};
use std::collections::HashMap;
use std::sync::Arc;

/// A transaction's actions destined for one partition.
pub struct Package {
    /// WAL/locking identity of this attempt.
    pub txn: u64,
    /// Wait-die priority: the id of the *first* attempt (smaller = older).
    pub priority: u64,
    /// Shared rendezvous point.
    pub rvp: Arc<Rvp>,
    /// `(global action index, action)` pairs.
    pub actions: Vec<(usize, Action)>,
}

/// Messages an executor consumes.
pub enum Msg {
    /// Execute a transaction's actions for this partition.
    Package(Package),
    /// Global verdict: release the transaction's keys, undoing if `!commit`.
    Complete {
        /// Transaction (attempt) id.
        txn: u64,
        /// `true` to keep effects, `false` to roll back.
        commit: bool,
        /// Optional acknowledgment barrier: signalled once the verdict is
        /// fully applied (aborts are acknowledged so the client's next
        /// operation observes the rollback).
        ack: Option<Arc<Rvp>>,
    },
    /// Shut the executor down.
    Stop,
}

type Key = (TableId, u64);

enum UndoOp {
    Insert { table: TableId, key: u64 },
    Update { table: TableId, key: u64, before: Vec<i64> },
    Delete { table: TableId, key: u64, before: Vec<i64> },
}

/// Executor-internal counters, reported back through the system.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExecutorStats {
    /// Packages executed to completion.
    pub executed: u64,
    /// Packages parked at least once (older txn waiting).
    pub parked: u64,
    /// Packages killed by wait-die (younger txn).
    pub died: u64,
}

pub(crate) struct Executor {
    id: usize,
    rx: Receiver<Msg>,
    tables: HashMap<TableId, Arc<Table>>,
    wal: Arc<Wal>,
    /// key → (owner txn, owner priority).
    locks: HashMap<Key, (u64, u64)>,
    /// Parked packages, keyed by the key they block on.
    waiters: HashMap<Key, Vec<Package>>,
    /// Keys owned per transaction.
    owned: HashMap<u64, Vec<Key>>,
    /// Undo buffer per transaction.
    undo: HashMap<u64, Vec<UndoOp>>,
    pub(crate) stats: ExecutorStats,
}

impl Executor {
    pub(crate) fn new(
        id: usize,
        rx: Receiver<Msg>,
        tables: HashMap<TableId, Arc<Table>>,
        wal: Arc<Wal>,
    ) -> Self {
        Executor {
            id,
            rx,
            tables,
            wal,
            locks: HashMap::new(),
            waiters: HashMap::new(),
            owned: HashMap::new(),
            undo: HashMap::new(),
            stats: ExecutorStats::default(),
        }
    }

    /// Stable virtual-thread tags for executors under deterministic checking
    /// (client threads use small tags; executors live in their own range).
    pub const SCHED_TAG_BASE: u64 = 1_000;

    /// The executor main loop.
    pub(crate) fn run(mut self) -> ExecutorStats {
        let hooked = esdb_sync::sched::register_spawned(Self::SCHED_TAG_BASE + self.id as u64);
        while let Some(msg) = Self::next_msg(&self.rx) {
            match msg {
                Msg::Package(pkg) => self.handle_package(pkg),
                Msg::Complete { txn, commit, ack } => {
                    self.handle_complete(txn, commit);
                    if let Some(ack) = ack {
                        ack.complete(Vec::new());
                    }
                }
                Msg::Stop => break,
            }
        }
        if hooked {
            esdb_sync::sched::deregister_spawned();
        }
        self.stats
    }

    /// Receives the next message. Under deterministic checking this blocks on
    /// the scheduler seam (one message handled per scheduler step); otherwise
    /// it is a plain blocking receive.
    fn next_msg(rx: &Receiver<Msg>) -> Option<Msg> {
        if !esdb_sync::sched::active() {
            return rx.recv().ok();
        }
        loop {
            let governed = esdb_sync::sched::block_until(
                esdb_sync::YieldPoint::ExecutorRecv,
                || !rx.is_empty() || rx.is_disconnected(),
            );
            if !governed {
                return rx.recv().ok();
            }
            match rx.try_recv() {
                Ok(msg) => return Some(msg),
                Err(crossbeam::channel::TryRecvError::Disconnected) => return None,
                // Lost a race with nobody (single scheduler): just re-block.
                Err(crossbeam::channel::TryRecvError::Empty) => {}
            }
        }
    }

    fn handle_package(&mut self, pkg: Package) {
        // Phase 1: acquire thread-local ownership of every key.
        for (_, action) in &pkg.actions {
            let k = (action.table, action.key);
            match self.locks.get(&k) {
                None => {
                    self.locks.insert(k, (pkg.txn, pkg.priority));
                    self.owned.entry(pkg.txn).or_default().push(k);
                }
                Some(&(owner, _)) if owner == pkg.txn => {}
                Some(&(_, owner_prio)) => {
                    #[cfg(feature = "chaos")]
                    if crate::chaos::wait_die_disabled() {
                        // Chaos mutation: ignore the conflict and co-own the
                        // key — two transactions now race on the same rows.
                        self.owned.entry(pkg.txn).or_default().push(k);
                        continue;
                    }
                    if pkg.priority < owner_prio {
                        // Older requester: park behind the key (keeps the
                        // keys it already owns — wait-die makes this safe).
                        self.stats.parked += 1;
                        self.waiters.entry(k).or_default().push(pkg);
                    } else {
                        // Younger requester dies; the client retries with
                        // the same priority.
                        self.stats.died += 1;
                        pkg.rvp.fail(FailKind::Conflict);
                    }
                    return;
                }
            }
        }

        // Phase 2: execute. Effects are logged and buffered for undo.
        let mut reads = Vec::new();
        for (idx, action) in &pkg.actions {
            match self.apply(pkg.txn, action) {
                Ok(Some(row)) => reads.push((*idx, row)),
                Ok(None) => {}
                Err(()) => {
                    pkg.rvp.fail(FailKind::Logical);
                    return;
                }
            }
        }
        self.stats.executed += 1;
        pkg.rvp.complete(reads);
    }

    /// Applies one action. `Ok(Some(row))` carries a result for the client.
    fn apply(&mut self, txn: u64, action: &Action) -> Result<Option<Vec<i64>>, ()> {
        let t = self.tables.get(&action.table).ok_or(())?.clone();
        let table = action.table;
        let key = action.key;
        match &action.op {
            ActionOp::Read => Ok(Some(t.get(key).map_err(|_| ())?)),
            ActionOp::Write(row) => {
                let rid = t.rid_of(key).map_err(|_| ())?;
                let before = t.update_logged(key, row, 0).map_err(|_| ())?;
                let lsn = self
                    .wal
                    .append(txn, 0, &LogBody::Update {
                        table,
                        key,
                        rid,
                        before: before.clone(),
                        after: row.clone(),
                    })
                    .start;
                let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                self.undo
                    .entry(txn)
                    .or_default()
                    .push(UndoOp::Update { table, key, before });
                Ok(None)
            }
            ActionOp::Add { col, delta } => {
                let before = t.get(key).map_err(|_| ())?;
                if *col >= before.len() {
                    return Err(());
                }
                let mut after = before.clone();
                after[*col] += delta;
                let rid = t.rid_of(key).map_err(|_| ())?;
                t.update_logged(key, &after, 0).map_err(|_| ())?;
                let lsn = self
                    .wal
                    .append(txn, 0, &LogBody::Update {
                        table,
                        key,
                        rid,
                        before: before.clone(),
                        after,
                    })
                    .start;
                let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                self.undo.entry(txn).or_default().push(UndoOp::Update {
                    table,
                    key,
                    before: before.clone(),
                });
                Ok(Some(before))
            }
            ActionOp::Insert(row) => {
                let rid = t.insert_logged(key, row, 0).map_err(|_| ())?;
                let lsn = self
                    .wal
                    .append(txn, 0, &LogBody::Insert {
                        table,
                        key,
                        rid,
                        row: row.clone(),
                    })
                    .start;
                let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                self.undo
                    .entry(txn)
                    .or_default()
                    .push(UndoOp::Insert { table, key });
                Ok(None)
            }
            ActionOp::Delete => {
                let rid = t.rid_of(key).map_err(|_| ())?;
                let before = t.delete_logged(key, 0).map_err(|_| ())?;
                let lsn = self
                    .wal
                    .append(txn, 0, &LogBody::Delete {
                        table,
                        key,
                        rid,
                        before: before.clone(),
                    })
                    .start;
                let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                self.undo.entry(txn).or_default().push(UndoOp::Delete {
                    table,
                    key,
                    before: before.clone(),
                });
                Ok(Some(before))
            }
        }
    }

    fn handle_complete(&mut self, txn: u64, commit: bool) {
        if !commit {
            // Undo in reverse, logging compensations (same convention as the
            // conventional transaction manager: recovery repeats history).
            if let Some(ops) = self.undo.remove(&txn) {
                for op in ops.into_iter().rev() {
                    self.apply_undo(txn, op);
                }
            }
            // Drop parked packages of this transaction.
            for v in self.waiters.values_mut() {
                v.retain(|p| p.txn != txn);
            }
            self.waiters.retain(|_, v| !v.is_empty());
        } else {
            self.undo.remove(&txn);
        }
        // Release keys and retry parked packages.
        if let Some(keys) = self.owned.remove(&txn) {
            for k in keys {
                self.locks.remove(&k);
                if let Some(pkgs) = self.waiters.remove(&k) {
                    for pkg in pkgs {
                        self.handle_package(pkg);
                    }
                }
            }
        }
    }

    fn apply_undo(&mut self, txn: u64, op: UndoOp) {
        match op {
            UndoOp::Insert { table, key } => {
                if let Some(t) = self.tables.get(&table).cloned() {
                    if let Ok(rid) = t.rid_of(key) {
                        if let Ok(before) = t.delete_logged(key, 0) {
                            let lsn = self
                                .wal
                                .append(txn, 0, &LogBody::Delete { table, key, rid, before })
                                .start;
                            let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                        }
                    }
                }
            }
            UndoOp::Update { table, key, before } => {
                if let Some(t) = self.tables.get(&table).cloned() {
                    if let Ok(rid) = t.rid_of(key) {
                        if let Ok(after) = t.update_logged(key, &before, 0) {
                            let lsn = self
                                .wal
                                .append(txn, 0, &LogBody::Update {
                                    table,
                                    key,
                                    rid,
                                    before: after,
                                    after: before,
                                })
                                .start;
                            let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                        }
                    }
                }
            }
            UndoOp::Delete { table, key, before } => {
                if let Some(t) = self.tables.get(&table).cloned() {
                    if let Ok(rid) = t.insert_logged(key, &before, 0) {
                        let lsn = self
                            .wal
                            .append(txn, 0, &LogBody::Insert {
                                table,
                                key,
                                rid,
                                row: before,
                            })
                            .start;
                        let _ = t.heap().stamp_page_lsn(rid.page, lsn);
                    }
                }
            }
        }
    }
}
