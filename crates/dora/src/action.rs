//! The action vocabulary transactions are decomposed into.
//!
//! DORA systems describe each transaction type as a flow of actions over
//! partitions. This vocabulary covers the OLTP benchmarks the keynote's line
//! of work evaluates (TATP, TPC-B, TPC-C payment/new-order style logic):
//! point reads, whole-row writes, column arithmetic, inserts, and deletes.

use esdb_storage::schema::TableId;

/// What an action does to its target row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionOp {
    /// Read the row; its value is returned to the client.
    Read,
    /// Overwrite the row.
    Write(Vec<i64>),
    /// Read-modify-write: add `delta` to column `col`. Returns the *old* row.
    Add {
        /// Column index.
        col: usize,
        /// Signed increment.
        delta: i64,
    },
    /// Insert a new row (fails the transaction on duplicate key).
    Insert(Vec<i64>),
    /// Delete the row (returns the old row).
    Delete,
}

/// One action: an operation on one key of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Target table.
    pub table: TableId,
    /// Target primary key (also the routing key).
    pub key: u64,
    /// Operation.
    pub op: ActionOp,
}

impl Action {
    /// Convenience constructor for a read.
    pub fn read(table: TableId, key: u64) -> Self {
        Action { table, key, op: ActionOp::Read }
    }

    /// Convenience constructor for a whole-row write.
    pub fn write(table: TableId, key: u64, row: Vec<i64>) -> Self {
        Action { table, key, op: ActionOp::Write(row) }
    }

    /// Convenience constructor for column arithmetic.
    pub fn add(table: TableId, key: u64, col: usize, delta: i64) -> Self {
        Action { table, key, op: ActionOp::Add { col, delta } }
    }

    /// Convenience constructor for an insert.
    pub fn insert(table: TableId, key: u64, row: Vec<i64>) -> Self {
        Action { table, key, op: ActionOp::Insert(row) }
    }

    /// Convenience constructor for a delete.
    pub fn delete(table: TableId, key: u64) -> Self {
        Action { table, key, op: ActionOp::Delete }
    }

    /// Returns `true` if the action only reads.
    pub fn is_read_only(&self) -> bool {
        matches!(self.op, ActionOp::Read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let a = Action::add(3, 42, 1, -5);
        assert_eq!(a.table, 3);
        assert_eq!(a.key, 42);
        assert_eq!(a.op, ActionOp::Add { col: 1, delta: -5 });
        assert!(!a.is_read_only());
        assert!(Action::read(0, 0).is_read_only());
    }
}
