//! Key → partition routing.
//!
//! DORA partitions *logically*: the routing table maps each key to its
//! owning executor; the physical storage stays shared. Routing is plain
//! modulo over a key-spreading hash, which keeps both sequential and
//! hash-distributed benchmark key spaces balanced.

/// Deterministic router from `(table, key)` to partition index.
#[derive(Debug, Clone, Copy)]
pub struct Router {
    partitions: usize,
}

impl Router {
    /// Creates a router over `partitions` executors.
    pub fn new(partitions: usize) -> Self {
        Router {
            partitions: partitions.max(1),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Owning partition of a key. Table id participates so that small tables
    /// with overlapping key ranges do not all load the same executor.
    pub fn route(&self, table: u32, key: u64) -> usize {
        let h = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((table as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
        (h % self.partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = Router::new(7);
        for k in 0..1_000 {
            let p = r.route(1, k);
            assert!(p < 7);
            assert_eq!(p, r.route(1, k));
        }
    }

    #[test]
    fn sequential_keys_balance() {
        let r = Router::new(8);
        let mut counts = [0usize; 8];
        for k in 0..8_000 {
            counts[r.route(1, k)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        let r = Router::new(0);
        assert_eq!(r.partitions(), 1);
        assert_eq!(r.route(1, 123), 0);
    }
}
