//! # esdb-net — the network front-end
//!
//! Everything the engine exposes to remote clients, in three layers:
//!
//! * [`protocol`] — a length-prefixed binary wire format (`u32` length +
//!   tagged payload over the `bytes` traits). Decoding distinguishes
//!   incomplete from malformed input and never panics on hostile bytes.
//! * [`server`] + [`reactor`] — an event-driven TCP server over `std::net`
//!   wrapping an `Arc<Database>`: N per-core reactor threads run epoll-style
//!   readiness loops (the vendored `minipoll` stub), each session a
//!   nonblocking state machine owned by exactly one reactor. Admission stays
//!   bounded with explicit load shedding (connections beyond the cap get a
//!   structured `Busy` greeting, not a queue slot); pipelined one-shot
//!   commits from *every* session on a reactor ride a single group-commit
//!   WAL flush per tick; graceful shutdown drains in-flight work and forces
//!   the log durable.
//! * [`client`] — a blocking client (`one_shot`, pipelined batches,
//!   interactive BEGIN/READ/UPDATE/INSERT/COMMIT/ABORT) plus a
//!   multi-connection load generator producing the same [`WorkloadReport`]
//!   the in-process harness emits, so server-attached and embedded
//!   throughput compare directly.
//!
//! ```
//! use esdb_core::{Database, EngineConfig};
//! use esdb_net::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::open(EngineConfig::default()));
//! let t = db.create_table("kv", 1).unwrap();
//! let server = Server::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.begin().unwrap();
//! client.insert(t, 1, vec![42]).unwrap();
//! client.commit().unwrap();
//! assert_eq!(client.read_committed(t, 1).unwrap(), Some(vec![42]));
//! server.shutdown();
//! ```

pub mod client;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use client::{run_load, Client, LoadConfig, NetError, ReconnectPolicy, Snapshot};
pub use protocol::{FrameError, Request, Response, ServerStats, WirePlan, MAX_FRAME};
pub use reactor::FrameCursor;
pub use server::{DecisionSource, OwnershipCheck, RoutingSource, Server, ServerConfig};

use esdb_core::WorkloadReport;

/// Formats a one-line summary of a load run against `stats`, including the
/// commits-per-flush ratio that shows group commit at work.
pub fn summarize(report: &WorkloadReport, stats: &ServerStats) -> String {
    let flushes = stats.engine.wal_flushes.max(1);
    format!(
        "committed={} tps={:.0} wal_flushes={} commits_per_flush={:.1} shed={}",
        report.committed,
        report.throughput(),
        stats.engine.wal_flushes,
        stats.engine.commits as f64 / flushes as f64,
        stats.sessions_shed,
    )
}
