//! Threaded TCP front-end over an [`esdb_core::Database`].
//!
//! One OS thread per admitted session, a bounded session table, and explicit
//! load shedding: a connection beyond the cap gets a [`Response::Busy`]
//! greeting and is closed, so overload surfaces as a structured retry signal
//! instead of unbounded queueing.
//!
//! Sessions are **pipelined**: each loop iteration drains every complete
//! request frame the socket has delivered and executes them as one batch.
//! One-shot transactions inside a batch commit via the engine's deferred
//! path (`run_spec_deferred`), and the batch pays a *single* WAL durability
//! wait covering the highest commit LSN — the network front-end's analogue
//! of group commit. A client that keeps several transactions in flight
//! therefore amortizes the log-device latency across all of them.

use crate::protocol::{decode_request, encode_response, FrameError, Request, Response, ServerStats};
use esdb_core::config::ExecutionModel;
use esdb_core::{Database, QuorumError, QuorumPolicy, ReplGroup};
use esdb_txn::Txn;
use esdb_wal::Lsn;
use esdb_workload::TxnSpec;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a participant server looks up a coordinator's durable verdict for
/// an in-doubt transaction ([`Request::ShardStatus`]). The closure returns
/// `Some(commit)` when the coordinator logged a decision and `None` when it
/// never did — which, under presumed abort, the server reports as an abort.
#[derive(Clone)]
pub struct DecisionSource(pub Arc<dyn Fn(u64) -> Option<bool> + Send + Sync>);

impl std::fmt::Debug for DecisionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DecisionSource(..)")
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently admitted sessions; connection `max_sessions + 1`
    /// is shed with [`Response::Busy`].
    pub max_sessions: usize,
    /// How often blocked reads wake up to observe a shutdown request.
    pub poll_interval: Duration,
    /// Replica-side only: the apply loop's durable frontier. When set,
    /// [`Request::ReadAt`] waits (up to [`ServerConfig::read_at_wait`]) for
    /// the frontier to reach the request's token before reading; when `None`
    /// (a primary), every read is trivially fresh.
    pub applied_watermark: Option<Arc<AtomicU64>>,
    /// How long a [`Request::ReadAt`] may wait for the apply frontier before
    /// the server gives up with [`Response::Lagging`].
    pub read_at_wait: Duration,
    /// Largest log span per shipped [`Response::LogChunk`]; must leave frame
    /// headroom below [`crate::protocol::MAX_FRAME`].
    pub ship_chunk: usize,
    /// Participant-side 2PC recovery oracle: answers [`Request::ShardStatus`]
    /// from the coordinator's decision log. `None` on servers that never act
    /// as 2PC participants (status queries then return an error).
    pub decision_source: Option<DecisionSource>,
    /// Primary-side replication group: term, follower acks, fencing. Set on
    /// servers that ship log to subscribers; the ship path consults it for
    /// the term handshake and feeds follower acks into it.
    pub repl_group: Option<Arc<ReplGroup>>,
    /// Semi-sync commit mode: when set (and `repl_group` is too), the batch
    /// group-commit wait additionally blocks until `k` followers have acked
    /// durability at the batch's commit LSN, degrading to a typed
    /// [`Response::QuorumTimeout`] when the bound expires.
    pub quorum: Option<QuorumPolicy>,
    /// Replica-side only: the feed thread's liveness flag. When the feed is
    /// dead (`false`), a [`Request::ReadAt`] the frontier cannot satisfy
    /// answers [`Response::Lagging`] immediately instead of burning the full
    /// [`ServerConfig::read_at_wait`] — the frontier is not going to move.
    pub feed_live: Option<Arc<AtomicBool>>,
    /// Stalled-peer budget: a session whose peer has sent part of a frame
    /// and then gone quiet for this long is closed with a typed
    /// [`FrameError::Timeout`] error frame instead of holding its thread
    /// (and session slot) forever. `None` keeps the historic wait-forever
    /// behavior.
    pub stall_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            poll_interval: Duration::from_millis(20),
            applied_watermark: None,
            read_at_wait: Duration::from_millis(500),
            ship_chunk: 256 * 1024,
            decision_source: None,
            repl_group: None,
            quorum: None,
            feed_live: None,
            stall_timeout: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    active: AtomicU64,
    txns_executed: AtomicU64,
    txns_committed: AtomicU64,
    batches: AtomicU64,
}

struct Shared {
    db: Arc<Database>,
    config: ServerConfig,
    shutdown: AtomicBool,
    counters: Counters,
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            engine: self.db.stats_snapshot(),
            sessions_accepted: self.counters.accepted.load(Ordering::Relaxed),
            sessions_shed: self.counters.shed.load(Ordering::Relaxed),
            sessions_active: self.counters.active.load(Ordering::Relaxed),
            txns_executed: self.counters.txns_executed.load(Ordering::Relaxed),
            txns_committed: self.counters.txns_committed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting.
    pub fn start(
        db: Arc<Database>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the shutdown flag.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            db,
            config,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            sessions: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server { shared, addr: local, acceptor: Some(acceptor) })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server-side counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, let every session finish the batch
    /// it is processing (plus anything already buffered), join all threads,
    /// then force the WAL durable to its end so committed work survives a
    /// subsequent crash/restart.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let sessions = std::mem::take(&mut *self.shared.sessions.lock());
        for h in sessions {
            let _ = h.join();
        }
        let wal = self.shared.db.wal();
        wal.wait_durable(wal.current_lsn());
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, shared),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

/// Admission control: greet with Hello and spawn a session, or shed with
/// Busy and close. The session slot is reserved *before* the greeting so two
/// racing connections cannot both squeeze past the cap.
fn admit(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let cap = shared.config.max_sessions as u64;
    let admitted = shared
        .counters
        .active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_ok();
    let mut greeting = Vec::new();
    if !admitted {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        encode_response(&Response::Busy, &mut greeting);
        let _ = stream.write_all(&greeting);
        // Dropping the stream closes the connection: shedding is one frame
        // and a close, never a hang.
        return;
    }
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    encode_response(&Response::Hello, &mut greeting);
    if stream.write_all(&greeting).is_err() {
        shared.counters.active.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let session_shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        session_loop(stream, &session_shared);
        session_shared.counters.active.fetch_sub(1, Ordering::SeqCst);
    });
    shared.sessions.lock().push(handle);
}

/// Per-session state: at most one open interactive transaction.
struct Session {
    txn: Option<Txn>,
}

fn session_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut inbox: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut session = Session { txn: None };
    let mut stalled_since: Option<std::time::Instant> = None;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                stalled_since = None;
                inbox.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // No new bytes. A graceful shutdown ends the session once
                // everything already received has been processed.
                if shared.shutdown.load(Ordering::SeqCst) && inbox.is_empty() {
                    return;
                }
                // A peer that started a frame and went quiet is hung, not
                // idle: burn its slot only up to the configured budget, then
                // close with a typed timeout.
                if !inbox.is_empty() {
                    if let Some(budget) = shared.config.stall_timeout {
                        let began = *stalled_since.get_or_insert_with(std::time::Instant::now);
                        if began.elapsed() >= budget {
                            let mut outbox = Vec::new();
                            encode_response(
                                &Response::Error(FrameError::Timeout.to_string()),
                                &mut outbox,
                            );
                            let _ = stream.write_all(&outbox);
                            return;
                        }
                    }
                }
                continue;
            }
            Err(_) => return,
        }
        // Drain every complete frame the socket delivered: this is the
        // pipelining window. Everything decoded here executes as one batch.
        let mut batch = Vec::new();
        let mut consumed = 0;
        let mut fatal: Option<FrameError> = None;
        loop {
            match decode_request(&inbox[consumed..]) {
                Ok(Some((req, used))) => {
                    // A subscribe flips the session into a log feed; stop
                    // decoding here so bytes behind it (ack frames already in
                    // flight) stay in the inbox for the ship loop.
                    let is_subscribe = matches!(req, Request::ReplSubscribe { .. });
                    batch.push(req);
                    consumed += used;
                    if is_subscribe {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
        inbox.drain(..consumed);
        // A subscribe request flips the session into a one-way log feed: run
        // whatever was pipelined ahead of it, then hand the socket — and any
        // bytes that followed the subscribe frame — to the ship loop and
        // never come back.
        let subscribe = batch
            .iter()
            .position(|req| matches!(req, Request::ReplSubscribe { .. }));
        if let Some(i) = subscribe {
            let Request::ReplSubscribe { from, term } = batch[i] else { unreachable!() };
            if i > 0 {
                let outbox = run_batch(&batch[..i], &mut session, shared);
                if stream.write_all(&outbox).is_err() {
                    return;
                }
            }
            ship_loop(stream, shared, from, term, std::mem::take(&mut inbox));
            return;
        }
        if !batch.is_empty() {
            let outbox = run_batch(&batch, &mut session, shared);
            if stream.write_all(&outbox).is_err() {
                return;
            }
        }
        if let Some(e) = fatal {
            // Protocol desync is unrecoverable: report and close.
            let mut outbox = Vec::new();
            encode_response(&Response::Error(e.to_string()), &mut outbox);
            let _ = stream.write_all(&outbox);
            return;
        }
    }
}

/// Executes one pipelined batch. Commit acknowledgments are written only
/// after a single `wait_durable` covering the batch's highest commit LSN —
/// deferred commits from every transaction in the batch ride one flush.
fn run_batch(batch: &[Request], session: &mut Session, shared: &Arc<Shared>) -> Vec<u8> {
    let db = &shared.db;
    let mut responses: Vec<Response> = Vec::with_capacity(batch.len());
    let mut flush_to: Option<Lsn> = None;
    // Response slots acknowledging a durable commit; rewritten to a typed
    // degradation if the semi-sync quorum wait below fails.
    let mut commit_acks: Vec<usize> = Vec::new();
    fn note(lsn: Option<Lsn>, flush_to: &mut Option<Lsn>) {
        if let Some(lsn) = lsn {
            *flush_to = Some(flush_to.map_or(lsn, |m| m.max(lsn)));
        }
    }
    for req in batch {
        let resp = match req {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(shared.stats()),
            Request::ObsStats => Response::ObsStats(Box::new(db.obs_snapshot())),
            Request::OneShot { may_fail, ops } => {
                shared.counters.txns_executed.fetch_add(1, Ordering::Relaxed);
                let spec = TxnSpec { kind: "net", ops: ops.clone(), may_fail: *may_fail };
                // Per-txn profile covers execution only; the batch's shared
                // group-commit flush below is accounted once as CommitFlush
                // rather than attributed to any single transaction.
                let ((outcome, lsn), profile) =
                    esdb_obs::profile_scope(|| db.run_spec_deferred(&spec));
                if esdb_obs::enabled() {
                    esdb_obs::record_component(
                        esdb_obs::Component::TxnLatency,
                        profile.wall(),
                    );
                }
                if outcome.is_committed() {
                    shared.counters.txns_committed.fetch_add(1, Ordering::Relaxed);
                    if lsn.is_some() {
                        commit_acks.push(responses.len());
                    }
                }
                note(lsn, &mut flush_to);
                Response::Outcome(outcome)
            }
            Request::Begin => match session.txn {
                Some(_) => Response::Error("transaction already open".into()),
                None => {
                    if matches!(db.config().execution, ExecutionModel::Dora { .. }) {
                        Response::Error(
                            "interactive transactions require the conventional engine; \
                             DORA accepts one-shot TXN frames only"
                                .into(),
                        )
                    } else {
                        session.txn = Some(db.txn_manager().begin());
                        Response::Ok
                    }
                }
            },
            Request::Read { table, key } => {
                match session.txn.as_mut().map(|txn| txn.read(*table, *key)) {
                    None => Response::Error("no open transaction".into()),
                    Some(Ok(row)) => Response::Row(row),
                    Some(Err(e)) => abort_with(session, e),
                }
            }
            Request::Update { table, key, row } => {
                match session.txn.as_mut().map(|txn| txn.update(*table, *key, row)) {
                    None => Response::Error("no open transaction".into()),
                    Some(Ok(_)) => Response::Ok,
                    Some(Err(e)) => abort_with(session, e),
                }
            }
            Request::Insert { table, key, row } => {
                match session.txn.as_mut().map(|txn| txn.insert(*table, *key, row)) {
                    None => Response::Error("no open transaction".into()),
                    Some(Ok(())) => Response::Ok,
                    Some(Err(e)) => abort_with(session, e),
                }
            }
            Request::Commit => match session.txn.take() {
                None => Response::Error("no open transaction".into()),
                Some(txn) => {
                    let lsn = txn.commit_deferred();
                    if lsn.is_some() {
                        commit_acks.push(responses.len());
                    }
                    note(lsn, &mut flush_to);
                    Response::Ok
                }
            },
            Request::Abort => match session.txn.take() {
                None => Response::Error("no open transaction".into()),
                Some(txn) => {
                    txn.abort();
                    Response::Ok
                }
            },
            Request::ReplSnapshot => {
                snapshot_into(db, &mut responses);
                continue;
            }
            // Intercepted in `session_loop`; reaching here means the client
            // pipelined requests after subscribe, which the contract forbids.
            Request::ReplSubscribe { .. } => {
                Response::Error("subscribe ends the request/response dialogue".into())
            }
            // Acks belong to subscribe feeds; on a request/response session
            // they are a protocol misuse, answered typed rather than fatally.
            Request::ReplAck { .. } => {
                Response::Error("acks are only valid on a subscribe feed".into())
            }
            Request::CommitToken => Response::Token { lsn: db.wal().durable_lsn() },
            Request::ReadAt { table, key, min_lsn } => {
                read_at(db, shared, *table, *key, *min_lsn)
            }
            // 2PC phase one: execute the ops, force the Prepare record, and
            // vote. A yes-vote parks the transaction (locks held) in the
            // engine's prepared registry until a ShardDecide arrives.
            Request::ShardPrepare { gtid, ops } => {
                shared.counters.txns_executed.fetch_add(1, Ordering::Relaxed);
                let spec = TxnSpec { kind: "shard", ops: ops.clone(), may_fail: true };
                let outcome = match db.run_spec_prepare(*gtid, &spec) {
                    esdb_core::PrepareVote::Commit { reads } => {
                        esdb_core::spec_exec::SpecOutcome::Committed { reads }
                    }
                    esdb_core::PrepareVote::Abort { outcome } => outcome,
                };
                Response::ShardVote { gtid: *gtid, outcome }
            }
            // 2PC phase two: finish a prepared transaction. Unknown gtids
            // are acknowledged too — a retried decision must be idempotent.
            Request::ShardDecide { gtid, commit } => {
                if db.decide(*gtid, *commit) && *commit {
                    shared.counters.txns_committed.fetch_add(1, Ordering::Relaxed);
                }
                Response::Ok
            }
            // Participant recovery asks the coordinator's decision log what
            // became of an in-doubt gtid; no durable decision means abort
            // (presumed abort).
            Request::ShardStatus { gtid } => match &shared.config.decision_source {
                Some(source) => Response::ShardDecision {
                    gtid: *gtid,
                    commit: (source.0)(*gtid).unwrap_or(false),
                },
                None => Response::Error("no coordinator decision source configured".into()),
            },
            Request::ShardInDoubt => Response::ShardGtids(db.prepared_gtids()),
        };
        responses.push(resp);
    }
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    // The group-commit point: every deferred commit in this batch becomes
    // durable under one wait before any acknowledgment leaves the server.
    // Accounted as commit-flush wait: the batch's commits are what block on
    // it (the nested log-wait timer inside wait_durable records nothing).
    if let Some(lsn) = flush_to {
        let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::CommitFlush);
        db.wal().wait_durable(lsn);
    }
    // Semi-sync mode: the same flush point also waits for K follower acks.
    // A failed wait never hangs and never lies — every commit ack in the
    // batch is rewritten to the typed degradation (the commit *is* durable
    // locally; only its replication guarantee is unmet).
    if let (Some(lsn), Some(group), Some(policy)) = (
        flush_to,
        shared.config.repl_group.as_ref(),
        shared.config.quorum.as_ref(),
    ) {
        let verdict = {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::CommitFlush);
            group.wait_quorum(lsn, policy)
        };
        if let Err(e) = verdict {
            let downgrade = match e {
                QuorumError::Timeout { lsn, acked, needed } => {
                    Response::QuorumTimeout { lsn, acked, needed }
                }
                QuorumError::Fenced { term } => Response::Fenced { term },
            };
            for &i in &commit_acks {
                responses[i] = downgrade.clone();
            }
        }
    }
    let mut outbox = Vec::new();
    for resp in &responses {
        encode_response(resp, &mut outbox);
    }
    outbox
}

/// Takes a checkpoint and appends the full page snapshot to `responses`:
/// one [`Response::SnapBegin`] carrying the redo start LSN and catalog, a
/// [`Response::SnapPage`] per heap page, and a closing [`Response::SnapEnd`].
/// Pages may be dirtied again while we read them — that is the *fuzzy* part;
/// a page newer than the checkpoint just makes the replica's page-LSN
/// idempotent redo skip the already-applied records.
fn snapshot_into(db: &Arc<Database>, responses: &mut Vec<Response>) {
    let start_lsn = match db.checkpoint() {
        Ok(lsn) => lsn,
        Err(e) => {
            responses.push(Response::Error(format!("snapshot failed: {e}")));
            return;
        }
    };
    let catalog = db.catalog();
    responses.push(Response::SnapBegin {
        start_lsn,
        catalog: catalog
            .iter()
            .map(|(id, name, arity, pages)| (*id, name.clone(), *arity as u32, pages.clone()))
            .collect(),
    });
    let disk = db.disk();
    let mut page = esdb_storage::page::Page::new();
    let mut page_count = 0u64;
    for (_, _, _, pages) in &catalog {
        for &pid in pages {
            match disk.read(pid, &mut page) {
                Ok(()) => {
                    responses.push(Response::SnapPage {
                        page_id: pid,
                        bytes: page.as_bytes().to_vec(),
                    });
                    page_count += 1;
                }
                Err(e) => {
                    responses.push(Response::Error(format!("snapshot page {pid}: {e:?}")));
                    return;
                }
            }
        }
    }
    responses.push(Response::SnapEnd { page_count });
}

/// A follower read: wait for the apply frontier to reach the caller's token,
/// then serve the row through a throwaway read-only transaction. On a
/// primary (no watermark configured) every read is already fresh.
fn read_at(db: &Arc<Database>, shared: &Arc<Shared>, table: u32, key: u64, min_lsn: Lsn) -> Response {
    if let Some(watermark) = &shared.config.applied_watermark {
        let feed_dead = || {
            shared
                .config
                .feed_live
                .as_ref()
                .is_some_and(|live| !live.load(Ordering::Acquire))
        };
        let deadline = std::time::Instant::now() + shared.config.read_at_wait;
        loop {
            let applied = watermark.load(Ordering::Acquire);
            if applied >= min_lsn {
                break;
            }
            // A dead feed thread means the frontier will never move: answer
            // Lagging now instead of burning the full bounded wait.
            if feed_dead() || std::time::Instant::now() >= deadline {
                return Response::Lagging { applied };
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    if matches!(db.config().execution, ExecutionModel::Dora { .. }) {
        return Response::Error("follower reads require the conventional engine".into());
    }
    let mut txn = db.txn_manager().begin();
    let resp = match txn.read(table, key) {
        Ok(row) => Response::Row(row),
        Err(e) => Response::Error(format!("read failed: {e}")),
    };
    txn.abort();
    resp
}

/// A follower's ack slot in the primary's [`ReplGroup`], dropped (and
/// deregistered) however the ship loop exits.
struct FollowerSlot {
    group: Arc<ReplGroup>,
    id: u64,
}

impl Drop for FollowerSlot {
    fn drop(&mut self) {
        self.group.deregister_follower(self.id);
    }
}

/// Drains whatever ack frames the subscriber has pushed up the feed socket.
/// Returns `Ok(false)` if the peer hung up, `Err` on a protocol violation.
/// Non-ack requests on a feed are a contract breach and close it.
fn drain_acks(
    stream: &mut TcpStream,
    ackbuf: &mut Vec<u8>,
    slot: Option<&FollowerSlot>,
) -> Result<bool, ()> {
    // Exactly one bounded read per call, decoded immediately. Reading "until
    // WouldBlock" would force every ack to wait out the trailing timed-out
    // read before being processed — and kernels round socket timeouts up to
    // a scheduler tick, which puts several milliseconds of pure idle waiting
    // on the commit path of every semi-sync transaction. One read either
    // wakes on arriving bytes (ack processed at once) or times out on a
    // genuinely idle feed; leftover bytes are picked up next iteration.
    let mut chunk = [0u8; 4 * 1024];
    match stream.read(&mut chunk) {
        Ok(0) => return Ok(false), // subscriber closed
        Ok(n) => ackbuf.extend_from_slice(&chunk[..n]),
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
        Err(_) => return Ok(false),
    }
    let mut consumed = 0;
    loop {
        match decode_request(&ackbuf[consumed..]) {
            Ok(Some((Request::ReplAck { term, lsn }, used))) => {
                consumed += used;
                if let Some(s) = slot {
                    s.group.note_ack(s.id, term, lsn);
                }
            }
            Ok(Some((_, _))) => return Err(()),
            Ok(None) => break,
            Err(_) => return Err(()),
        }
    }
    ackbuf.drain(..consumed);
    Ok(true)
}

/// The primary half of log shipping: block on the WAL durability hub, cut
/// the newly durable span into [`Response::LogChunk`] frames, push them, and
/// repeat until the subscriber hangs up, the log is truncated past its
/// cursor (it must re-bootstrap from a snapshot), or the server shuts down.
///
/// When a [`ReplGroup`] is configured, the feed is also the quorum and
/// fencing channel: the subscriber's handshake term is checked (a higher
/// term deposes this primary — [`Response::Fenced`], no shipping), every
/// chunk is stamped with the current term, and [`Request::ReplAck`] frames
/// coming back up the socket feed the group's ack table.
fn ship_loop(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    mut from: Lsn,
    sub_term: u64,
    mut ackbuf: Vec<u8>,
) {
    let wal = shared.db.wal();
    let chunk_cap = shared
        .config
        .ship_chunk
        .min(crate::protocol::MAX_FRAME - 64)
        .max(1);
    let mut outbox = Vec::new();
    let group = shared.config.repl_group.as_ref();
    let fenced_reply = |stream: &mut TcpStream, term: u64| {
        let mut out = Vec::new();
        encode_response(&Response::Fenced { term }, &mut out);
        let _ = stream.write_all(&out);
    };
    let slot = if let Some(g) = group {
        // Term handshake. A subscriber speaking from a higher term is (or
        // has seen) our successor: record the supersession and refuse to
        // ship a single byte — the fence that keeps a deposed primary from
        // feeding anyone its divergent tail.
        if sub_term > g.term() {
            g.fence(sub_term);
        }
        if let Some(t) = g.fenced_by() {
            fenced_reply(&mut stream, t);
            return;
        }
        Some(FollowerSlot { group: Arc::clone(g), id: g.register_follower() })
    } else {
        None
    };
    // Acks are polled, not blocked on: a short read timeout keeps the loop
    // responsive to both newly durable bytes and incoming acks. `ackbuf`
    // may arrive pre-seeded with ack bytes that were pipelined right behind
    // the subscribe frame.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match drain_acks(&mut stream, &mut ackbuf, slot.as_ref()) {
            Ok(true) => {}
            Ok(false) | Err(()) => return,
        }
        if let Some(g) = group {
            if let Some(t) = g.fenced_by() {
                fenced_reply(&mut stream, t);
                return;
            }
        }
        // With a quorum group, this socket is also the ack channel, and the
        // subscriber's ack may be the only event in flight (every session can
        // be parked in `wait_quorum`, so no flush will ring the hub). Never
        // park here long enough to leave a delivered ack unread.
        let hub_wait = if group.is_some() {
            shared.config.poll_interval.min(Duration::from_millis(1))
        } else {
            shared.config.poll_interval
        };
        let durable = wal.wait_durable_beyond(from, hub_wait);
        if durable <= from {
            continue;
        }
        let Some((bytes, start)) = wal.durable_tail(from) else {
            // The log was truncated past this subscriber's cursor; only a
            // fresh snapshot can help it. Closing the feed signals that.
            return;
        };
        if start != from {
            return;
        }
        // The store may hold flushed bytes the durable watermark has not
        // published yet; never ship past what the WAL calls durable.
        let avail = ((durable - start) as usize).min(bytes.len());
        if avail == 0 {
            continue;
        }
        let term = group.map_or(0, |g| g.term());
        let mut off = 0;
        while off < avail {
            let n = (avail - off).min(chunk_cap);
            outbox.clear();
            encode_response(
                &Response::LogChunk {
                    term,
                    start: start + off as u64,
                    bytes: bytes[off..off + n].to_vec(),
                },
                &mut outbox,
            );
            if stream.write_all(&outbox).is_err() {
                return;
            }
            off += n;
        }
        from = start + avail as u64;
    }
}

/// An interactive statement failed: abort the open transaction (2PL already
/// released nothing early) and report the error. The session stays usable —
/// the client may BEGIN again.
fn abort_with(session: &mut Session, e: esdb_txn::TxnError) -> Response {
    if let Some(txn) = session.txn.take() {
        txn.abort();
    }
    Response::Error(format!("transaction aborted: {e}"))
}
