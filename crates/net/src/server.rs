//! Event-driven TCP front-end over an [`esdb_core::Database`].
//!
//! The server runs **N per-core reactor threads**, not a thread per session.
//! Each accepted socket is sharded to one reactor by fd hash and lives there
//! for its whole life as a nonblocking state machine (see [`crate::reactor`]):
//! shared-nothing session state owned by exactly one reactor, an epoll-style
//! readiness loop (the vendored [`minipoll`] stub) instead of blocked reads,
//! and per-tick batching of the expensive shared work.
//!
//! Admission control is unchanged from the threaded design: a bounded global
//! session budget, and a connection beyond the cap gets a [`Response::Busy`]
//! greeting and a close, so overload surfaces as a structured retry signal
//! instead of unbounded queueing. The budget is a single atomic — reserved
//! *before* the greeting so two racing connections cannot both squeeze past
//! the cap — while the session state itself is per-reactor.
//!
//! Sessions are **pipelined**: each reactor tick drains every complete
//! request frame a socket has delivered and executes them as one batch.
//! One-shot transactions inside a batch commit via the engine's deferred
//! path (`run_spec_deferred`), and the *tick* pays a single WAL durability
//! wait ([`esdb_wal::Wal::flush_batch`]) covering the highest commit LSN of
//! every session that completed a batch this tick — group commit across
//! sessions, not just within one connection's pipeline.

use crate::protocol::{encode_response, Response, ServerStats};
use crate::reactor::{self, ReactorHandle};
use esdb_core::{Database, QuorumPolicy, ReplGroup};
use minipoll::{Poller, Waker};
use std::io::{ErrorKind, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a participant server looks up a coordinator's durable verdict for
/// an in-doubt transaction ([`crate::protocol::Request::ShardStatus`]). The
/// closure returns `Some(commit)` when the coordinator logged a decision and
/// `None` when it never did — which, under presumed abort, the server
/// reports as an abort.
#[derive(Clone)]
pub struct DecisionSource(pub Arc<dyn Fn(u64) -> Option<bool> + Send + Sync>);

impl std::fmt::Debug for DecisionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DecisionSource(..)")
    }
}

/// Where the server reads its current routing table when answering a
/// [`crate::protocol::Request::RoutingSnapshot`]: the closure returns
/// `(epoch, slot → shard map)`. Servers without one answer a typed error —
/// routing observation is a sharded-deployment feature.
#[derive(Clone)]
pub struct RoutingSource(pub Arc<dyn Fn() -> (u64, Vec<u32>) + Send + Sync>);

impl std::fmt::Debug for RoutingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RoutingSource(..)")
    }
}

/// Slot-ownership gate for rebalancing. Called with every `(table, key)` a
/// transactional request touches: `None` means this server owns the key's
/// slot and the request proceeds; `Some((epoch, hint))` means it does not —
/// the request is refused with a typed
/// [`crate::protocol::Response::WrongShard`] carrying the server's routing
/// epoch and its best guess at the owning shard. `None` in the config means
/// the server owns everything (an unsharded deployment).
#[derive(Clone)]
pub struct OwnershipCheck(pub Arc<dyn Fn(u32, u64) -> Option<(u64, u32)> + Send + Sync>);

impl std::fmt::Debug for OwnershipCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OwnershipCheck(..)")
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently admitted sessions; connection `max_sessions + 1`
    /// is shed with [`Response::Busy`]. The budget is global across all
    /// reactors.
    pub max_sessions: usize,
    /// Reactor threads serving sessions. Accepted sockets are sharded across
    /// reactors by fd hash; each session's state is owned by one reactor for
    /// its whole life. Defaults to the host's available parallelism, capped
    /// at 4 — reactors are I/O multiplexers, not compute workers, and a few
    /// go a long way.
    pub reactors: usize,
    /// Upper bound on a reactor tick: how long the readiness wait may block
    /// when nothing is happening. Parked sessions (quorum/read-at waits, log
    /// shipping) shorten the effective tick to ~1ms.
    pub poll_interval: Duration,
    /// Replica-side only: the apply loop's durable frontier. When set,
    /// [`crate::protocol::Request::ReadAt`] waits (up to
    /// [`ServerConfig::read_at_wait`]) for the frontier to reach the
    /// request's token before reading; when `None` (a primary), every read
    /// is trivially fresh.
    pub applied_watermark: Option<Arc<AtomicU64>>,
    /// How long a [`crate::protocol::Request::ReadAt`] may wait for the
    /// apply frontier before the server gives up with [`Response::Lagging`].
    /// The session parks; its reactor keeps serving everyone else.
    pub read_at_wait: Duration,
    /// Largest log span per shipped [`Response::LogChunk`]; must leave frame
    /// headroom below [`crate::protocol::MAX_FRAME`].
    pub ship_chunk: usize,
    /// Participant-side 2PC recovery oracle: answers
    /// [`crate::protocol::Request::ShardStatus`] from the coordinator's
    /// decision log. `None` on servers that never act as 2PC participants
    /// (status queries then return an error).
    pub decision_source: Option<DecisionSource>,
    /// Primary-side replication group: term, follower acks, fencing. Set on
    /// servers that ship log to subscribers; the ship path consults it for
    /// the term handshake and feeds follower acks into it.
    pub repl_group: Option<Arc<ReplGroup>>,
    /// Semi-sync commit mode: when set (and `repl_group` is too), a commit
    /// acknowledgment additionally waits until `k` followers have acked
    /// durability at the commit LSN, degrading to a typed
    /// [`Response::QuorumTimeout`] when the bound expires. The wait is a
    /// *parked session state*, not a blocked thread: the reactor keeps
    /// draining follower acks (possibly on the very same reactor) while the
    /// committing session waits, so quorum can never deadlock the server.
    pub quorum: Option<QuorumPolicy>,
    /// Replica-side only: the feed thread's liveness flag. When the feed is
    /// dead (`false`), a [`crate::protocol::Request::ReadAt`] the frontier
    /// cannot satisfy answers [`Response::Lagging`] immediately instead of
    /// burning the full [`ServerConfig::read_at_wait`] — the frontier is not
    /// going to move.
    pub feed_live: Option<Arc<AtomicBool>>,
    /// Replica-side only: the replica's snapshot pin. The apply loop holds
    /// the write side while it applies a batch of redo; a
    /// [`crate::protocol::Request::Query`] executes its whole plan under the
    /// read side, so it observes the heap only between apply batches — and
    /// since the paired [`ServerConfig::applied_watermark`] advances only at
    /// transaction-consistent cuts, a pinned plan can never see a torn
    /// transaction. `None` (with a watermark set) degrades queries to
    /// unpinned reads; both `None` on a primary.
    pub apply_gate: Option<Arc<parking_lot::RwLock<()>>>,
    /// Stalled-peer budget: a session whose peer has sent part of a frame
    /// and then gone quiet for this long is closed with a typed
    /// [`crate::protocol::FrameError::Timeout`] error frame instead of
    /// holding its session slot forever. `None` keeps the historic
    /// wait-forever behavior.
    pub stall_timeout: Option<Duration>,
    /// Routing-table observation source, answering
    /// [`crate::protocol::Request::RoutingSnapshot`]. `None` on unsharded
    /// servers (the request then returns a typed error).
    pub routing_source: Option<RoutingSource>,
    /// Rebalancing ownership gate consulted before transactional work; see
    /// [`OwnershipCheck`]. `None` means the server owns every slot.
    pub ownership_check: Option<OwnershipCheck>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            reactors: default_reactors(),
            poll_interval: Duration::from_millis(20),
            applied_watermark: None,
            read_at_wait: Duration::from_millis(500),
            ship_chunk: 256 * 1024,
            decision_source: None,
            repl_group: None,
            quorum: None,
            feed_live: None,
            apply_gate: None,
            stall_timeout: None,
            routing_source: None,
            ownership_check: None,
        }
    }
}

fn default_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) accepted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) txns_executed: AtomicU64,
    pub(crate) txns_committed: AtomicU64,
    pub(crate) batches: AtomicU64,
}

pub(crate) struct Shared {
    pub(crate) db: Arc<Database>,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    pub(crate) counters: Counters,
}

impl Shared {
    pub(crate) fn stats(&self) -> ServerStats {
        ServerStats {
            engine: self.db.stats_snapshot(),
            sessions_accepted: self.counters.accepted.load(Ordering::Relaxed),
            sessions_shed: self.counters.shed.load(Ordering::Relaxed),
            sessions_active: self.counters.active.load(Ordering::Relaxed),
            txns_executed: self.counters.txns_executed.load(Ordering::Relaxed),
            txns_committed: self.counters.txns_committed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    handles: Arc<Vec<Arc<ReactorHandle>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the reactor
    /// threads, and starts accepting.
    pub fn start(
        db: Arc<Database>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the shutdown flag.
        listener.set_nonblocking(true)?;
        let n = config.reactors.max(1);
        let shared = Arc::new(Shared {
            db,
            config,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        // Build every poller/waker pair before spawning anything so the
        // acceptor sees a complete routing table from its first connection.
        let mut parts = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, reactor::WAKER_TOKEN)?;
            let handle = Arc::new(ReactorHandle::new(waker.handle()?));
            handles.push(Arc::clone(&handle));
            parts.push((poller, waker, handle));
        }
        let handles = Arc::new(handles);
        let reactors = parts
            .into_iter()
            .enumerate()
            .map(|(id, (poller, waker, handle))| {
                let shared = Arc::clone(&shared);
                let peers = Arc::clone(&handles);
                std::thread::spawn(move || {
                    reactor::run(id, shared, poller, waker, handle, peers)
                })
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&handles);
            std::thread::spawn(move || accept_loop(&listener, &shared, &handles))
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            reactors,
            handles,
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server-side counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, let every reactor drain what its
    /// sessions have already sent (finishing in-flight pipelined batches),
    /// join all threads, then force the WAL durable to its end so committed
    /// work survives a subsequent crash/restart.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Reactors may be parked in a poll wait; ring every doorbell.
        for handle in self.handles.iter() {
            handle.wake();
        }
        for h in std::mem::take(&mut self.reactors) {
            let _ = h.join();
        }
        let wal = self.shared.db.wal();
        wal.wait_durable(wal.current_lsn());
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handles: &Arc<Vec<Arc<ReactorHandle>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, shared, handles),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

/// Admission control: greet with Hello and hand the socket to a reactor, or
/// shed with Busy and close. The session slot is reserved *before* the
/// greeting so two racing connections cannot both squeeze past the cap.
fn admit(mut stream: TcpStream, shared: &Arc<Shared>, handles: &Arc<Vec<Arc<ReactorHandle>>>) {
    let _ = stream.set_nodelay(true);
    let cap = shared.config.max_sessions as u64;
    let admitted = shared
        .counters
        .active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < cap).then_some(n + 1)
        })
        .is_ok();
    let mut greeting = Vec::new();
    if !admitted {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        encode_response(&Response::Busy, &mut greeting);
        let _ = stream.write_all(&greeting);
        // Dropping the stream closes the connection: shedding is one frame
        // and a close, never a hang.
        return;
    }
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    encode_response(&Response::Hello, &mut greeting);
    if stream.write_all(&greeting).is_err() || stream.set_nonblocking(true).is_err() {
        shared.counters.active.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    // Shard by fd hash: cheap, stable for the socket's lifetime, and evenly
    // spread (fds are densely allocated). The session never migrates.
    let idx = reactor::raw_fd(&stream) as usize % handles.len();
    handles[idx].inject(stream);
}
