//! The reactor: an epoll-style readiness loop owning nonblocking sessions.
//!
//! Each reactor thread owns a [`minipoll::Poller`] and a private session
//! table — shared-nothing: a session's state is touched by exactly one
//! thread for its whole life, so none of it is behind a lock. The loop is a
//! classic tick:
//!
//! 1. **Wait** for readiness (or a doorbell: new sockets routed by the
//!    acceptor, a sibling reactor announcing a WAL flush, shutdown).
//! 2. **Ingest + execute**: drain every readable socket to `WouldBlock`,
//!    decode complete frames incrementally ([`FrameCursor`]), execute each
//!    session's pipelined batch inline.
//! 3. **Flush once**: every commit LSN produced this tick rides a single
//!    [`esdb_wal::Wal::flush_batch`] — group commit across sessions.
//! 4. **Ship + quorum**: log-subscriber sessions drain follower acks and
//!    stage newly durable chunks; sessions parked on a semi-sync quorum
//!    re-check the ack table.
//! 5. **Write**: push outboxes until `WouldBlock`, arming write interest
//!    only while bytes remain.
//!
//! Each session is a state machine, not a thread:
//!
//! ```text
//!             bytes/frames                batch done, commit LSNs
//!   ReadingFrame ──────────► Executing ───────────────────────► (flush)
//!        ▲                       │ ReadAt lagging   │ quorum configured
//!        │                       ▼                  ▼
//!        │                  AwaitReadAt        AwaitQuorum
//!        │                       │ frontier/deadline │ acks/fence/deadline
//!        └──── WritingResponse ◄─┴───────────────────┘
//! ```
//!
//! (`ReadingFrame` and `Executing` are the inline `Phase::Request` path;
//! the parked states are explicit [`Phase`] variants re-checked per tick.)
//!
//! **Why parked quorum waits are load-bearing:** the follower ack channel is
//! itself a session (the subscribe feed), and fd-hash sharding may place it
//! on the *same* reactor as the committing session. A blocking
//! `wait_quorum` there would deadlock: the commit waits for an ack only its
//! own reactor can drain. Parking the committer as [`Phase::AwaitQuorum`]
//! and re-checking [`esdb_core::ReplGroup::acked`] each tick keeps the ack
//! feed draining no matter where it lives.
//!
//! **Blocking that remains:** request execution (engine calls) runs inline
//! on the reactor. One-shot transactions acquire and release their locks
//! inside one call, but an *interactive* transaction holds locks across
//! round trips, and a conflicting inline wait then stalls every session on
//! that reactor until wait-die, deadlock detection, or the lock-wait
//! timeout resolves it — bounded, but a real convoy. That is the documented
//! cost of inline execution; DORA-style request routing is the paper's
//! answer and stays out of scope here.

use crate::protocol::{
    decode_request, encode_response, FrameError, Request, Response, WirePlan, MAX_FRAME,
};
use crate::server::Shared;
use esdb_core::config::ExecutionModel;
use esdb_core::{Database, QuorumError, ReplGroup};
use esdb_txn::Txn;
use esdb_wal::Lsn;
use esdb_workload::{TxnSpec, WorkloadOp};
use minipoll::{Event, Interest, Poller, WakeHandle, Waker};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read as IoRead, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token reserved for the reactor's wake pipe.
pub(crate) const WAKER_TOKEN: u64 = 0;
/// Socket read granularity.
const READ_CHUNK: usize = 64 * 1024;
/// Ship-feed outbox bound: chunks staged per tick per subscriber. The next
/// tick continues where this one stopped; backpressure, not truncation.
const MAX_SHIP_CHUNKS_PER_TICK: usize = 8;
/// Tick cap while any session is parked (quorum, read-at, shipping, stall):
/// parked states are re-checked on this cadence even if no fd fires.
const PARKED_TICK: Duration = Duration::from_millis(1);

/// The raw fd a stream registers under (also the acceptor's shard key).
#[cfg(unix)]
pub(crate) fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn raw_fd(_stream: &TcpStream) -> i32 {
    0
}

/// A reactor's cross-thread face: the acceptor routes accepted sockets here,
/// and sibling reactors ring the doorbell after a WAL flush so parked ship
/// feeds notice new durable bytes promptly.
pub(crate) struct ReactorHandle {
    injected: Mutex<Vec<TcpStream>>,
    doorbell: WakeHandle,
}

impl ReactorHandle {
    pub(crate) fn new(doorbell: WakeHandle) -> ReactorHandle {
        ReactorHandle { injected: Mutex::new(Vec::new()), doorbell }
    }

    /// Routes an admitted socket to this reactor and wakes it.
    pub(crate) fn inject(&self, stream: TcpStream) {
        self.injected.lock().push(stream);
        self.doorbell.wake();
    }

    /// Wakes the reactor's poll wait.
    pub(crate) fn wake(&self) {
        self.doorbell.wake();
    }

    fn take_injected(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.injected.lock())
    }
}

/// Incremental, nonblocking frame decoder: feed bytes as the socket delivers
/// them, pop complete requests as they materialize.
///
/// `Ok(None)` means *need more bytes* — the caller must wait for readiness,
/// never re-poll in a loop: with no new input, `next` is a pure function of
/// buffered state (a cheap length check), so the decoder can never busy-spin
/// or consume CPU proportional to wall time. Bytes are consumed exactly once
/// and never reordered, so any split of an input stream into `feed` calls —
/// down to one byte each — yields the same request sequence as one big
/// buffer; the property tests in `reactor_sm.rs` pin this down.
#[derive(Default)]
pub struct FrameCursor {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameCursor {
    /// An empty cursor.
    pub fn new() -> FrameCursor {
        FrameCursor::default()
    }

    /// A cursor pre-seeded with already-received bytes (e.g. ack frames
    /// pipelined behind a subscribe).
    pub fn from_bytes(buf: Vec<u8>) -> FrameCursor {
        FrameCursor { buf, pos: 0 }
    }

    /// Appends newly received bytes. Consumed prefix is compacted here, so
    /// memory is bounded by the unconsumed suffix plus one read chunk.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete request frame, `Ok(None)` when more bytes are
    /// needed, or the decode error on malformed input (the connection is
    /// then unrecoverable — framing is lost).
    pub fn next(&mut self) -> Result<Option<Request>, FrameError> {
        match decode_request(&self.buf[self.pos..]) {
            Ok(Some((req, used))) => {
                self.pos += used;
                Ok(Some(req))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Unconsumed bytes currently buffered (a nonzero value after `next`
    /// returned `Ok(None)` means a partial frame is pending).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes every unconsumed byte out of the cursor (used when a session
    /// flips into a subscribe feed: trailing bytes are ack frames).
    pub fn take_rest(&mut self) -> Vec<u8> {
        let rest = self.buf.split_off(self.pos);
        self.buf.clear();
        self.pos = 0;
        rest
    }
}

/// Where a session is in its state machine. `Request` covers the inline
/// ReadingFrame→Executing→WritingResponse path; the other variants are
/// parked states re-checked every tick.
enum Phase {
    /// Decoding and executing request frames inline.
    Request,
    /// A follower read waiting for the apply frontier (or its deadline).
    AwaitReadAt { table: u32, key: u64, min_lsn: Lsn, deadline: Instant },
    /// A follower OLAP query waiting for the apply frontier (or its
    /// deadline); once fresh, the plan runs pinned under the apply gate.
    AwaitQuery { min_lsn: Lsn, plan: WirePlan, deadline: Instant },
    /// A completed batch whose commit acks wait for the follower quorum.
    AwaitQuorum { lsn: Lsn, deadline: Instant },
    /// A one-way log feed (post-subscribe): ships chunks, drains acks.
    Shipping(Ship),
}

/// Shipping-state fields: the feed cursor, the follower's ack decoder, and
/// its registered slot in the replication group (deregistered on drop).
struct Ship {
    from: Lsn,
    acks: FrameCursor,
    slot: Option<FollowerSlot>,
}

/// One session: a socket plus all of its nonblocking state. Owned by
/// exactly one reactor; nothing here is shared or locked.
struct Conn {
    stream: TcpStream,
    fd: i32,
    token: u64,
    cursor: FrameCursor,
    /// Responses staged for the in-progress batch; encoded only at batch
    /// finalization so quorum failures can rewrite commit acks in place.
    staged: Vec<Response>,
    /// Indices into `staged` acknowledging a durable commit.
    commit_acks: Vec<usize>,
    /// Highest commit LSN this batch produced; joins the tick's group flush.
    flush_to: Option<Lsn>,
    /// Whether the current batch executed at least one frame.
    executed: bool,
    outbox: Vec<u8>,
    out_pos: usize,
    /// At most one open interactive transaction.
    txn: Option<Txn>,
    phase: Phase,
    stalled_since: Option<Instant>,
    fatal: Option<FrameError>,
    /// A decoded subscribe frame: the batch ends and the session flips into
    /// `Shipping` at finalization.
    subscribe: Option<(Lsn, u64)>,
    /// Close once every staged response has been written out.
    close_after_drain: bool,
    closed: bool,
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32, token: u64) -> Conn {
        Conn {
            stream,
            fd,
            token,
            cursor: FrameCursor::new(),
            staged: Vec::new(),
            commit_acks: Vec::new(),
            flush_to: None,
            executed: false,
            outbox: Vec::new(),
            out_pos: 0,
            txn: None,
            phase: Phase::Request,
            stalled_since: None,
            fatal: None,
            subscribe: None,
            close_after_drain: false,
            closed: false,
            want_write: false,
        }
    }

    fn note(&mut self, lsn: Option<Lsn>) {
        if let Some(lsn) = lsn {
            self.flush_to = Some(self.flush_to.map_or(lsn, |m| m.max(lsn)));
        }
    }

    /// Anything pending that finalization would turn into output?
    fn has_output(&self) -> bool {
        self.executed
            || !self.staged.is_empty()
            || self.fatal.is_some()
            || self.subscribe.is_some()
    }

    /// Safe to honor `close_after_drain`: every owed byte has left.
    fn drained_for_close(&self) -> bool {
        self.outbox.len() <= self.out_pos
            && !self.has_output()
            && self.flush_to.is_none()
            && matches!(self.phase, Phase::Request | Phase::Shipping(_))
    }
}

/// A follower's ack slot in the primary's [`ReplGroup`], deregistered
/// however the session ends.
struct FollowerSlot {
    group: Arc<ReplGroup>,
    id: u64,
}

impl Drop for FollowerSlot {
    fn drop(&mut self) {
        self.group.deregister_follower(self.id);
    }
}

/// Reactor entry point, one call per reactor thread.
pub(crate) fn run(
    id: usize,
    shared: Arc<Shared>,
    poller: Poller,
    waker: Waker,
    handle: Arc<ReactorHandle>,
    peers: Arc<Vec<Arc<ReactorHandle>>>,
) {
    Reactor {
        id,
        shared,
        poller,
        waker,
        handle,
        peers,
        conns: HashMap::new(),
        next_token: WAKER_TOKEN + 1,
    }
    .run();
}

struct Reactor {
    id: usize,
    shared: Arc<Shared>,
    poller: Poller,
    waker: Waker,
    handle: Arc<ReactorHandle>,
    peers: Arc<Vec<Arc<ReactorHandle>>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.tick_timeout();
            let poll_start = Instant::now();
            let _ = self.poller.wait(&mut events, Some(timeout));
            if esdb_obs::enabled() {
                esdb_obs::record_component(
                    esdb_obs::Component::ReactorPoll,
                    poll_start.elapsed().as_nanos() as u64,
                );
            }
            let tick_start = Instant::now();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain_and_exit();
                return;
            }
            if events.iter().any(|e| e.token == WAKER_TOKEN) {
                self.waker.drain();
            }
            for stream in self.handle.take_injected() {
                self.register(stream);
            }
            self.tick(&events, tick_start);
            if esdb_obs::enabled() {
                esdb_obs::record_component(
                    esdb_obs::Component::ReactorTick,
                    tick_start.elapsed().as_nanos() as u64,
                );
            }
        }
    }

    /// The effective poll timeout: the configured interval, shortened to
    /// [`PARKED_TICK`] while any session is in a parked state that only a
    /// tick (not an fd event) can advance.
    fn tick_timeout(&self) -> Duration {
        let base = self.shared.config.poll_interval;
        let parked = self.conns.values().any(|c| {
            matches!(
                c.phase,
                Phase::AwaitQuorum { .. }
                    | Phase::AwaitReadAt { .. }
                    | Phase::AwaitQuery { .. }
                    | Phase::Shipping(_)
            ) || c.stalled_since.is_some()
                || c.outbox.len() > c.out_pos
        });
        if parked {
            base.min(PARKED_TICK)
        } else {
            base
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        // On non-unix the fallback poller keys deletes by fd, so a unique
        // pseudo-fd (the token) keeps registrations independent.
        let fd = if cfg!(unix) { raw_fd(&stream) } else { token as i32 };
        if self.poller.add(fd, token, Interest::READABLE).is_err() {
            self.shared.counters.active.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.conns.insert(token, Conn::new(stream, fd, token));
    }

    /// One reactor tick over `events`.
    fn tick(&mut self, events: &[Event], now: Instant) {
        let shared = Arc::clone(&self.shared);
        let readable: HashSet<u64> = events
            .iter()
            .filter(|e| e.readable && e.token != WAKER_TOKEN)
            .map(|e| e.token)
            .collect();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();

        // Phase A — ingest, park resolution, inline execution.
        let mut tick_flush: Vec<Lsn> = Vec::new();
        let mut flushed: Vec<u64> = Vec::new();
        for &t in &tokens {
            let conn = self.conns.get_mut(&t).expect("conn");
            if conn.closed || matches!(conn.phase, Phase::Shipping(_)) {
                continue;
            }
            if readable.contains(&t) {
                let got = ingest(&mut conn.stream, &mut conn.cursor);
                if got.received {
                    conn.stalled_since = None;
                }
                match got.end {
                    IngestEnd::Open => {}
                    // EOF still owes responses for what was received; close
                    // once the outbox drains.
                    IngestEnd::Eof => conn.close_after_drain = true,
                    IngestEnd::Error => {
                        conn.closed = true;
                        continue;
                    }
                }
            }
            if let Phase::AwaitReadAt { table, key, min_lsn, deadline } = conn.phase {
                resolve_read_at(&shared, conn, table, key, min_lsn, Some(deadline), now);
            }
            if matches!(conn.phase, Phase::AwaitQuery { .. }) {
                // The plan is not Copy: take the phase out, re-park inside
                // resolve_query if the frontier is still short.
                if let Phase::AwaitQuery { min_lsn, plan, deadline } =
                    std::mem::replace(&mut conn.phase, Phase::Request)
                {
                    resolve_query(&shared, conn, min_lsn, plan, Some(deadline), now);
                }
            }
            if matches!(conn.phase, Phase::Request) {
                exec_pending(&shared, conn, now, false);
                // Stall accounting: a partial frame with a quiet peer.
                if conn.fatal.is_none() && conn.subscribe.is_none() {
                    if matches!(conn.phase, Phase::Request) && conn.cursor.buffered() > 0 {
                        let began = *conn.stalled_since.get_or_insert(now);
                        if let Some(budget) = shared.config.stall_timeout {
                            if now.duration_since(began) >= budget {
                                encode_response(
                                    &Response::Error(FrameError::Timeout.to_string()),
                                    &mut conn.outbox,
                                );
                                conn.close_after_drain = true;
                                conn.stalled_since = None;
                            }
                        }
                    } else {
                        conn.stalled_since = None;
                    }
                }
            }
            if matches!(conn.phase, Phase::Request) {
                if let Some(lsn) = conn.flush_to {
                    // Batch complete with commits: joins the tick flush.
                    tick_flush.push(lsn);
                    flushed.push(t);
                } else if conn.has_output() {
                    finalize(&shared, conn);
                }
            }
        }

        // Phase B — the group-commit point: one durability wait covers every
        // batch that completed this tick, across all of this reactor's
        // sessions. Accounted as commit-flush wait; sibling reactors are
        // woken so ship feeds they host notice the new durable bytes.
        if !tick_flush.is_empty() {
            {
                let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::CommitFlush);
                shared.db.wal().flush_batch(tick_flush.iter().copied());
            }
            for (i, peer) in self.peers.iter().enumerate() {
                if i != self.id {
                    peer.wake();
                }
            }
        }

        // Phase C — ship feeds: drain follower acks (feeding the quorum ack
        // table *before* quorum resolution below), then stage newly durable
        // chunks.
        for &t in &tokens {
            let conn = self.conns.get_mut(&t).expect("conn");
            if conn.closed || !matches!(conn.phase, Phase::Shipping(_)) {
                continue;
            }
            let mut phase = std::mem::replace(&mut conn.phase, Phase::Request);
            if let Phase::Shipping(ship) = &mut phase {
                ship_tick(&shared, conn, ship, readable.contains(&t));
            }
            conn.phase = phase;
        }

        // Phase B2 — batches past the flush either park on the quorum or
        // finalize straight away.
        for &t in &flushed {
            let conn = self.conns.get_mut(&t).expect("conn");
            if !conn.closed {
                after_flush(&shared, conn, now);
            }
        }

        // Phase B3 — parked quorum waits re-check acks/fencing/deadline.
        // A session that resolves may have buffered frames that arrived
        // during the wait; execute them now (their commits flush inline —
        // the rare continuation path) so no input ever waits on an fd event
        // that will never fire.
        for &t in &tokens {
            let conn = self.conns.get_mut(&t).expect("conn");
            if conn.closed {
                continue;
            }
            if let Phase::AwaitQuorum { lsn, deadline } = conn.phase {
                if resolve_quorum(&shared, conn, lsn, deadline, now) {
                    exec_pending(&shared, conn, now, false);
                    if matches!(conn.phase, Phase::Request) {
                        if let Some(lsn) = conn.flush_to {
                            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::CommitFlush);
                            shared.db.wal().wait_durable(lsn);
                            after_flush(&shared, conn, now);
                        } else if conn.has_output() {
                            finalize(&shared, conn);
                        }
                    }
                }
            }
        }

        // Phase D — write pass and interest maintenance, then the sweep.
        for &t in &tokens {
            let conn = self.conns.get_mut(&t).expect("conn");
            flush_outbox(&self.poller, conn);
        }
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.closed)
            .map(|(&t, _)| t)
            .collect();
        for t in dead {
            let conn = self.conns.remove(&t).expect("conn");
            let _ = self.poller.delete(conn.fd);
            self.shared.counters.active.fetch_sub(1, Ordering::SeqCst);
            // Dropping the conn aborts any open interactive transaction and
            // deregisters any follower slot.
        }
    }

    /// Graceful shutdown: one final ingest per session (everything already
    /// received is part of the contract), execute it, one flush covering all
    /// of it, resolve quorum waits with the blocking primitive (no new acks
    /// will route anywhere after the drain, and the feed sessions on this
    /// reactor have already taken their last drain), then write out every
    /// outbox with blocking sockets.
    fn drain_and_exit(&mut self) {
        let shared = Arc::clone(&self.shared);
        let now = Instant::now();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        let mut tick_flush: Vec<Lsn> = Vec::new();
        for &t in &tokens {
            let conn = self.conns.get_mut(&t).expect("conn");
            match conn.phase {
                Phase::Shipping(_) => {
                    conn.closed = true;
                    continue;
                }
                Phase::AwaitReadAt { table, key, min_lsn, .. } => {
                    // No more ticks are coming: resolve now or lag now.
                    resolve_read_at(&shared, conn, table, key, min_lsn, None, now);
                }
                Phase::AwaitQuery { .. } => {
                    if let Phase::AwaitQuery { min_lsn, plan, .. } =
                        std::mem::replace(&mut conn.phase, Phase::Request)
                    {
                        resolve_query(&shared, conn, min_lsn, plan, None, now);
                    }
                }
                _ => {}
            }
            if conn.closed {
                continue;
            }
            let got = ingest(&mut conn.stream, &mut conn.cursor);
            if matches!(got.end, IngestEnd::Error) {
                conn.closed = true;
                continue;
            }
            if matches!(conn.phase, Phase::Request) {
                exec_pending(&shared, conn, now, true);
            }
            if let Some(lsn) = conn.flush_to {
                tick_flush.push(lsn);
            }
        }
        if !tick_flush.is_empty() {
            let _wait = esdb_obs::wait_timer(esdb_obs::WaitClass::CommitFlush);
            shared.db.wal().flush_batch(tick_flush);
        }
        for &t in &tokens {
            let conn = self.conns.get_mut(&t).expect("conn");
            if conn.closed {
                continue;
            }
            let quorum_lsn = match conn.phase {
                Phase::AwaitQuorum { lsn, .. } => Some(lsn),
                _ => conn.flush_to.take(),
            };
            if let (Some(lsn), Some(group), Some(policy)) = (
                quorum_lsn,
                shared.config.repl_group.as_ref(),
                shared.config.quorum.as_ref(),
            ) {
                if let Err(e) = group.wait_quorum(lsn, policy) {
                    let downgrade = match e {
                        QuorumError::Timeout { lsn, acked, needed } => {
                            Response::QuorumTimeout { lsn, acked, needed }
                        }
                        QuorumError::Fenced { term } => Response::Fenced { term },
                    };
                    for &i in &conn.commit_acks {
                        conn.staged[i] = downgrade.clone();
                    }
                }
            }
            conn.flush_to = None;
            conn.phase = Phase::Request;
            finalize(&shared, conn);
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.write_all(&conn.outbox[conn.out_pos..]);
        }
        // Sessions drop here: open transactions abort, follower slots
        // deregister, sockets close.
    }
}

enum IngestEnd {
    Open,
    Eof,
    Error,
}

struct IngestOutcome {
    end: IngestEnd,
    received: bool,
}

/// Reads the socket to `WouldBlock` (the level-triggered contract), feeding
/// every byte into `cursor`.
fn ingest(stream: &mut TcpStream, cursor: &mut FrameCursor) -> IngestOutcome {
    let mut chunk = [0u8; READ_CHUNK];
    let mut received = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return IngestOutcome { end: IngestEnd::Eof, received },
            Ok(n) => {
                cursor.feed(&chunk[..n]);
                received = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                return IngestOutcome { end: IngestEnd::Open, received }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return IngestOutcome { end: IngestEnd::Error, received },
        }
    }
}

/// Executes every complete frame the cursor holds, stopping at a park, a
/// subscribe, or a decode error. With `immediate` (shutdown drain), a
/// lagging follower read answers `Lagging` now instead of parking.
fn exec_pending(shared: &Arc<Shared>, conn: &mut Conn, now: Instant, immediate: bool) {
    while conn.fatal.is_none()
        && conn.subscribe.is_none()
        && matches!(conn.phase, Phase::Request)
    {
        match conn.cursor.next() {
            Err(e) => conn.fatal = Some(e),
            Ok(None) => break,
            Ok(Some(req)) => {
                conn.executed = true;
                exec_one(shared, conn, req, now, immediate);
            }
        }
    }
}

/// Executes one request inline, staging its response. The port of the
/// threaded server's batch executor, minus everything that blocked: commits
/// only *note* their LSN (the tick flush pays durability), quorum and
/// read-at waits become parked phases.
fn exec_one(shared: &Arc<Shared>, conn: &mut Conn, req: Request, now: Instant, immediate: bool) {
    let db = &shared.db;
    let resp = match req {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats()),
        Request::ObsStats => Response::ObsStats(Box::new(db.obs_snapshot())),
        Request::OneShot { may_fail, ops } => {
            if let Some(wrong) = ownership_refusal(shared, &ops) {
                conn.staged.push(wrong);
                return;
            }
            shared.counters.txns_executed.fetch_add(1, Ordering::Relaxed);
            let spec = TxnSpec { kind: "net", ops, may_fail };
            // Per-txn profile covers execution only; the tick's shared
            // group-commit flush is accounted once as CommitFlush rather
            // than attributed to any single transaction.
            let ((outcome, lsn), profile) =
                esdb_obs::profile_scope(|| db.run_spec_deferred(&spec));
            if esdb_obs::enabled() {
                esdb_obs::record_component(esdb_obs::Component::TxnLatency, profile.wall());
            }
            if outcome.is_committed() {
                shared.counters.txns_committed.fetch_add(1, Ordering::Relaxed);
                if lsn.is_some() {
                    conn.commit_acks.push(conn.staged.len());
                }
            }
            conn.note(lsn);
            Response::Outcome(outcome)
        }
        Request::Begin => match conn.txn {
            Some(_) => Response::Error("transaction already open".into()),
            None => {
                if matches!(db.config().execution, ExecutionModel::Dora { .. }) {
                    Response::Error(
                        "interactive transactions require the conventional engine; \
                         DORA accepts one-shot TXN frames only"
                            .into(),
                    )
                } else {
                    conn.txn = Some(db.txn_manager().begin());
                    Response::Ok
                }
            }
        },
        Request::Read { table, key } => {
            match conn.txn.as_mut().map(|txn| txn.read(table, key)) {
                None => Response::Error("no open transaction".into()),
                Some(Ok(row)) => Response::Row(row),
                Some(Err(e)) => abort_with(conn, e),
            }
        }
        Request::Update { table, key, row } => {
            match conn.txn.as_mut().map(|txn| txn.update(table, key, &row)) {
                None => Response::Error("no open transaction".into()),
                Some(Ok(_)) => Response::Ok,
                Some(Err(e)) => abort_with(conn, e),
            }
        }
        Request::Insert { table, key, row } => {
            match conn.txn.as_mut().map(|txn| txn.insert(table, key, &row)) {
                None => Response::Error("no open transaction".into()),
                Some(Ok(())) => Response::Ok,
                Some(Err(e)) => abort_with(conn, e),
            }
        }
        Request::Commit => match conn.txn.take() {
            None => Response::Error("no open transaction".into()),
            Some(txn) => {
                let lsn = txn.commit_deferred();
                if lsn.is_some() {
                    conn.commit_acks.push(conn.staged.len());
                }
                conn.note(lsn);
                Response::Ok
            }
        },
        Request::Abort => match conn.txn.take() {
            None => Response::Error("no open transaction".into()),
            Some(txn) => {
                txn.abort();
                Response::Ok
            }
        },
        Request::ReplSnapshot => {
            snapshot_into(db, &mut conn.staged);
            return;
        }
        // A subscribe ends the request/response dialogue: the batch
        // finalizes and the session flips into a log feed. Frames already
        // buffered behind it are ack frames and stay for the feed.
        Request::ReplSubscribe { from, term } => {
            conn.subscribe = Some((from, term));
            return;
        }
        // Acks belong to subscribe feeds; on a request/response session
        // they are a protocol misuse, answered typed rather than fatally.
        Request::ReplAck { .. } => {
            Response::Error("acks are only valid on a subscribe feed".into())
        }
        Request::CommitToken => Response::Token { lsn: db.wal().durable_lsn() },
        Request::ReadAt { table, key, min_lsn } => {
            if let Some(watermark) = &shared.config.applied_watermark {
                let applied = watermark.load(Ordering::Acquire);
                if applied < min_lsn {
                    if immediate || feed_dead(shared) {
                        Response::Lagging { applied }
                    } else {
                        // Park: the reactor keeps serving everyone else
                        // while this session waits for the frontier.
                        conn.phase = Phase::AwaitReadAt {
                            table,
                            key,
                            min_lsn,
                            deadline: now + shared.config.read_at_wait,
                        };
                        return;
                    }
                } else {
                    fresh_read(db, table, key)
                }
            } else {
                // A primary: every read is trivially fresh.
                fresh_read(db, table, key)
            }
        }
        // 2PC phase one: execute the ops, force the Prepare record, and
        // vote. A yes-vote parks the transaction (locks held) in the
        // engine's prepared registry until a ShardDecide arrives.
        Request::ShardPrepare { gtid, ops } => {
            // The gate runs before the prepare executes, so a refused slice
            // registers nothing — the coordinator sees a clean no-vote
            // analog and aborts without an in-doubt participant here.
            if let Some(wrong) = ownership_refusal(shared, &ops) {
                conn.staged.push(wrong);
                return;
            }
            shared.counters.txns_executed.fetch_add(1, Ordering::Relaxed);
            let spec = TxnSpec { kind: "shard", ops, may_fail: true };
            let outcome = match db.run_spec_prepare(gtid, &spec) {
                esdb_core::PrepareVote::Commit { reads } => {
                    esdb_core::spec_exec::SpecOutcome::Committed { reads }
                }
                esdb_core::PrepareVote::Abort { outcome } => outcome,
            };
            Response::ShardVote { gtid, outcome }
        }
        // 2PC phase two: finish a prepared transaction. Unknown gtids are
        // acknowledged too — a retried decision must be idempotent.
        Request::ShardDecide { gtid, commit } => {
            if db.decide(gtid, commit) && commit {
                shared.counters.txns_committed.fetch_add(1, Ordering::Relaxed);
            }
            Response::Ok
        }
        // Participant recovery asks the coordinator's decision log what
        // became of an in-doubt gtid; no durable decision means abort
        // (presumed abort).
        Request::ShardStatus { gtid } => match &shared.config.decision_source {
            Some(source) => Response::ShardDecision {
                gtid,
                commit: (source.0)(gtid).unwrap_or(false),
            },
            None => Response::Error("no coordinator decision source configured".into()),
        },
        Request::ShardInDoubt => Response::ShardGtids(db.prepared_gtids()),
        Request::Query { min_lsn, plan } => {
            if shared.config.applied_watermark.is_some() {
                // Follower: resolve now if fresh, park otherwise (or answer
                // Lagging straight away during a shutdown drain).
                let deadline =
                    if immediate { None } else { Some(now + shared.config.read_at_wait) };
                resolve_query(shared, conn, min_lsn, plan, deadline, now);
                return;
            }
            // A primary never serves plans: its heap has no consistent-cut
            // pin (writers mutate it mid-scan). OLAP is the followers' job —
            // that asymmetry is the HTAP design, not an accident.
            Response::Error("queries are served by followers; connect to a replica".into())
        }
        Request::RoutingSnapshot => match &shared.config.routing_source {
            Some(source) => {
                let (epoch, slots) = (source.0)();
                Response::Routing { epoch, slots }
            }
            None => Response::Error("no routing table configured".into()),
        },
        Request::MigFetch { table, slot, slot_count } => match db.table(table) {
            Some(t) => {
                // Fuzzy by design: the scan runs against the live heap with
                // no pin, so it may carry uncommitted rows — the migration's
                // repeat-history delta catch-up replays the WAL (including
                // abort compensations) and converges the copy regardless.
                let mut rows = Vec::new();
                let mut overflow = false;
                let scan = t.scan(|key, row| {
                    if esdb_core::slot_of(table, key, slot_count) == slot {
                        if rows.len() >= MIG_FETCH_MAX_ROWS {
                            overflow = true;
                        } else {
                            rows.push((key, row.to_vec()));
                        }
                    }
                });
                match scan {
                    Err(e) => Response::Error(format!("migration scan failed: {e}")),
                    Ok(()) if overflow => Response::Error(format!(
                        "slot exceeds {MIG_FETCH_MAX_ROWS} rows; fetch a finer ring"
                    )),
                    Ok(()) => Response::MigRows { rows },
                }
            }
            None => Response::Error(format!("no such table: {table}")),
        },
    };
    conn.staged.push(resp);
}

/// Most rows a [`Request::MigFetch`] answer carries. Keeps the single-frame
/// reply comfortably under [`MAX_FRAME`]; a slot that outgrows the cap is a
/// typed error telling the operator to migrate on a finer ring.
const MIG_FETCH_MAX_ROWS: usize = 8192;

/// Runs the configured ownership gate over every op target, returning the
/// typed [`Response::WrongShard`] refusal for the first key this server
/// does not own (`None` when unsharded or everything is owned).
fn ownership_refusal(shared: &Arc<Shared>, ops: &[WorkloadOp]) -> Option<Response> {
    let check = shared.config.ownership_check.as_ref()?;
    for op in ops {
        let (table, key) = match *op {
            WorkloadOp::Read { table, key }
            | WorkloadOp::Write { table, key, .. }
            | WorkloadOp::Add { table, key, .. }
            | WorkloadOp::Insert { table, key, .. }
            | WorkloadOp::Delete { table, key } => (table, key),
        };
        if let Some((epoch, hint)) = (check.0)(table, key) {
            return Some(Response::WrongShard { epoch, hint });
        }
    }
    None
}

/// Re-checks a parked follower query (or resolves a fresh one). `deadline:
/// None` means resolve now: run pinned if the frontier arrived, `Lagging`
/// otherwise. Re-parks the session when the frontier is short but the
/// deadline has not passed and the feed is alive.
fn resolve_query(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    min_lsn: Lsn,
    plan: WirePlan,
    deadline: Option<Instant>,
    now: Instant,
) {
    let applied = shared
        .config
        .applied_watermark
        .as_ref()
        .map_or(u64::MAX, |w| w.load(Ordering::Acquire));
    if applied >= min_lsn {
        conn.phase = Phase::Request;
        let resp = run_query(shared, &plan);
        conn.staged.push(resp);
    } else if deadline.map_or(true, |d| now >= d) || feed_dead(shared) {
        conn.phase = Phase::Request;
        conn.staged.push(Response::Lagging { applied });
    } else {
        conn.phase = Phase::AwaitQuery {
            min_lsn,
            plan,
            deadline: deadline.expect("parking requires a deadline"),
        };
    }
}

/// Result-size bounds: the whole result rides one frame, so refuse anything
/// that could overflow [`MAX_FRAME`] instead of truncating it (a truncated
/// result is a wrong answer; a typed error is not).
const MAX_QUERY_ROWS: usize = 16_384;
const MAX_QUERY_CELLS: usize = 100_000;

/// Executes a validated plan pinned under the apply gate. Holding the read
/// side keeps the apply loop out of its write section for the whole plan,
/// so every operator sees the heap at one applied frontier — and the
/// frontier only advances at transaction-consistent cuts.
fn run_query(shared: &Arc<Shared>, plan: &WirePlan) -> Response {
    let _pin = shared.config.apply_gate.as_ref().map(|g| g.read());
    let node = match compile_wire(&shared.db, plan) {
        Ok((node, _)) => node,
        Err(msg) => return Response::Error(msg),
    };
    let rows = esdb_staged::execute_staged(&node, esdb_staged::DEFAULT_BATCH);
    let cells: usize = rows.iter().map(|r| r.len()).sum();
    if rows.len() > MAX_QUERY_ROWS || cells > MAX_QUERY_CELLS {
        return Response::Error(format!(
            "query result too large for one frame ({} rows); aggregate or narrow the plan",
            rows.len()
        ));
    }
    Response::Rows(rows)
}

/// Compiles a wire plan against the server's catalog, returning the plan
/// plus its output row width. Every table id, index id, and column offset
/// is validated here — the execution engines index rows unchecked, so this
/// is the panic barrier between the wire and the engine.
fn compile_wire(
    db: &Arc<Database>,
    plan: &WirePlan,
) -> Result<(esdb_staged::PlanNode, usize), String> {
    use esdb_staged::PlanNode;
    let resolve = |id: u32| {
        db.table(id).ok_or_else(|| format!("unknown table {id}"))
    };
    Ok(match plan {
        WirePlan::Scan { table } => {
            let t = resolve(*table)?;
            let width = t.schema().arity + 1;
            (PlanNode::scan(t), width)
        }
        WirePlan::IndexScan { table, index, lo, hi } => {
            let t = resolve(*table)?;
            if t.secondary(*index).is_none() {
                return Err(format!("unknown index {index} on table {table}"));
            }
            let width = t.schema().arity + 1;
            (PlanNode::index_scan(t, *index, *lo, *hi), width)
        }
        WirePlan::Filter { input, col, op, value } => {
            let (node, width) = compile_wire(db, input)?;
            if *col as usize >= width {
                return Err(format!("filter column {col} out of range (width {width})"));
            }
            (node.filter(*col as usize, *op, *value), width)
        }
        WirePlan::Project { input, cols } => {
            let (node, width) = compile_wire(db, input)?;
            if let Some(bad) = cols.iter().find(|&&c| c as usize >= width) {
                return Err(format!("project column {bad} out of range (width {width})"));
            }
            let cols: Vec<usize> = cols.iter().map(|&c| c as usize).collect();
            let out = cols.len();
            (node.project(cols), out)
        }
        WirePlan::Aggregate { input, group_col, agg_col, func } => {
            let (node, width) = compile_wire(db, input)?;
            if *agg_col as usize >= width {
                return Err(format!("aggregate column {agg_col} out of range (width {width})"));
            }
            if let Some(g) = group_col {
                if *g as usize >= width {
                    return Err(format!("group column {g} out of range (width {width})"));
                }
            }
            let out = if group_col.is_some() { 2 } else { 1 };
            (
                node.aggregate(group_col.map(|g| g as usize), *agg_col as usize, *func),
                out,
            )
        }
        WirePlan::Sort { input, col } => {
            let (node, width) = compile_wire(db, input)?;
            if *col as usize >= width {
                return Err(format!("sort column {col} out of range (width {width})"));
            }
            (node.sort(*col as usize), width)
        }
    })
}

fn feed_dead(shared: &Shared) -> bool {
    shared
        .config
        .feed_live
        .as_ref()
        .is_some_and(|live| !live.load(Ordering::Acquire))
}

/// Re-checks a parked follower read. `deadline: None` (shutdown drain)
/// means resolve now: fresh if the frontier arrived, `Lagging` otherwise.
fn resolve_read_at(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    table: u32,
    key: u64,
    min_lsn: Lsn,
    deadline: Option<Instant>,
    now: Instant,
) {
    let applied = shared
        .config
        .applied_watermark
        .as_ref()
        .map_or(u64::MAX, |w| w.load(Ordering::Acquire));
    if applied >= min_lsn {
        conn.phase = Phase::Request;
        let resp = fresh_read(&shared.db, table, key);
        conn.staged.push(resp);
    } else if deadline.map_or(true, |d| now >= d) || feed_dead(shared) {
        // A dead feed means the frontier will never move: answer Lagging
        // now instead of burning the full bounded wait.
        conn.phase = Phase::Request;
        conn.staged.push(Response::Lagging { applied });
    }
}

/// The fresh half of a follower read: serve the row through a throwaway
/// read-only transaction.
fn fresh_read(db: &Arc<Database>, table: u32, key: u64) -> Response {
    if matches!(db.config().execution, ExecutionModel::Dora { .. }) {
        return Response::Error("follower reads require the conventional engine".into());
    }
    let mut txn = db.txn_manager().begin();
    let resp = match txn.read(table, key) {
        Ok(row) => Response::Row(row),
        Err(e) => Response::Error(format!("read failed: {e}")),
    };
    txn.abort();
    resp
}

/// A flushed batch either parks on the semi-sync quorum or finalizes.
fn after_flush(shared: &Arc<Shared>, conn: &mut Conn, now: Instant) {
    let Some(lsn) = conn.flush_to.take() else {
        if conn.has_output() {
            finalize(shared, conn);
        }
        return;
    };
    if let (Some(_), Some(policy)) =
        (shared.config.repl_group.as_ref(), shared.config.quorum.as_ref())
    {
        conn.phase = Phase::AwaitQuorum { lsn, deadline: now + policy.timeout };
    } else {
        finalize(shared, conn);
    }
}

/// Re-checks a parked quorum wait: fencing first (a deposed primary must
/// not ack), then the ack count, then the deadline. A failed wait never
/// hangs and never lies — every commit ack in the batch is rewritten to the
/// typed degradation (the commit *is* durable locally; only its replication
/// guarantee is unmet). Returns whether the session resumed.
fn resolve_quorum(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    lsn: Lsn,
    deadline: Instant,
    now: Instant,
) -> bool {
    let group = shared.config.repl_group.as_ref().expect("quorum without group");
    let policy = shared.config.quorum.as_ref().expect("quorum without policy");
    let downgrade = if let Some(term) = group.fenced_by() {
        Some(Response::Fenced { term })
    } else if group.acked(lsn) >= policy.k {
        None
    } else if now >= deadline {
        Some(Response::QuorumTimeout { lsn, acked: group.acked(lsn), needed: policy.k })
    } else {
        return false;
    };
    if let Some(resp) = downgrade {
        for &i in &conn.commit_acks {
            conn.staged[i] = resp.clone();
        }
    }
    conn.phase = Phase::Request;
    finalize(shared, conn);
    true
}

/// Batch finalization: encode every staged response into the outbox, count
/// the batch, and apply any pending state transition (fatal close or the
/// flip into shipping).
fn finalize(shared: &Arc<Shared>, conn: &mut Conn) {
    if conn.executed {
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        conn.executed = false;
    }
    for resp in conn.staged.drain(..) {
        encode_response(&resp, &mut conn.outbox);
    }
    conn.commit_acks.clear();
    conn.flush_to = None;
    if let Some(e) = conn.fatal.take() {
        // Protocol desync is unrecoverable: report and close.
        encode_response(&Response::Error(e.to_string()), &mut conn.outbox);
        conn.close_after_drain = true;
        return;
    }
    if let Some((from, term)) = conn.subscribe.take() {
        begin_shipping(shared, conn, from, term);
    }
}

/// Flips a session into a log feed. With a replication group this is the
/// term handshake: a subscriber speaking from a higher term is (or has
/// seen) our successor — record the supersession and refuse to ship a
/// single byte, the fence that keeps a deposed primary from feeding anyone
/// its divergent tail.
fn begin_shipping(shared: &Arc<Shared>, conn: &mut Conn, from: Lsn, sub_term: u64) {
    let mut slot = None;
    if let Some(g) = shared.config.repl_group.as_ref() {
        if sub_term > g.term() {
            g.fence(sub_term);
        }
        if let Some(t) = g.fenced_by() {
            encode_response(&Response::Fenced { term: t }, &mut conn.outbox);
            conn.close_after_drain = true;
            return;
        }
        slot = Some(FollowerSlot { group: Arc::clone(g), id: g.register_follower() });
    }
    // Bytes already buffered behind the subscribe frame are ack frames.
    let acks = FrameCursor::from_bytes(conn.cursor.take_rest());
    conn.phase = Phase::Shipping(Ship { from, acks, slot });
}

/// One tick of a ship feed: drain follower acks into the group's ack table,
/// re-check fencing, then stage newly durable chunks (bounded per tick;
/// an undrained outbox is backpressure and defers shipping).
fn ship_tick(shared: &Arc<Shared>, conn: &mut Conn, ship: &mut Ship, readable: bool) {
    if conn.close_after_drain {
        return;
    }
    if readable {
        let got = ingest(&mut conn.stream, &mut ship.acks);
        if !matches!(got.end, IngestEnd::Open) {
            // The subscriber hung up (or errored): the feed is over.
            conn.closed = true;
            return;
        }
    }
    loop {
        match ship.acks.next() {
            Ok(Some(Request::ReplAck { term, lsn })) => {
                if let Some(s) = &ship.slot {
                    s.group.note_ack(s.id, term, lsn);
                }
            }
            // Non-ack requests on a feed are a contract breach and close it.
            Ok(Some(_)) | Err(_) => {
                conn.closed = true;
                return;
            }
            Ok(None) => break,
        }
    }
    let group = shared.config.repl_group.as_ref();
    if let Some(g) = group {
        if let Some(t) = g.fenced_by() {
            encode_response(&Response::Fenced { term: t }, &mut conn.outbox);
            conn.close_after_drain = true;
            return;
        }
    }
    if conn.outbox.len() > conn.out_pos {
        return;
    }
    let wal = shared.db.wal();
    let durable = wal.durable_lsn();
    if durable <= ship.from {
        return;
    }
    let Some((bytes, start)) = wal.durable_tail(ship.from) else {
        // The log was truncated past this subscriber's cursor; only a fresh
        // snapshot can help it. Closing the feed signals that.
        conn.closed = true;
        return;
    };
    if start != ship.from {
        conn.closed = true;
        return;
    }
    // The store may hold flushed bytes the durable watermark has not
    // published yet; never ship past what the WAL calls durable.
    let avail = ((durable - start) as usize).min(bytes.len());
    if avail == 0 {
        return;
    }
    let chunk_cap = shared.config.ship_chunk.min(MAX_FRAME - 64).max(1);
    let term = group.map_or(0, |g| g.term());
    let mut off = 0;
    let mut chunks = 0;
    while off < avail && chunks < MAX_SHIP_CHUNKS_PER_TICK {
        let n = (avail - off).min(chunk_cap);
        encode_response(
            &Response::LogChunk {
                term,
                start: start + off as u64,
                bytes: bytes[off..off + n].to_vec(),
            },
            &mut conn.outbox,
        );
        off += n;
        chunks += 1;
    }
    ship.from = start + off as u64;
}

/// Writes the outbox until done or `WouldBlock`, arming write interest only
/// while bytes remain so an idle session costs zero wakeups.
fn flush_outbox(poller: &Poller, conn: &mut Conn) {
    if conn.closed {
        return;
    }
    while conn.out_pos < conn.outbox.len() {
        match conn.stream.write(&conn.outbox[conn.out_pos..]) {
            Ok(0) => {
                conn.closed = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.closed = true;
                return;
            }
        }
    }
    if conn.out_pos >= conn.outbox.len() {
        conn.outbox.clear();
        conn.out_pos = 0;
    }
    if conn.close_after_drain && conn.drained_for_close() {
        conn.closed = true;
        return;
    }
    let want = conn.outbox.len() > conn.out_pos;
    if want != conn.want_write {
        let interest = if want { Interest::BOTH } else { Interest::READABLE };
        if poller.modify(conn.fd, conn.token, interest).is_ok() {
            conn.want_write = want;
        }
    }
}

/// Takes a checkpoint and appends the full page snapshot to `responses`:
/// one [`Response::SnapBegin`] carrying the redo start LSN and catalog, a
/// [`Response::SnapPage`] per heap page, and a closing [`Response::SnapEnd`].
/// Pages may be dirtied again while we read them — that is the *fuzzy* part;
/// a page newer than the checkpoint just makes the replica's page-LSN
/// idempotent redo skip the already-applied records.
fn snapshot_into(db: &Arc<Database>, responses: &mut Vec<Response>) {
    let start_lsn = match db.checkpoint() {
        Ok(lsn) => lsn,
        Err(e) => {
            responses.push(Response::Error(format!("snapshot failed: {e}")));
            return;
        }
    };
    let catalog = db.catalog();
    responses.push(Response::SnapBegin {
        start_lsn,
        catalog: catalog
            .iter()
            .map(|(id, name, arity, pages)| (*id, name.clone(), *arity as u32, pages.clone()))
            .collect(),
        // Declarations only — index contents are derived state the replica
        // rebuilds from the installed heap.
        indexes: db
            .index_catalog()
            .into_iter()
            .flat_map(|(tid, defs)| {
                defs.into_iter()
                    .map(move |d| (tid, d.id, d.name, d.col as u32, d.kind.as_u8()))
            })
            .collect(),
    });
    let disk = db.disk();
    let mut page = esdb_storage::page::Page::new();
    let mut page_count = 0u64;
    for (_, _, _, pages) in &catalog {
        for &pid in pages {
            match disk.read(pid, &mut page) {
                Ok(()) => {
                    responses.push(Response::SnapPage {
                        page_id: pid,
                        bytes: page.as_bytes().to_vec(),
                    });
                    page_count += 1;
                }
                Err(e) => {
                    responses.push(Response::Error(format!("snapshot page {pid}: {e:?}")));
                    return;
                }
            }
        }
    }
    responses.push(Response::SnapEnd { page_count });
}

/// An interactive statement failed: abort the open transaction (2PL already
/// released nothing early) and report the error. The session stays usable —
/// the client may BEGIN again.
fn abort_with(conn: &mut Conn, e: esdb_txn::TxnError) -> Response {
    if let Some(txn) = conn.txn.take() {
        txn.abort();
    }
    Response::Error(format!("transaction aborted: {e}"))
}
