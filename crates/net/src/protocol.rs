//! The esdb wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame: a little-endian `u32` payload length followed
//! by the payload, whose first byte is the message tag. Integers are
//! little-endian throughout; rows are a `u16` column count followed by that
//! many `i64`s.
//!
//! Decoding distinguishes **incomplete** input (the frame's bytes have not
//! all arrived — try again after reading more) from **malformed** input (the
//! bytes can never become a valid frame — the connection is beyond repair).
//! A malformed frame is an error value, never a panic: a hostile or buggy
//! client must not be able to take down the server.

use bytes::{Buf, BufMut};
use esdb_core::spec_exec::SpecOutcome;
use esdb_core::{ObsSnapshot, StatsSnapshot, OBS_SNAPSHOT_VERSION};
use esdb_obs::{HistogramSnapshot, WaitProfile, BUCKETS};
use esdb_staged::{AggFunc, CmpOp};
use esdb_workload::{TxnSpec, WorkloadOp};

/// Frame header size: the `u32` payload length.
pub const HEADER_LEN: usize = 4;

/// Upper bound on a frame payload. Anything larger is malformed — the cap
/// keeps a hostile length prefix from making the server allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The payload's structure is invalid (unknown tag, truncated field,
    /// trailing garbage, row too wide).
    Malformed(&'static str),
    /// A versioned snapshot frame from a peer speaking a format this build
    /// does not understand. Typed (not a panic, not `Malformed`) so callers
    /// can distinguish skew from corruption.
    UnsupportedVersion(u32),
    /// The peer stopped sending (or accepting) bytes for longer than the
    /// configured socket timeout while a frame exchange was in flight. Typed
    /// so a hung peer degrades to an error the caller can act on instead of
    /// blocking a thread forever.
    Timeout,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
            FrameError::UnsupportedVersion(v) => {
                write!(f, "obs snapshot version {v} not supported (this build speaks {OBS_SNAPSHOT_VERSION})")
            }
            FrameError::Timeout => write!(f, "peer stalled past the socket timeout"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Engine + server counters.
    Stats,
    /// Full observability snapshot: counters plus the cycle-accounting
    /// breakdown and per-component latency histograms.
    ObsStats,
    /// One-shot transaction: the whole op list in one frame. The server
    /// executes, commits (deferred, riding the session batch's single WAL
    /// flush) and replies with an [`Response::Outcome`].
    OneShot {
        /// Whether a logical failure is an expected outcome.
        may_fail: bool,
        /// The operations, in order.
        ops: Vec<WorkloadOp>,
    },
    /// Opens an interactive transaction on this session.
    Begin,
    /// Reads a row inside the session's open transaction.
    Read {
        /// Table id.
        table: u32,
        /// Key.
        key: u64,
    },
    /// Overwrites a row inside the open transaction.
    Update {
        /// Table id.
        table: u32,
        /// Key.
        key: u64,
        /// New row.
        row: Vec<i64>,
    },
    /// Inserts a row inside the open transaction.
    Insert {
        /// Table id.
        table: u32,
        /// Key.
        key: u64,
        /// Row.
        row: Vec<i64>,
    },
    /// Commits the open transaction (acknowledged only once durable).
    Commit,
    /// Aborts the open transaction.
    Abort,
    /// Replica bootstrap: take a checkpoint and stream the page snapshot.
    /// The server answers with one [`Response::SnapBegin`], a
    /// [`Response::SnapPage`] per page, and a closing [`Response::SnapEnd`].
    ReplSnapshot,
    /// Turns this session into a log-shipping feed: the server pushes
    /// [`Response::LogChunk`] frames covering the durable log from `from`
    /// onward until the connection closes. The only request the feed still
    /// reads afterwards is [`Request::ReplAck`]. `term` is the highest
    /// replication term the subscriber has observed: a primary contacted by
    /// a subscriber from a *higher* term knows it has been superseded and
    /// answers [`Response::Fenced`] instead of shipping.
    ReplSubscribe {
        /// First LSN the subscriber still needs.
        from: u64,
        /// Highest term the subscriber has observed (0 = none).
        term: u64,
    },
    /// Follower → primary on a subscribe feed: "my durable replication
    /// cursor now extends to `lsn`". Carries the follower's term so a
    /// deposed primary learns about its successor even from an ack. This is
    /// the input to semi-sync quorum commit: the primary's group-commit wait
    /// can additionally block until K followers have acked past the commit
    /// LSN.
    ReplAck {
        /// Highest term the follower has observed.
        term: u64,
        /// The follower's durable cursor end.
        lsn: u64,
    },
    /// Read-your-writes token: the primary's durable LSN right now. A client
    /// that just committed here can hand the token to a replica read.
    CommitToken,
    /// Follower read gated on a token: answered with [`Response::Row`] only
    /// once the replica has applied up to `min_lsn`, with
    /// [`Response::Lagging`] if it cannot within its wait budget.
    ReadAt {
        /// Table id.
        table: u32,
        /// Key.
        key: u64,
        /// The read-your-writes token (0 = no freshness requirement).
        min_lsn: u64,
    },
    /// Two-phase-commit phase one: execute this shard's slice of a
    /// cross-shard transaction and *prepare* it (durable `Prepare` record,
    /// locks held) instead of committing. Answered with a
    /// [`Response::ShardVote`].
    ShardPrepare {
        /// Global transaction id (coordinator-allocated, single-use).
        gtid: u64,
        /// This shard's slice of the transaction's operations, in order.
        ops: Vec<WorkloadOp>,
    },
    /// Two-phase-commit phase two: deliver the coordinator's decision for
    /// `gtid` to this participant. Idempotent; answered with
    /// [`Response::Ok`] whether or not the gtid was still registered.
    ShardDecide {
        /// Global transaction id.
        gtid: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
    },
    /// Recovering participant → coordinator front-end: what was decided for
    /// `gtid`? Answered with a [`Response::ShardDecision`] (presumed abort
    /// when no durable decision exists) or [`Response::Error`] if this
    /// server has no coordinator decision source configured.
    ShardStatus {
        /// Global transaction id being resolved.
        gtid: u64,
    },
    /// Recovering coordinator → participant: which gtids are prepared here
    /// and still awaiting a decision? Answered with [`Response::ShardGtids`].
    ShardInDoubt,
    /// Follower OLAP query gated on a token: execute `plan` at a
    /// commit-consistent snapshot no older than `min_lsn`, answered with
    /// [`Response::Rows`] (or [`Response::Lagging`] if the replica cannot
    /// catch up within its wait budget). Only servers with an apply frontier
    /// configured (followers) serve queries; a primary answers a typed
    /// [`Response::Error`].
    Query {
        /// The read-your-writes token (0 = no freshness requirement).
        min_lsn: u64,
        /// The plan to execute.
        plan: WirePlan,
    },
    /// Routing-table observation: "what slot → shard map are you serving
    /// under, and at which epoch?". Answered with [`Response::Routing`].
    /// Cheap by design — routers poll it to refresh after a
    /// [`Response::WrongShard`], and tests poll it to observe cutover.
    RoutingSnapshot,
    /// Migration bulk fetch: stream every committed row of `table` whose
    /// `(table, key)` hashes to `slot` under a `slot_count`-slot ring.
    /// Answered with [`Response::MigRows`]. This is the fuzzy-copy read the
    /// rebalance coordinator drives against a source shard.
    MigFetch {
        /// Table id.
        table: u32,
        /// Hash slot whose rows are wanted.
        slot: u32,
        /// Ring size the requester's routing table uses (so both sides
        /// agree on the hash domain even across ring-size reconfigurations).
        slot_count: u32,
    },
}

/// Maximum [`WirePlan`] nesting depth a decoder accepts. Caps recursion so
/// a hostile frame full of `Filter` tags cannot blow the reactor's stack.
pub const MAX_PLAN_DEPTH: usize = 64;

/// A serializable query plan: the wire face of `esdb_staged::PlanNode`,
/// with tables and secondary indexes referenced by catalog id. The server
/// resolves ids and validates column offsets against its own catalog and
/// answers a typed [`Response::Error`] for anything unknown — a stale or
/// hostile client can never make the execution engine panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePlan {
    /// Full scan; output rows are `[key, col0, col1, ...]`.
    Scan {
        /// Table id.
        table: u32,
    },
    /// Index-assisted scan: rows whose indexed column lies in `[lo, hi]`
    /// (inclusive), in primary-key order. Same output shape as `Scan`.
    IndexScan {
        /// Table id.
        table: u32,
        /// Secondary index id within the table.
        index: u32,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Keep rows where `row[col] OP value`.
    Filter {
        /// Input plan.
        input: Box<WirePlan>,
        /// Column tested (plan-output offset: 0 is the key for scans).
        col: u32,
        /// Comparison.
        op: CmpOp,
        /// Constant operand.
        value: i64,
    },
    /// Keep only the listed columns, in order.
    Project {
        /// Input plan.
        input: Box<WirePlan>,
        /// Column offsets to keep.
        cols: Vec<u32>,
    },
    /// Group-by aggregate. Output: `[group, agg]` (or `[agg]` if no group).
    Aggregate {
        /// Input plan.
        input: Box<WirePlan>,
        /// Optional grouping column.
        group_col: Option<u32>,
        /// Aggregated column.
        agg_col: u32,
        /// Function.
        func: AggFunc,
    },
    /// Sort ascending by column.
    Sort {
        /// Input plan.
        input: Box<WirePlan>,
        /// Sort column.
        col: u32,
    },
}

/// Server-side counters the STATS command reports alongside the engine's
/// [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Engine counters.
    pub engine: StatsSnapshot,
    /// Sessions admitted.
    pub sessions_accepted: u64,
    /// Connections shed with [`Response::Busy`].
    pub sessions_shed: u64,
    /// Sessions currently open.
    pub sessions_active: u64,
    /// One-shot transactions executed.
    pub txns_executed: u64,
    /// One-shot transactions committed.
    pub txns_committed: u64,
    /// Request batches processed (each batch pays at most one WAL flush).
    pub batches: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Greeting: the session was admitted.
    Hello,
    /// Greeting: the server is at its session cap; retry later. The
    /// connection closes after this frame — structured load shedding, not a
    /// hang or an unbounded queue.
    Busy,
    /// Ping reply.
    Pong,
    /// STATS reply.
    Stats(ServerStats),
    /// OBS_STATS reply: the versioned snapshot (boxed — it carries four
    /// histograms and would otherwise dominate every `Response`'s size).
    ObsStats(Box<ObsSnapshot>),
    /// One-shot transaction result.
    Outcome(SpecOutcome),
    /// A row, from an interactive [`Request::Read`].
    Row(Vec<i64>),
    /// Generic success (begin / update / insert / commit / abort).
    Ok,
    /// The request failed; the session stays usable.
    Error(String),
    /// Snapshot header: the checkpoint's start LSN (where the subscriber's
    /// log apply must begin) and the table catalog.
    SnapBegin {
        /// First LSN the replica must apply after installing the pages.
        start_lsn: u64,
        /// Per table: id, name, arity, heap page ids in heap order.
        catalog: Vec<(u32, String, u32, Vec<u64>)>,
        /// Secondary index declarations, flattened: `(table_id, index_id,
        /// name, column, kind)` with kind as in
        /// `esdb_storage::IndexKind::as_u8`. Index *contents* never ride a
        /// snapshot — they are derived state the replica rebuilds from the
        /// installed heap and keeps current through redo.
        indexes: Vec<(u32, u32, String, u32, u8)>,
    },
    /// One checkpointed page (raw [`esdb_storage`] page bytes).
    SnapPage {
        /// Page id on the primary (replicas install under the same id).
        page_id: u64,
        /// The page image.
        bytes: Vec<u8>,
    },
    /// Snapshot trailer.
    SnapEnd {
        /// Pages streamed, for the replica's sanity check.
        page_count: u64,
    },
    /// A shipped span of the durable log, raw record frames starting at
    /// `start`. The receiver runs its own `decode_stream_checked` over the
    /// accumulated stream — the WAL's CRC framing rides the wire unchanged.
    /// Every chunk is stamped with the shipping primary's term: a receiver
    /// that has adopted a higher term treats the chunk as coming from a
    /// fenced, stale primary and drops the feed.
    LogChunk {
        /// The shipping primary's replication term.
        term: u64,
        /// Stream offset of `bytes[0]`.
        start: u64,
        /// Raw log bytes.
        bytes: Vec<u8>,
    },
    /// A read-your-writes token ([`Request::CommitToken`] reply).
    Token {
        /// The primary's durable LSN at token time.
        lsn: u64,
    },
    /// A [`Request::ReadAt`] the replica could not serve freshly enough.
    Lagging {
        /// How far the replica had applied when it gave up.
        applied: u64,
    },
    /// A participant's vote on a [`Request::ShardPrepare`]: `Committed`
    /// means *prepared* (yes-vote, reads attached); a failure outcome means
    /// the participant aborted locally and votes no.
    ShardVote {
        /// Global transaction id, echoed for pipelining sanity.
        gtid: u64,
        /// The vote: committed = prepared; failure = aborted locally.
        outcome: SpecOutcome,
    },
    /// The coordinator's (possibly presumed) decision for a
    /// [`Request::ShardStatus`] query.
    ShardDecision {
        /// Global transaction id, echoed.
        gtid: u64,
        /// `true` = commit; `false` = abort (including presumed abort).
        commit: bool,
    },
    /// Prepared-but-undecided gtids on this participant
    /// ([`Request::ShardInDoubt`] reply).
    ShardGtids(Vec<u64>),
    /// This server has observed a higher replication term than the
    /// requester's and refuses the operation (a deposed primary must not
    /// ship, a stale subscriber must re-sync). Carries the higher term so
    /// the receiver can adopt it.
    Fenced {
        /// The highest term this server has observed.
        term: u64,
    },
    /// The transaction *is* durably committed on the primary, but the
    /// semi-sync quorum wait timed out before K followers acked durability
    /// at the commit LSN. A typed degradation, never a hang: the caller
    /// knows the commit's replication guarantee is not yet met.
    QuorumTimeout {
        /// The commit LSN that was waiting for acks.
        lsn: u64,
        /// Followers that had acked `lsn` when the wait gave up.
        acked: u32,
        /// Acks the quorum policy required.
        needed: u32,
    },
    /// Result rows of a [`Request::Query`]. The whole result is one frame,
    /// so the server bounds result size and answers [`Response::Error`]
    /// when a query would overflow it.
    Rows(Vec<Vec<i64>>),
    /// The server's current routing table ([`Request::RoutingSnapshot`]
    /// reply): the fencing epoch and the full slot → shard map.
    Routing {
        /// Routing epoch this map was installed under.
        epoch: u64,
        /// `slots[s]` is the shard owning slot `s`.
        slots: Vec<u32>,
    },
    /// One batch of migration rows ([`Request::MigFetch`] reply): the
    /// committed `(key, row)` pairs of the requested slot.
    MigRows {
        /// The slot's rows, in scan order.
        rows: Vec<(u64, Vec<i64>)>,
    },
    /// This server no longer (or does not yet) own the slot the request
    /// touches — the rebalancing analog of [`Response::Fenced`]. Carries
    /// the server's routing epoch and its best hint at the owning shard so
    /// a stale router can refresh and retry instead of silently reading
    /// from a shard that gave the data away.
    WrongShard {
        /// The server's current routing epoch (greater than the stale
        /// requester's, or the requester would not have come here).
        epoch: u64,
        /// The shard this server believes owns the touched slot.
        hint: u32,
    },
}

// Payload tags. Requests and responses share one byte space so a tag is
// self-describing in traces.
const T_PING: u8 = 0x01;
const T_STATS: u8 = 0x02;
const T_ONE_SHOT: u8 = 0x03;
const T_OBS_STATS: u8 = 0x04;
const T_BEGIN: u8 = 0x10;
const T_READ: u8 = 0x11;
const T_UPDATE: u8 = 0x12;
const T_INSERT: u8 = 0x13;
const T_COMMIT: u8 = 0x14;
const T_ABORT: u8 = 0x15;
const T_REPL_SNAPSHOT: u8 = 0x20;
const T_REPL_SUBSCRIBE: u8 = 0x21;
const T_COMMIT_TOKEN: u8 = 0x22;
const T_READ_AT: u8 = 0x23;
const T_REPL_ACK: u8 = 0x24;
const T_QUERY: u8 = 0x25;
const T_SHARD_PREPARE: u8 = 0x30;
const T_SHARD_DECIDE: u8 = 0x31;
const T_SHARD_STATUS: u8 = 0x32;
const T_SHARD_IN_DOUBT: u8 = 0x33;
const T_ROUTING_SNAPSHOT: u8 = 0x34;
const T_MIG_FETCH: u8 = 0x35;
const T_HELLO: u8 = 0x80;
const T_BUSY: u8 = 0x81;
const T_PONG: u8 = 0x82;
const T_STATS_REPLY: u8 = 0x83;
const T_OUTCOME: u8 = 0x84;
const T_ROW: u8 = 0x85;
const T_OK: u8 = 0x86;
const T_ERROR: u8 = 0x87;
const T_OBS_REPLY: u8 = 0x88;
const T_SNAP_BEGIN: u8 = 0x90;
const T_SNAP_PAGE: u8 = 0x91;
const T_SNAP_END: u8 = 0x92;
const T_LOG_CHUNK: u8 = 0x93;
const T_TOKEN: u8 = 0x94;
const T_LAGGING: u8 = 0x95;
const T_SHARD_VOTE: u8 = 0x96;
const T_SHARD_DECISION: u8 = 0x97;
const T_SHARD_GTIDS: u8 = 0x98;
const T_FENCED: u8 = 0x99;
const T_QUORUM_TIMEOUT: u8 = 0x9A;
const T_ROWS: u8 = 0x9B;
const T_ROUTING: u8 = 0x9C;
const T_MIG_ROWS: u8 = 0x9D;
const T_WRONG_SHARD: u8 = 0x9E;

// Op tags inside OneShot.
const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_ADD: u8 = 2;
const OP_INSERT: u8 = 3;
const OP_DELETE: u8 = 4;

// Outcome tags.
const OUT_COMMITTED: u8 = 0;
const OUT_LOGICAL: u8 = 1;
const OUT_CONFLICT: u8 = 2;

// Plan node tags inside Query.
const WP_SCAN: u8 = 0;
const WP_INDEX_SCAN: u8 = 1;
const WP_FILTER: u8 = 2;
const WP_PROJECT: u8 = 3;
const WP_AGGREGATE: u8 = 4;
const WP_SORT: u8 = 5;

fn cmp_to_u8(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from_u8(tag: u8) -> Result<CmpOp, FrameError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(FrameError::Malformed("unknown comparison tag")),
    })
}

fn agg_to_u8(func: AggFunc) -> u8 {
    match func {
        AggFunc::Sum => 0,
        AggFunc::Count => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
    }
}

fn agg_from_u8(tag: u8) -> Result<AggFunc, FrameError> {
    Ok(match tag {
        0 => AggFunc::Sum,
        1 => AggFunc::Count,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        _ => return Err(FrameError::Malformed("unknown aggregate tag")),
    })
}

/// Checked cursor over a payload: every read verifies length first, so
/// truncated or lying frames surface as [`FrameError::Malformed`], never as
/// a panic out of the underlying [`Buf`].
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn need(&self, n: usize) -> Result<(), FrameError> {
        if self.buf.remaining() < n {
            Err(FrameError::Malformed("truncated field"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    fn row(&mut self) -> Result<Vec<i64>, FrameError> {
        let cols = self.u16()? as usize;
        // 8 bytes per column must actually be present; checked per-read.
        let mut row = Vec::with_capacity(cols.min(1024));
        for _ in 0..cols {
            row.push(self.i64()?);
        }
        Ok(row)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        self.need(len)?;
        let mut bytes = vec![0u8; len];
        self.buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|_| FrameError::Malformed("non-utf8 string"))
    }

    /// u32-length-prefixed byte blob (pages and log spans overflow the
    /// u16-prefixed [`Reader::string`] encoding).
    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let mut bytes = vec![0u8; len];
        self.buf.copy_to_slice(&mut bytes);
        Ok(bytes)
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.buf.remaining() != 0 {
            Err(FrameError::Malformed("trailing bytes"))
        } else {
            Ok(())
        }
    }
}

fn put_stats(out: &mut Vec<u8>, s: &StatsSnapshot) {
    out.put_u64_le(s.commits);
    out.put_u64_le(s.aborts);
    out.put_u64_le(s.durable_lsn);
    out.put_u64_le(s.current_lsn);
    out.put_u64_le(s.wal_flushes);
}

fn get_stats(r: &mut Reader<'_>) -> Result<StatsSnapshot, FrameError> {
    Ok(StatsSnapshot {
        commits: r.u64()?,
        aborts: r.u64()?,
        durable_lsn: r.u64()?,
        current_lsn: r.u64()?,
        wal_flushes: r.u64()?,
    })
}

fn put_profile(out: &mut Vec<u8>, p: &WaitProfile) {
    out.put_u64_le(p.useful);
    out.put_u64_le(p.lock_wait);
    out.put_u64_le(p.latch_spin);
    out.put_u64_le(p.log_wait);
    out.put_u64_le(p.io_retry);
    out.put_u64_le(p.commit_flush);
}

fn get_profile(r: &mut Reader<'_>) -> Result<WaitProfile, FrameError> {
    Ok(WaitProfile {
        useful: r.u64()?,
        lock_wait: r.u64()?,
        latch_spin: r.u64()?,
        log_wait: r.u64()?,
        io_retry: r.u64()?,
        commit_flush: r.u64()?,
    })
}

fn put_hist(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    out.put_u64_le(h.count);
    out.put_u64_le(h.sum);
    for b in &h.buckets {
        out.put_u64_le(*b);
    }
}

fn get_hist(r: &mut Reader<'_>) -> Result<HistogramSnapshot, FrameError> {
    let mut h = HistogramSnapshot { count: r.u64()?, sum: r.u64()?, ..Default::default() };
    for i in 0..BUCKETS {
        h.buckets[i] = r.u64()?;
    }
    Ok(h)
}

fn put_row(out: &mut Vec<u8>, row: &[i64]) {
    debug_assert!(row.len() <= u16::MAX as usize);
    out.put_u16_le(row.len() as u16);
    for v in row {
        out.put_i64_le(*v);
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(u16::MAX as usize)];
    out.put_u16_le(bytes.len() as u16);
    out.put_slice(bytes);
}

fn encode_op(out: &mut Vec<u8>, op: &WorkloadOp) {
    match op {
        WorkloadOp::Read { table, key } => {
            out.put_u8(OP_READ);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
        }
        WorkloadOp::Write { table, key, row } => {
            out.put_u8(OP_WRITE);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            put_row(out, row);
        }
        WorkloadOp::Add { table, key, col, delta } => {
            out.put_u8(OP_ADD);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u16_le(*col as u16);
            out.put_i64_le(*delta);
        }
        WorkloadOp::Insert { table, key, row } => {
            out.put_u8(OP_INSERT);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            put_row(out, row);
        }
        WorkloadOp::Delete { table, key } => {
            out.put_u8(OP_DELETE);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<WorkloadOp, FrameError> {
    match r.u8()? {
        OP_READ => Ok(WorkloadOp::Read { table: r.u32()?, key: r.u64()? }),
        OP_WRITE => Ok(WorkloadOp::Write { table: r.u32()?, key: r.u64()?, row: r.row()? }),
        OP_ADD => Ok(WorkloadOp::Add {
            table: r.u32()?,
            key: r.u64()?,
            col: r.u16()? as usize,
            delta: r.i64()?,
        }),
        OP_INSERT => Ok(WorkloadOp::Insert { table: r.u32()?, key: r.u64()?, row: r.row()? }),
        OP_DELETE => Ok(WorkloadOp::Delete { table: r.u32()?, key: r.u64()? }),
        _ => Err(FrameError::Malformed("unknown op tag")),
    }
}

fn encode_plan(out: &mut Vec<u8>, plan: &WirePlan) {
    match plan {
        WirePlan::Scan { table } => {
            out.put_u8(WP_SCAN);
            out.put_u32_le(*table);
        }
        WirePlan::IndexScan { table, index, lo, hi } => {
            out.put_u8(WP_INDEX_SCAN);
            out.put_u32_le(*table);
            out.put_u32_le(*index);
            out.put_i64_le(*lo);
            out.put_i64_le(*hi);
        }
        WirePlan::Filter { input, col, op, value } => {
            out.put_u8(WP_FILTER);
            encode_plan(out, input);
            out.put_u32_le(*col);
            out.put_u8(cmp_to_u8(*op));
            out.put_i64_le(*value);
        }
        WirePlan::Project { input, cols } => {
            out.put_u8(WP_PROJECT);
            encode_plan(out, input);
            debug_assert!(cols.len() <= u16::MAX as usize);
            out.put_u16_le(cols.len() as u16);
            for c in cols {
                out.put_u32_le(*c);
            }
        }
        WirePlan::Aggregate { input, group_col, agg_col, func } => {
            out.put_u8(WP_AGGREGATE);
            encode_plan(out, input);
            match group_col {
                Some(g) => {
                    out.put_u8(1);
                    out.put_u32_le(*g);
                }
                None => out.put_u8(0),
            }
            out.put_u32_le(*agg_col);
            out.put_u8(agg_to_u8(*func));
        }
        WirePlan::Sort { input, col } => {
            out.put_u8(WP_SORT);
            encode_plan(out, input);
            out.put_u32_le(*col);
        }
    }
}

fn decode_plan(r: &mut Reader<'_>, depth: usize) -> Result<WirePlan, FrameError> {
    if depth >= MAX_PLAN_DEPTH {
        return Err(FrameError::Malformed("plan nested too deeply"));
    }
    Ok(match r.u8()? {
        WP_SCAN => WirePlan::Scan { table: r.u32()? },
        WP_INDEX_SCAN => WirePlan::IndexScan {
            table: r.u32()?,
            index: r.u32()?,
            lo: r.i64()?,
            hi: r.i64()?,
        },
        WP_FILTER => {
            let input = Box::new(decode_plan(r, depth + 1)?);
            WirePlan::Filter {
                input,
                col: r.u32()?,
                op: cmp_from_u8(r.u8()?)?,
                value: r.i64()?,
            }
        }
        WP_PROJECT => {
            let input = Box::new(decode_plan(r, depth + 1)?);
            let n = r.u16()? as usize;
            let mut cols = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                cols.push(r.u32()?);
            }
            WirePlan::Project { input, cols }
        }
        WP_AGGREGATE => {
            let input = Box::new(decode_plan(r, depth + 1)?);
            let group_col = match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                _ => return Err(FrameError::Malformed("bad option tag")),
            };
            WirePlan::Aggregate {
                input,
                group_col,
                agg_col: r.u32()?,
                func: agg_from_u8(r.u8()?)?,
            }
        }
        WP_SORT => {
            let input = Box::new(decode_plan(r, depth + 1)?);
            WirePlan::Sort { input, col: r.u32()? }
        }
        _ => return Err(FrameError::Malformed("unknown plan tag")),
    })
}

/// Outcome payload: shared by [`Response::Outcome`] and
/// [`Response::ShardVote`].
fn put_outcome(out: &mut Vec<u8>, outcome: &SpecOutcome) {
    match outcome {
        SpecOutcome::Committed { reads } => {
            out.put_u8(OUT_COMMITTED);
            debug_assert!(reads.len() <= u16::MAX as usize);
            out.put_u16_le(reads.len() as u16);
            for read in reads {
                match read {
                    Some(row) => {
                        out.put_u8(1);
                        put_row(out, row);
                    }
                    None => out.put_u8(0),
                }
            }
        }
        SpecOutcome::LogicalFailure => out.put_u8(OUT_LOGICAL),
        SpecOutcome::ConflictFailure => out.put_u8(OUT_CONFLICT),
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<SpecOutcome, FrameError> {
    match r.u8()? {
        OUT_COMMITTED => {
            let n = r.u16()? as usize;
            let mut reads = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                match r.u8()? {
                    0 => reads.push(None),
                    1 => reads.push(Some(r.row()?)),
                    _ => return Err(FrameError::Malformed("bad option tag")),
                }
            }
            Ok(SpecOutcome::Committed { reads })
        }
        OUT_LOGICAL => Ok(SpecOutcome::LogicalFailure),
        OUT_CONFLICT => Ok(SpecOutcome::ConflictFailure),
        _ => Err(FrameError::Malformed("unknown outcome tag")),
    }
}

/// Appends one framed request to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match req {
        Request::Ping => out.put_u8(T_PING),
        Request::Stats => out.put_u8(T_STATS),
        Request::ObsStats => out.put_u8(T_OBS_STATS),
        Request::OneShot { may_fail, ops } => {
            out.put_u8(T_ONE_SHOT);
            out.put_u8(u8::from(*may_fail));
            debug_assert!(ops.len() <= u16::MAX as usize);
            out.put_u16_le(ops.len() as u16);
            for op in ops {
                encode_op(out, op);
            }
        }
        Request::Begin => out.put_u8(T_BEGIN),
        Request::Read { table, key } => {
            out.put_u8(T_READ);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
        }
        Request::Update { table, key, row } => {
            out.put_u8(T_UPDATE);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            put_row(out, row);
        }
        Request::Insert { table, key, row } => {
            out.put_u8(T_INSERT);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            put_row(out, row);
        }
        Request::Commit => out.put_u8(T_COMMIT),
        Request::Abort => out.put_u8(T_ABORT),
        Request::ReplSnapshot => out.put_u8(T_REPL_SNAPSHOT),
        Request::ReplSubscribe { from, term } => {
            out.put_u8(T_REPL_SUBSCRIBE);
            out.put_u64_le(*from);
            out.put_u64_le(*term);
        }
        Request::ReplAck { term, lsn } => {
            out.put_u8(T_REPL_ACK);
            out.put_u64_le(*term);
            out.put_u64_le(*lsn);
        }
        Request::CommitToken => out.put_u8(T_COMMIT_TOKEN),
        Request::ReadAt { table, key, min_lsn } => {
            out.put_u8(T_READ_AT);
            out.put_u32_le(*table);
            out.put_u64_le(*key);
            out.put_u64_le(*min_lsn);
        }
        Request::ShardPrepare { gtid, ops } => {
            out.put_u8(T_SHARD_PREPARE);
            out.put_u64_le(*gtid);
            debug_assert!(ops.len() <= u16::MAX as usize);
            out.put_u16_le(ops.len() as u16);
            for op in ops {
                encode_op(out, op);
            }
        }
        Request::ShardDecide { gtid, commit } => {
            out.put_u8(T_SHARD_DECIDE);
            out.put_u64_le(*gtid);
            out.put_u8(u8::from(*commit));
        }
        Request::ShardStatus { gtid } => {
            out.put_u8(T_SHARD_STATUS);
            out.put_u64_le(*gtid);
        }
        Request::ShardInDoubt => out.put_u8(T_SHARD_IN_DOUBT),
        Request::Query { min_lsn, plan } => {
            out.put_u8(T_QUERY);
            out.put_u64_le(*min_lsn);
            encode_plan(out, plan);
        }
        Request::RoutingSnapshot => out.put_u8(T_ROUTING_SNAPSHOT),
        Request::MigFetch { table, slot, slot_count } => {
            out.put_u8(T_MIG_FETCH);
            out.put_u32_le(*table);
            out.put_u32_le(*slot);
            out.put_u32_le(*slot_count);
        }
    }
    end_frame(out, at);
}

/// Encodes a one-shot request straight from a workload spec (the `kind`
/// string stays client-side; the client keys its per-kind report off the
/// specs it sent, so the name never crosses the wire).
pub fn encode_spec(spec: &TxnSpec, out: &mut Vec<u8>) {
    encode_request(
        &Request::OneShot { may_fail: spec.may_fail, ops: spec.ops.clone() },
        out,
    );
}

/// Appends one framed response to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    match resp {
        Response::Hello => out.put_u8(T_HELLO),
        Response::Busy => out.put_u8(T_BUSY),
        Response::Pong => out.put_u8(T_PONG),
        Response::Stats(s) => {
            out.put_u8(T_STATS_REPLY);
            put_stats(out, &s.engine);
            out.put_u64_le(s.sessions_accepted);
            out.put_u64_le(s.sessions_shed);
            out.put_u64_le(s.sessions_active);
            out.put_u64_le(s.txns_executed);
            out.put_u64_le(s.txns_committed);
            out.put_u64_le(s.batches);
        }
        Response::ObsStats(snap) => {
            out.put_u8(T_OBS_REPLY);
            out.put_u32_le(snap.version);
            put_stats(out, &snap.stats);
            put_profile(out, &snap.breakdown);
            put_hist(out, &snap.lock_wait);
            put_hist(out, &snap.wal_flush);
            put_hist(out, &snap.pool_miss);
            put_hist(out, &snap.txn_latency);
        }
        Response::Outcome(outcome) => {
            out.put_u8(T_OUTCOME);
            put_outcome(out, outcome);
        }
        Response::Row(row) => {
            out.put_u8(T_ROW);
            put_row(out, row);
        }
        Response::Ok => out.put_u8(T_OK),
        Response::Error(msg) => {
            out.put_u8(T_ERROR);
            put_string(out, msg);
        }
        Response::SnapBegin { start_lsn, catalog, indexes } => {
            out.put_u8(T_SNAP_BEGIN);
            out.put_u64_le(*start_lsn);
            debug_assert!(catalog.len() <= u16::MAX as usize);
            out.put_u16_le(catalog.len() as u16);
            for (id, name, arity, pages) in catalog {
                out.put_u32_le(*id);
                put_string(out, name);
                out.put_u32_le(*arity);
                debug_assert!(pages.len() <= u32::MAX as usize);
                out.put_u32_le(pages.len() as u32);
                for page in pages {
                    out.put_u64_le(*page);
                }
            }
            debug_assert!(indexes.len() <= u16::MAX as usize);
            out.put_u16_le(indexes.len() as u16);
            for (table, index, name, col, kind) in indexes {
                out.put_u32_le(*table);
                out.put_u32_le(*index);
                put_string(out, name);
                out.put_u32_le(*col);
                out.put_u8(*kind);
            }
        }
        Response::SnapPage { page_id, bytes } => {
            out.put_u8(T_SNAP_PAGE);
            out.put_u64_le(*page_id);
            put_bytes(out, bytes);
        }
        Response::SnapEnd { page_count } => {
            out.put_u8(T_SNAP_END);
            out.put_u64_le(*page_count);
        }
        Response::LogChunk { term, start, bytes } => {
            out.put_u8(T_LOG_CHUNK);
            out.put_u64_le(*term);
            out.put_u64_le(*start);
            put_bytes(out, bytes);
        }
        Response::Token { lsn } => {
            out.put_u8(T_TOKEN);
            out.put_u64_le(*lsn);
        }
        Response::Lagging { applied } => {
            out.put_u8(T_LAGGING);
            out.put_u64_le(*applied);
        }
        Response::ShardVote { gtid, outcome } => {
            out.put_u8(T_SHARD_VOTE);
            out.put_u64_le(*gtid);
            put_outcome(out, outcome);
        }
        Response::ShardDecision { gtid, commit } => {
            out.put_u8(T_SHARD_DECISION);
            out.put_u64_le(*gtid);
            out.put_u8(u8::from(*commit));
        }
        Response::ShardGtids(gtids) => {
            out.put_u8(T_SHARD_GTIDS);
            debug_assert!(gtids.len() <= u32::MAX as usize);
            out.put_u32_le(gtids.len() as u32);
            for g in gtids {
                out.put_u64_le(*g);
            }
        }
        Response::Fenced { term } => {
            out.put_u8(T_FENCED);
            out.put_u64_le(*term);
        }
        Response::QuorumTimeout { lsn, acked, needed } => {
            out.put_u8(T_QUORUM_TIMEOUT);
            out.put_u64_le(*lsn);
            out.put_u32_le(*acked);
            out.put_u32_le(*needed);
        }
        Response::Rows(rows) => {
            out.put_u8(T_ROWS);
            debug_assert!(rows.len() <= u32::MAX as usize);
            out.put_u32_le(rows.len() as u32);
            for row in rows {
                put_row(out, row);
            }
        }
        Response::Routing { epoch, slots } => {
            out.put_u8(T_ROUTING);
            out.put_u64_le(*epoch);
            debug_assert!(slots.len() <= u32::MAX as usize);
            out.put_u32_le(slots.len() as u32);
            for shard in slots {
                out.put_u32_le(*shard);
            }
        }
        Response::MigRows { rows } => {
            out.put_u8(T_MIG_ROWS);
            debug_assert!(rows.len() <= u32::MAX as usize);
            out.put_u32_le(rows.len() as u32);
            for (key, row) in rows {
                out.put_u64_le(*key);
                put_row(out, row);
            }
        }
        Response::WrongShard { epoch, hint } => {
            out.put_u8(T_WRONG_SHARD);
            out.put_u64_le(*epoch);
            out.put_u32_le(*hint);
        }
    }
    end_frame(out, at);
}

/// u32-length-prefixed byte blob, the writer side of [`Reader::bytes`].
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= u32::MAX as usize);
    out.put_u32_le(bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Reserves a frame header; returns the patch offset for [`end_frame`].
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.put_u32_le(0);
    at
}

/// Patches the header with the payload length written since [`begin_frame`].
fn end_frame(out: &mut Vec<u8>, at: usize) {
    let len = out.len() - at - HEADER_LEN;
    debug_assert!(len <= MAX_FRAME, "encoded frame exceeds MAX_FRAME");
    out[at..at + HEADER_LEN].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Result of trying to decode one frame from a byte stream.
pub type Decoded<T> = Result<Option<(T, usize)>, FrameError>;

/// Splits off one frame payload: `Ok(None)` while bytes are still missing,
/// `Err` if the length prefix is unusable.
fn take_frame(buf: &[u8]) -> Decoded<&[u8]> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut header = &buf[..HEADER_LEN];
    let len = header.get_u32_le() as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    if len == 0 {
        return Err(FrameError::Malformed("empty payload"));
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    Ok(Some((&buf[HEADER_LEN..HEADER_LEN + len], HEADER_LEN + len)))
}

/// Decodes one request frame from the front of `buf`. Returns the request
/// and the number of bytes consumed, `Ok(None)` if the frame is incomplete,
/// or an error if it can never parse.
pub fn decode_request(buf: &[u8]) -> Decoded<Request> {
    let Some((payload, consumed)) = take_frame(buf)? else {
        return Ok(None);
    };
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        T_PING => Request::Ping,
        T_STATS => Request::Stats,
        T_OBS_STATS => Request::ObsStats,
        T_ONE_SHOT => {
            let may_fail = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed("bad bool")),
            };
            let n = r.u16()? as usize;
            let mut ops = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                ops.push(decode_op(&mut r)?);
            }
            Request::OneShot { may_fail, ops }
        }
        T_BEGIN => Request::Begin,
        T_READ => Request::Read { table: r.u32()?, key: r.u64()? },
        T_UPDATE => Request::Update { table: r.u32()?, key: r.u64()?, row: r.row()? },
        T_INSERT => Request::Insert { table: r.u32()?, key: r.u64()?, row: r.row()? },
        T_COMMIT => Request::Commit,
        T_ABORT => Request::Abort,
        T_REPL_SNAPSHOT => Request::ReplSnapshot,
        T_REPL_SUBSCRIBE => Request::ReplSubscribe { from: r.u64()?, term: r.u64()? },
        T_REPL_ACK => Request::ReplAck { term: r.u64()?, lsn: r.u64()? },
        T_COMMIT_TOKEN => Request::CommitToken,
        T_READ_AT => Request::ReadAt { table: r.u32()?, key: r.u64()?, min_lsn: r.u64()? },
        T_SHARD_PREPARE => {
            let gtid = r.u64()?;
            let n = r.u16()? as usize;
            let mut ops = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                ops.push(decode_op(&mut r)?);
            }
            Request::ShardPrepare { gtid, ops }
        }
        T_SHARD_DECIDE => {
            let gtid = r.u64()?;
            let commit = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed("bad bool")),
            };
            Request::ShardDecide { gtid, commit }
        }
        T_SHARD_STATUS => Request::ShardStatus { gtid: r.u64()? },
        T_SHARD_IN_DOUBT => Request::ShardInDoubt,
        T_QUERY => {
            let min_lsn = r.u64()?;
            Request::Query { min_lsn, plan: decode_plan(&mut r, 0)? }
        }
        T_ROUTING_SNAPSHOT => Request::RoutingSnapshot,
        T_MIG_FETCH => Request::MigFetch {
            table: r.u32()?,
            slot: r.u32()?,
            slot_count: r.u32()?,
        },
        _ => return Err(FrameError::Malformed("unknown request tag")),
    };
    r.finish()?;
    Ok(Some((req, consumed)))
}

/// Decodes one response frame from the front of `buf` (client side).
pub fn decode_response(buf: &[u8]) -> Decoded<Response> {
    let Some((payload, consumed)) = take_frame(buf)? else {
        return Ok(None);
    };
    let mut r = Reader::new(payload);
    let resp = match r.u8()? {
        T_HELLO => Response::Hello,
        T_BUSY => Response::Busy,
        T_PONG => Response::Pong,
        T_STATS_REPLY => Response::Stats(ServerStats {
            engine: get_stats(&mut r)?,
            sessions_accepted: r.u64()?,
            sessions_shed: r.u64()?,
            sessions_active: r.u64()?,
            txns_executed: r.u64()?,
            txns_committed: r.u64()?,
            batches: r.u64()?,
        }),
        T_OBS_REPLY => {
            // Version gate first: a snapshot from a newer build decodes to a
            // typed error, never a guess at its layout (and never a panic).
            let version = r.u32()?;
            if version != OBS_SNAPSHOT_VERSION {
                return Err(FrameError::UnsupportedVersion(version));
            }
            Response::ObsStats(Box::new(ObsSnapshot {
                version,
                stats: get_stats(&mut r)?,
                breakdown: get_profile(&mut r)?,
                lock_wait: get_hist(&mut r)?,
                wal_flush: get_hist(&mut r)?,
                pool_miss: get_hist(&mut r)?,
                txn_latency: get_hist(&mut r)?,
            }))
        }
        T_OUTCOME => Response::Outcome(get_outcome(&mut r)?),
        T_ROW => Response::Row(r.row()?),
        T_OK => Response::Ok,
        T_ERROR => Response::Error(r.string()?),
        T_SNAP_BEGIN => {
            let start_lsn = r.u64()?;
            let n = r.u16()? as usize;
            let mut catalog = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let id = r.u32()?;
                let name = r.string()?;
                let arity = r.u32()?;
                let pn = r.u32()? as usize;
                // 8 bytes per page id must actually be present; checked per-read.
                let mut pages = Vec::with_capacity(pn.min(1024));
                for _ in 0..pn {
                    pages.push(r.u64()?);
                }
                catalog.push((id, name, arity, pages));
            }
            let ni = r.u16()? as usize;
            let mut indexes = Vec::with_capacity(ni.min(1024));
            for _ in 0..ni {
                indexes.push((r.u32()?, r.u32()?, r.string()?, r.u32()?, r.u8()?));
            }
            Response::SnapBegin { start_lsn, catalog, indexes }
        }
        T_SNAP_PAGE => Response::SnapPage { page_id: r.u64()?, bytes: r.bytes()? },
        T_SNAP_END => Response::SnapEnd { page_count: r.u64()? },
        T_LOG_CHUNK => Response::LogChunk { term: r.u64()?, start: r.u64()?, bytes: r.bytes()? },
        T_TOKEN => Response::Token { lsn: r.u64()? },
        T_LAGGING => Response::Lagging { applied: r.u64()? },
        T_SHARD_VOTE => Response::ShardVote { gtid: r.u64()?, outcome: get_outcome(&mut r)? },
        T_SHARD_DECISION => {
            let gtid = r.u64()?;
            let commit = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed("bad bool")),
            };
            Response::ShardDecision { gtid, commit }
        }
        T_SHARD_GTIDS => {
            let n = r.u32()? as usize;
            let mut gtids = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                gtids.push(r.u64()?);
            }
            Response::ShardGtids(gtids)
        }
        T_FENCED => Response::Fenced { term: r.u64()? },
        T_QUORUM_TIMEOUT => Response::QuorumTimeout {
            lsn: r.u64()?,
            acked: r.u32()?,
            needed: r.u32()?,
        },
        T_ROWS => {
            let n = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rows.push(r.row()?);
            }
            Response::Rows(rows)
        }
        T_ROUTING => {
            let epoch = r.u64()?;
            let n = r.u32()? as usize;
            let mut slots = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                slots.push(r.u32()?);
            }
            Response::Routing { epoch, slots }
        }
        T_MIG_ROWS => {
            let n = r.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = r.u64()?;
                rows.push((key, r.row()?));
            }
            Response::MigRows { rows }
        }
        T_WRONG_SHARD => Response::WrongShard { epoch: r.u64()?, hint: r.u32()? },
        _ => return Err(FrameError::Malformed("unknown response tag")),
    };
    r.finish()?;
    Ok(Some((resp, consumed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (decoded, consumed) = decode_request(&buf).unwrap().unwrap();
        assert_eq!(decoded, req);
        assert_eq!(consumed, buf.len());
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
        assert_eq!(decoded, resp);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Begin);
        roundtrip_request(Request::Commit);
        roundtrip_request(Request::Abort);
        roundtrip_request(Request::Read { table: 3, key: u64::MAX });
        roundtrip_request(Request::Update { table: 0, key: 1, row: vec![i64::MIN, 0, i64::MAX] });
        roundtrip_request(Request::Insert { table: 9, key: 2, row: vec![] });
        roundtrip_request(Request::OneShot {
            may_fail: true,
            ops: vec![
                WorkloadOp::Read { table: 1, key: 2 },
                WorkloadOp::Write { table: 1, key: 2, row: vec![-5] },
                WorkloadOp::Add { table: 2, key: 3, col: 1, delta: -7 },
                WorkloadOp::Insert { table: 3, key: 4, row: vec![1, 2] },
                WorkloadOp::Delete { table: 4, key: 5 },
            ],
        });
        roundtrip_request(Request::ReplSnapshot);
        roundtrip_request(Request::ReplSubscribe { from: u64::MAX, term: 0 });
        roundtrip_request(Request::ReplSubscribe { from: 8, term: 1 << 33 });
        roundtrip_request(Request::ReplAck { term: 3, lsn: u64::MAX });
        roundtrip_request(Request::CommitToken);
        roundtrip_request(Request::ReadAt { table: 7, key: 11, min_lsn: 1 << 40 });
    }

    #[test]
    fn query_frames_roundtrip() {
        roundtrip_request(Request::Query {
            min_lsn: 1 << 33,
            plan: WirePlan::Scan { table: 2 },
        });
        roundtrip_request(Request::Query {
            min_lsn: 0,
            plan: WirePlan::Aggregate {
                input: Box::new(WirePlan::Filter {
                    input: Box::new(WirePlan::IndexScan {
                        table: 0,
                        index: 1,
                        lo: i64::MIN,
                        hi: 99,
                    }),
                    col: 2,
                    op: CmpOp::Ne,
                    value: -4,
                }),
                group_col: Some(1),
                agg_col: 2,
                func: AggFunc::Sum,
            },
        });
        roundtrip_request(Request::Query {
            min_lsn: 7,
            plan: WirePlan::Sort {
                input: Box::new(WirePlan::Project {
                    input: Box::new(WirePlan::Scan { table: 1 }),
                    cols: vec![2, 0],
                }),
                col: 0,
            },
        });
        roundtrip_request(Request::Query {
            min_lsn: 7,
            plan: WirePlan::Aggregate {
                input: Box::new(WirePlan::Scan { table: 1 }),
                group_col: None,
                agg_col: 0,
                func: AggFunc::Count,
            },
        });
        roundtrip_response(Response::Rows(vec![]));
        roundtrip_response(Response::Rows(vec![vec![1, 2], vec![], vec![i64::MIN]]));
    }

    #[test]
    fn over_deep_plan_is_malformed_not_a_stack_overflow() {
        let mut plan = WirePlan::Scan { table: 0 };
        for _ in 0..MAX_PLAN_DEPTH + 10 {
            plan = WirePlan::Sort { input: Box::new(plan), col: 0 };
        }
        let mut buf = Vec::new();
        encode_request(&Request::Query { min_lsn: 0, plan }, &mut buf);
        assert_eq!(
            decode_request(&buf),
            Err(FrameError::Malformed("plan nested too deeply"))
        );
    }

    #[test]
    fn shard_request_roundtrips() {
        roundtrip_request(Request::ShardPrepare {
            gtid: u64::MAX,
            ops: vec![
                WorkloadOp::Add { table: 2, key: 3, col: 1, delta: -7 },
                WorkloadOp::Insert { table: 3, key: 4, row: vec![1, 2, 3] },
            ],
        });
        roundtrip_request(Request::ShardPrepare { gtid: 0, ops: vec![] });
        roundtrip_request(Request::ShardDecide { gtid: 7, commit: true });
        roundtrip_request(Request::ShardDecide { gtid: 8, commit: false });
        roundtrip_request(Request::ShardStatus { gtid: 1 << 50 });
        roundtrip_request(Request::ShardInDoubt);
    }

    #[test]
    fn rebalance_frames_roundtrip() {
        roundtrip_request(Request::RoutingSnapshot);
        roundtrip_request(Request::MigFetch { table: 7, slot: 3, slot_count: 16 });
        roundtrip_request(Request::MigFetch { table: u32::MAX, slot: 0, slot_count: 1 });
        roundtrip_response(Response::Routing { epoch: 0, slots: vec![] });
        roundtrip_response(Response::Routing {
            epoch: u64::MAX,
            slots: vec![0, 1, 2, 1, 0, u32::MAX],
        });
        roundtrip_response(Response::MigRows { rows: vec![] });
        roundtrip_response(Response::MigRows {
            rows: vec![(0, vec![]), (u64::MAX, vec![i64::MIN, 0, i64::MAX])],
        });
        roundtrip_response(Response::WrongShard { epoch: 9, hint: 2 });
        roundtrip_response(Response::WrongShard { epoch: u64::MAX, hint: u32::MAX });
    }

    #[test]
    fn shard_response_roundtrips() {
        roundtrip_response(Response::ShardVote {
            gtid: 42,
            outcome: SpecOutcome::Committed { reads: vec![None, Some(vec![5, -6])] },
        });
        roundtrip_response(Response::ShardVote {
            gtid: 43,
            outcome: SpecOutcome::ConflictFailure,
        });
        roundtrip_response(Response::ShardDecision { gtid: 9, commit: true });
        roundtrip_response(Response::ShardDecision { gtid: 10, commit: false });
        roundtrip_response(Response::ShardGtids(vec![]));
        roundtrip_response(Response::ShardGtids(vec![1, 2, u64::MAX]));
    }

    #[test]
    fn shard_decide_rejects_bad_bool() {
        let mut buf = Vec::new();
        encode_request(&Request::ShardDecide { gtid: 1, commit: true }, &mut buf);
        let last = buf.len() - 1;
        buf[last] = 2;
        assert_eq!(decode_request(&buf), Err(FrameError::Malformed("bad bool")));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Hello);
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::Row(vec![7, -8]));
        roundtrip_response(Response::Error("no open transaction".into()));
        roundtrip_response(Response::Outcome(SpecOutcome::LogicalFailure));
        roundtrip_response(Response::Outcome(SpecOutcome::ConflictFailure));
        roundtrip_response(Response::Outcome(SpecOutcome::Committed {
            reads: vec![None, Some(vec![1, 2, 3]), Some(vec![])],
        }));
        roundtrip_response(Response::Stats(ServerStats {
            engine: StatsSnapshot {
                commits: 1,
                aborts: 2,
                durable_lsn: 3,
                current_lsn: 4,
                wal_flushes: 5,
            },
            sessions_accepted: 6,
            sessions_shed: 7,
            sessions_active: 8,
            txns_executed: 9,
            txns_committed: 10,
            batches: 11,
        }));
        roundtrip_response(Response::SnapBegin {
            start_lsn: 8192,
            catalog: vec![
                (0, "accounts".into(), 2, vec![3, 9, 11]),
                (1, "".into(), 0, vec![]),
            ],
            indexes: vec![
                (0, 0, "accounts_branch".into(), 1, 0),
                (0, 1, "accounts_balance".into(), 0, 1),
            ],
        });
        roundtrip_response(Response::SnapBegin {
            start_lsn: 0,
            catalog: vec![],
            indexes: vec![],
        });
        roundtrip_response(Response::SnapPage { page_id: 42, bytes: vec![0xAB; 8192] });
        roundtrip_response(Response::SnapEnd { page_count: 17 });
        roundtrip_response(Response::LogChunk { term: 1, start: 1 << 30, bytes: vec![1, 2, 3] });
        roundtrip_response(Response::LogChunk { term: 0, start: 8, bytes: vec![] });
        roundtrip_response(Response::Token { lsn: u64::MAX });
        roundtrip_response(Response::Lagging { applied: 99 });
        roundtrip_response(Response::Fenced { term: u64::MAX });
        roundtrip_response(Response::QuorumTimeout { lsn: 1 << 40, acked: 1, needed: 2 });
    }

    fn sample_snapshot() -> ObsSnapshot {
        let mut lock_wait = HistogramSnapshot::default();
        lock_wait.record(1);
        lock_wait.record(100);
        let mut txn_latency = HistogramSnapshot::default();
        for v in [0u64, 1, 2, 4_096, u64::MAX] {
            txn_latency.record(v);
        }
        ObsSnapshot {
            version: OBS_SNAPSHOT_VERSION,
            stats: StatsSnapshot {
                commits: 10,
                aborts: 1,
                durable_lsn: 900,
                current_lsn: 1000,
                wal_flushes: 4,
            },
            breakdown: WaitProfile {
                useful: 500,
                lock_wait: 40,
                latch_spin: 3,
                log_wait: 70,
                io_retry: 0,
                commit_flush: 120,
            },
            lock_wait,
            wal_flush: HistogramSnapshot::default(),
            pool_miss: HistogramSnapshot::default(),
            txn_latency,
        }
    }

    #[test]
    fn obs_frames_roundtrip() {
        roundtrip_request(Request::ObsStats);
        roundtrip_response(Response::ObsStats(Box::new(sample_snapshot())));
    }

    #[test]
    fn unknown_snapshot_version_is_a_typed_error() {
        let mut buf = Vec::new();
        encode_response(&Response::ObsStats(Box::new(sample_snapshot())), &mut buf);
        // Pretend a newer peer sent this: bump the version field (first 4
        // payload bytes after the length prefix and tag).
        let evil = OBS_SNAPSHOT_VERSION + 7;
        buf[5..9].copy_from_slice(&evil.to_le_bytes());
        assert_eq!(decode_response(&buf), Err(FrameError::UnsupportedVersion(evil)));
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        let mut buf = Vec::new();
        encode_request(&Request::Read { table: 1, key: 2 }, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_request(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        encode_request(&Request::Ping, &mut buf);
        encode_request(&Request::Stats, &mut buf);
        encode_request(&Request::Commit, &mut buf);
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((req, used)) = decode_request(&buf[at..]).unwrap() {
            seen.push(req);
            at += used;
        }
        assert_eq!(seen, vec![Request::Ping, Request::Stats, Request::Commit]);
        assert_eq!(at, buf.len());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u8(T_PING);
        assert!(matches!(decode_request(&buf), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn malformed_payloads_error_without_panic() {
        // Unknown tag.
        let mut buf = Vec::new();
        buf.put_u32_le(1);
        buf.put_u8(0x77);
        assert!(decode_request(&buf).is_err());
        // Truncated field inside a complete frame: READ needs 12 more bytes.
        let mut buf = Vec::new();
        buf.put_u32_le(2);
        buf.put_u8(T_READ);
        buf.put_u8(9);
        assert!(decode_request(&buf).is_err());
        // Trailing garbage after a valid PING.
        let mut buf = Vec::new();
        buf.put_u32_le(3);
        buf.put_u8(T_PING);
        buf.put_u16_le(0);
        assert!(decode_request(&buf).is_err());
        // Row claims more columns than the payload holds.
        let mut buf = Vec::new();
        buf.put_u32_le(1 + 4 + 8 + 2);
        buf.put_u8(T_UPDATE);
        buf.put_u32_le(1);
        buf.put_u64_le(1);
        buf.put_u16_le(100);
        assert!(decode_request(&buf).is_err());
        // Zero-length payload.
        let buf = 0u32.to_le_bytes();
        assert!(decode_request(&buf).is_err());
    }
}
