//! Client library and multi-connection load generator.

use crate::protocol::{
    decode_response, encode_request, encode_spec, FrameError, Request, Response, ServerStats,
};
use esdb_core::spec_exec::SpecOutcome;
use esdb_core::WorkloadReport;
use esdb_workload::{TxnSpec, Workload, WorkloadOp};
use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client-side errors.
#[derive(Debug)]
pub enum NetError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server shed this connection at admission ([`Response::Busy`]);
    /// retry after a backoff.
    ServerBusy,
    /// The peer broke the wire protocol.
    Protocol(FrameError),
    /// The server answered with an unexpected message for the request sent.
    Unexpected(&'static str),
    /// A structured server-side error response.
    Server(String),
    /// The commit is durable on the primary but its semi-sync quorum wait
    /// timed out: fewer than `needed` followers acked durability at `lsn`.
    QuorumTimeout {
        /// The commit LSN that was waiting for acks.
        lsn: u64,
        /// Follower acks in hand when the wait gave up.
        acked: u32,
        /// Acks the quorum policy required.
        needed: u32,
    },
    /// The server has been superseded by a higher replication term and
    /// refused the operation.
    Fenced {
        /// The higher term that fenced the server.
        term: u64,
    },
    /// The server does not own the slot the request touched — the caller's
    /// routing table is stale. Carries the server's routing epoch and its
    /// hint at the owning shard so routers can refresh and retry.
    WrongShard {
        /// The server's current routing epoch.
        epoch: u64,
        /// The shard the server believes owns the touched slot.
        hint: u32,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::ServerBusy => write!(f, "server at session capacity, retry later"),
            NetError::Protocol(e) => write!(f, "protocol: {e}"),
            NetError::Unexpected(what) => write!(f, "unexpected response (wanted {what})"),
            NetError::Server(msg) => write!(f, "server error: {msg}"),
            NetError::QuorumTimeout { lsn, acked, needed } => {
                write!(f, "quorum timeout at lsn {lsn}: {acked}/{needed} follower acks")
            }
            NetError::Fenced { term } => write!(f, "server fenced by higher term {term}"),
            NetError::WrongShard { epoch, hint } => {
                write!(f, "wrong shard (routing epoch {epoch}, owner hint shard {hint})")
            }
        }
    }
}

impl NetError {
    /// `true` for errors worth retrying the connection over: admission sheds
    /// and the I/O failures a restarting or draining server produces.
    /// Replication runners use this to decide between reconnecting and
    /// halting with a typed error.
    pub fn is_reconnectable(&self) -> bool {
        is_reconnectable(self)
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Protocol(e)
    }
}

/// Backoff plan for [`Client::connect_with_backoff`].
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Total connection attempts before giving up (≥ 1).
    pub attempts: usize,
    /// Delay after the first failed attempt; doubles per retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            attempts: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(250),
            seed: 1,
        }
    }
}

impl ReconnectPolicy {
    /// Delay before retry number `attempt` (zero-based): exponential, capped,
    /// with uniform jitter in `[half, full]` so a herd of shed clients does
    /// not reconnect in lockstep.
    fn delay(&self, attempt: u32, rng: &mut esdb_workload::Rng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap)
            .max(Duration::from_micros(1));
        let full = exp.as_micros() as u64;
        Duration::from_micros(rng.range(full / 2, full))
    }
}

/// `true` for errors worth retrying the connection over: admission sheds and
/// the I/O failures a restarting or draining server produces.
fn is_reconnectable(e: &NetError) -> bool {
    match e {
        NetError::ServerBusy => true,
        NetError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}

/// A checkpoint-consistent page snapshot fetched from a primary — a
/// replica's bootstrap image (see [`Client::fetch_snapshot`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Where the replica's log apply must begin.
    pub start_lsn: u64,
    /// Per table: id, name, arity, heap page ids in heap order.
    pub catalog: Vec<(u32, String, u32, Vec<u64>)>,
    /// Secondary index declarations, flattened: `(table_id, index_id, name,
    /// column, kind)` — kind as in `esdb_storage::IndexKind::as_u8`. Only
    /// declarations ship; the replica rebuilds contents from the heap.
    pub indexes: Vec<(u32, u32, String, u32, u8)>,
    /// `(page_id, raw page bytes)` for every heap page in the catalog.
    pub pages: Vec<(u64, Vec<u8>)>,
}

/// A connection to an esdb server.
pub struct Client {
    stream: TcpStream,
    inbox: Vec<u8>,
    /// When set, a socket read/write that stalls past the timeout surfaces
    /// as the typed [`FrameError::Timeout`] instead of a raw I/O error (see
    /// [`Client::set_op_timeout`]).
    op_timeout: Option<Duration>,
}

impl Client {
    /// Connects and consumes the admission greeting. Returns
    /// [`NetError::ServerBusy`] when the server sheds the connection.
    pub fn connect(addr: SocketAddr) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream, inbox: Vec::new(), op_timeout: None };
        match client.recv()? {
            Response::Hello => Ok(client),
            Response::Busy => Err(NetError::ServerBusy),
            _ => Err(NetError::Unexpected("greeting")),
        }
    }

    /// Like [`Client::connect`], retrying Busy sheds with a linear backoff.
    /// Thin wrapper over [`Client::connect_with_backoff`] kept for callers
    /// that want the old linear pacing knob.
    pub fn connect_with_retry(
        addr: SocketAddr,
        attempts: usize,
        backoff: Duration,
    ) -> Result<Client, NetError> {
        Client::connect_with_backoff(
            addr,
            &ReconnectPolicy {
                attempts,
                base: backoff,
                cap: backoff * 64,
                seed: 1,
            },
        )
    }

    /// Connects with bounded, jittered exponential backoff, retrying both
    /// [`NetError::ServerBusy`] sheds and transient connection failures
    /// (refused / reset / aborted / broken pipe / eof) — the errors a client
    /// sees while a server restarts or drains. Protocol errors and other I/O
    /// failures surface immediately.
    pub fn connect_with_backoff(
        addr: SocketAddr,
        policy: &ReconnectPolicy,
    ) -> Result<Client, NetError> {
        let mut rng = esdb_workload::Rng::new(policy.seed);
        let mut last = NetError::ServerBusy;
        for attempt in 0..policy.attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if attempt + 1 < policy.attempts.max(1) && is_reconnectable(&e) => {
                    last = e;
                    std::thread::sleep(policy.delay(attempt as u32, &mut rng));
                }
                Err(e) if is_reconnectable(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    fn send(&mut self, req: &Request) -> Result<(), NetError> {
        let mut buf = Vec::new();
        encode_request(req, &mut buf);
        self.stream.write_all(&buf).map_err(|e| self.stall_error(e))?;
        Ok(())
    }

    /// Maps a socket stall into the typed timeout when an op timeout is
    /// armed; every other I/O failure passes through untouched.
    fn stall_error(&self, e: std::io::Error) -> NetError {
        if self.op_timeout.is_some()
            && matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        {
            NetError::Protocol(FrameError::Timeout)
        } else {
            NetError::Io(e)
        }
    }

    /// Reads the next response frame (blocking).
    fn recv(&mut self) -> Result<Response, NetError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((resp, used)) = decode_response(&self.inbox)? {
                self.inbox.drain(..used);
                return Ok(resp);
            }
            let n = self.stream.read(&mut chunk).map_err(|e| self.stall_error(e))?;
            if n == 0 {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.inbox.extend_from_slice(&chunk[..n]);
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("pong")),
        }
    }

    /// Engine + server counters.
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("stats")),
        }
    }

    /// Full observability snapshot: counters plus the server's wait
    /// breakdown and per-component latency histograms.
    pub fn obs_stats(&mut self) -> Result<esdb_core::ObsSnapshot, NetError> {
        self.send(&Request::ObsStats)?;
        match self.recv()? {
            Response::ObsStats(snap) => Ok(*snap),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("obs stats")),
        }
    }

    /// Executes one one-shot transaction and waits for its outcome. The
    /// acknowledgment implies the commit is durable on the server.
    pub fn one_shot(&mut self, spec: &TxnSpec) -> Result<SpecOutcome, NetError> {
        let mut buf = Vec::new();
        encode_spec(spec, &mut buf);
        self.stream.write_all(&buf)?;
        self.read_outcome()
    }

    /// Pipelines a batch of one-shot transactions: all requests are written
    /// before any response is read, so the server can commit the whole batch
    /// under a single WAL flush. Outcomes come back in submission order.
    pub fn run_pipelined(&mut self, specs: &[TxnSpec]) -> Result<Vec<SpecOutcome>, NetError> {
        let mut buf = Vec::new();
        for spec in specs {
            encode_spec(spec, &mut buf);
        }
        self.stream.write_all(&buf)?;
        let mut outcomes = Vec::with_capacity(specs.len());
        for _ in specs {
            outcomes.push(self.read_outcome()?);
        }
        Ok(outcomes)
    }

    fn read_outcome(&mut self) -> Result<SpecOutcome, NetError> {
        match self.recv()? {
            Response::Outcome(outcome) => Ok(outcome),
            Response::QuorumTimeout { lsn, acked, needed } => {
                Err(NetError::QuorumTimeout { lsn, acked, needed })
            }
            Response::Fenced { term } => Err(NetError::Fenced { term }),
            Response::WrongShard { epoch, hint } => Err(NetError::WrongShard { epoch, hint }),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("outcome")),
        }
    }

    fn expect_ok(&mut self) -> Result<(), NetError> {
        match self.recv()? {
            Response::Ok => Ok(()),
            Response::QuorumTimeout { lsn, acked, needed } => {
                Err(NetError::QuorumTimeout { lsn, acked, needed })
            }
            Response::Fenced { term } => Err(NetError::Fenced { term }),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("ok")),
        }
    }

    /// Opens an interactive transaction on this session.
    pub fn begin(&mut self) -> Result<(), NetError> {
        self.send(&Request::Begin)?;
        self.expect_ok()
    }

    /// Reads a row inside the open transaction.
    pub fn read(&mut self, table: u32, key: u64) -> Result<Vec<i64>, NetError> {
        self.send(&Request::Read { table, key })?;
        match self.recv()? {
            Response::Row(row) => Ok(row),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("row")),
        }
    }

    /// Overwrites a row inside the open transaction.
    pub fn update(&mut self, table: u32, key: u64, row: Vec<i64>) -> Result<(), NetError> {
        self.send(&Request::Update { table, key, row })?;
        self.expect_ok()
    }

    /// Inserts a row inside the open transaction.
    pub fn insert(&mut self, table: u32, key: u64, row: Vec<i64>) -> Result<(), NetError> {
        self.send(&Request::Insert { table, key, row })?;
        self.expect_ok()
    }

    /// Commits the open transaction; returns once the commit is durable.
    pub fn commit(&mut self) -> Result<(), NetError> {
        self.send(&Request::Commit)?;
        self.expect_ok()
    }

    /// Aborts the open transaction.
    pub fn abort(&mut self) -> Result<(), NetError> {
        self.send(&Request::Abort)?;
        self.expect_ok()
    }

    /// Sets the socket read timeout; `recv` surfaces expiry as
    /// [`NetError::Io`] with `WouldBlock`/`TimedOut`. Used by replication
    /// loops that must interleave chunk waits with shutdown checks.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Arms a per-operation socket timeout on both directions of the
    /// connection. A peer that stalls mid-response (or stops draining our
    /// writes) past the bound surfaces as the typed
    /// [`NetError::Protocol`]\([`FrameError::Timeout`]\) instead of hanging
    /// the caller or leaking a raw I/O error. `None` disarms it.
    ///
    /// Distinct from [`Client::set_read_timeout`], whose expiry is a polling
    /// signal ([`Client::try_next_chunk`] turns it into `Ok(None)`); an op
    /// timeout is a hard failure of the request in flight.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        self.op_timeout = timeout;
        Ok(())
    }

    /// Fetches a checkpoint-consistent page snapshot from the primary: the
    /// replica's bootstrap image plus the LSN its log apply must start at.
    pub fn fetch_snapshot(&mut self) -> Result<Snapshot, NetError> {
        self.send(&Request::ReplSnapshot)?;
        let (start_lsn, catalog, indexes) = match self.recv()? {
            Response::SnapBegin { start_lsn, catalog, indexes } => {
                (start_lsn, catalog, indexes)
            }
            Response::Error(msg) => return Err(NetError::Server(msg)),
            _ => return Err(NetError::Unexpected("snap begin")),
        };
        let mut pages = Vec::new();
        loop {
            match self.recv()? {
                Response::SnapPage { page_id, bytes } => pages.push((page_id, bytes)),
                Response::SnapEnd { page_count } => {
                    if page_count != pages.len() as u64 {
                        return Err(NetError::Unexpected("snapshot page count"));
                    }
                    return Ok(Snapshot { start_lsn, catalog, indexes, pages });
                }
                Response::Error(msg) => return Err(NetError::Server(msg)),
                _ => return Err(NetError::Unexpected("snap page")),
            }
        }
    }

    /// Flips this session into a log feed starting at `from`, announcing the
    /// highest replication term this subscriber has observed. A primary
    /// running at a lower term fences itself and answers
    /// [`NetError::Fenced`] on the next chunk read. After this the server
    /// reads only [`Client::send_ack`] frames on this session; everything
    /// else arriving server-bound closes the feed.
    pub fn subscribe(&mut self, from: u64, term: u64) -> Result<(), NetError> {
        self.send(&Request::ReplSubscribe { from, term })
    }

    /// Reports durable replication progress up the subscribe feed: this
    /// follower has `lsn` bytes of the primary's stream durable, speaking at
    /// `term`. Feeds the primary's semi-sync quorum accounting; an ack
    /// stamped with a higher term fences the primary.
    pub fn send_ack(&mut self, term: u64, lsn: u64) -> Result<(), NetError> {
        self.send(&Request::ReplAck { term, lsn })
    }

    /// Blocks for the next shipped log span `(term, start_lsn, bytes)`.
    /// `term` is the primary's replication term for the span; a fenced
    /// primary answers [`NetError::Fenced`] instead of shipping.
    pub fn next_chunk(&mut self) -> Result<(u64, u64, Vec<u8>), NetError> {
        match self.recv()? {
            Response::LogChunk { term, start, bytes } => Ok((term, start, bytes)),
            Response::Fenced { term } => Err(NetError::Fenced { term }),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("log chunk")),
        }
    }

    /// Like [`Client::next_chunk`] but a read-timeout expiry (see
    /// [`Client::set_read_timeout`]) returns `Ok(None)` instead of an error,
    /// so an apply loop can poll its shutdown flag between chunks.
    pub fn try_next_chunk(&mut self) -> Result<Option<(u64, u64, Vec<u8>)>, NetError> {
        match self.next_chunk() {
            Ok(chunk) => Ok(Some(chunk)),
            Err(NetError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Read-your-writes token: the primary's durable LSN right now. Commits
    /// acknowledged on this session are covered by the returned token.
    pub fn commit_token(&mut self) -> Result<u64, NetError> {
        self.send(&Request::CommitToken)?;
        match self.recv()? {
            Response::Token { lsn } => Ok(lsn),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("token")),
        }
    }

    /// Follower read gated on a token. `Ok(Ok(row))` once the replica has
    /// applied past `min_lsn`; `Ok(Err(applied))` if it is still lagging at
    /// `applied` when its wait budget runs out.
    pub fn read_at(
        &mut self,
        table: u32,
        key: u64,
        min_lsn: u64,
    ) -> Result<Result<Vec<i64>, u64>, NetError> {
        self.send(&Request::ReadAt { table, key, min_lsn })?;
        match self.recv()? {
            Response::Row(row) => Ok(Ok(row)),
            Response::Lagging { applied } => Ok(Err(applied)),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("row or lagging")),
        }
    }

    /// Follower OLAP query gated on a token: execute `plan` at a
    /// commit-consistent snapshot no older than `min_lsn` (0 = no freshness
    /// requirement). `Ok(Ok(rows))` once the replica has applied past
    /// `min_lsn`; `Ok(Err(applied))` if it is still lagging at `applied`
    /// when its wait budget runs out. Invalid plans (unknown table or index
    /// id, out-of-range column) surface as [`NetError::Server`], as does
    /// sending a query to a primary.
    pub fn query_at(
        &mut self,
        min_lsn: u64,
        plan: &crate::protocol::WirePlan,
    ) -> Result<Result<Vec<Vec<i64>>, u64>, NetError> {
        self.send(&Request::Query { min_lsn, plan: plan.clone() })?;
        match self.recv()? {
            Response::Rows(rows) => Ok(Ok(rows)),
            Response::Lagging { applied } => Ok(Err(applied)),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("rows or lagging")),
        }
    }

    /// 2PC phase one against a participant shard: execute `ops`, force the
    /// Prepare record, and return the shard's vote. A committed outcome means
    /// the shard holds its locks awaiting [`Client::shard_decide`].
    pub fn shard_prepare(
        &mut self,
        gtid: u64,
        ops: Vec<WorkloadOp>,
    ) -> Result<SpecOutcome, NetError> {
        self.send(&Request::ShardPrepare { gtid, ops })?;
        match self.recv()? {
            Response::ShardVote { gtid: g, outcome } if g == gtid => Ok(outcome),
            Response::WrongShard { epoch, hint } => Err(NetError::WrongShard { epoch, hint }),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("shard vote")),
        }
    }

    /// 2PC phase two: deliver the coordinator's decision for `gtid`. Safe to
    /// retry — deciding an unknown gtid is acknowledged without effect.
    pub fn shard_decide(&mut self, gtid: u64, commit: bool) -> Result<(), NetError> {
        self.send(&Request::ShardDecide { gtid, commit })?;
        self.expect_ok()
    }

    /// Asks the server's coordinator decision log what became of `gtid`.
    /// `false` covers both a logged abort and no decision at all (presumed
    /// abort). Errors when the server has no decision source configured.
    pub fn shard_status(&mut self, gtid: u64) -> Result<bool, NetError> {
        self.send(&Request::ShardStatus { gtid })?;
        match self.recv()? {
            Response::ShardDecision { gtid: g, commit } if g == gtid => Ok(commit),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("shard decision")),
        }
    }

    /// The shard's in-doubt set: gtids prepared but undecided, sorted.
    pub fn shard_in_doubt(&mut self) -> Result<Vec<u64>, NetError> {
        self.send(&Request::ShardInDoubt)?;
        match self.recv()? {
            Response::ShardGtids(gtids) => Ok(gtids),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("shard gtids")),
        }
    }

    /// The server's current routing table: `(epoch, slot → shard map)`.
    /// Errors when the server has no routing source configured.
    pub fn routing_snapshot(&mut self) -> Result<(u64, Vec<u32>), NetError> {
        self.send(&Request::RoutingSnapshot)?;
        match self.recv()? {
            Response::Routing { epoch, slots } => Ok((epoch, slots)),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("routing")),
        }
    }

    /// Migration bulk fetch: every row of `table` in `slot` under a
    /// `slot_count`-slot ring, as the server's live (fuzzy) heap holds them.
    pub fn mig_fetch(
        &mut self,
        table: u32,
        slot: u32,
        slot_count: u32,
    ) -> Result<Vec<(u64, Vec<i64>)>, NetError> {
        self.send(&Request::MigFetch { table, slot, slot_count })?;
        match self.recv()? {
            Response::MigRows { rows } => Ok(rows),
            Response::Error(msg) => Err(NetError::Server(msg)),
            _ => Err(NetError::Unexpected("migration rows")),
        }
    }

    /// One-shot read of the latest committed row (a tiny transaction).
    pub fn read_committed(&mut self, table: u32, key: u64) -> Result<Option<Vec<i64>>, NetError> {
        let spec = TxnSpec {
            kind: "read",
            ops: vec![WorkloadOp::Read { table, key }],
            may_fail: true,
        };
        match self.one_shot(&spec)? {
            SpecOutcome::Committed { mut reads } => Ok(reads.remove(0)),
            _ => Ok(None),
        }
    }
}

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections (one thread each).
    pub connections: usize,
    /// Transactions per connection.
    pub txns_per_conn: u64,
    /// One-shot transactions kept in flight per connection. Depth 1 is
    /// strict request/response; deeper pipelines let the server batch
    /// commits into shared WAL flushes.
    pub pipeline_depth: usize,
    /// Busy-shed retry attempts per connection.
    pub connect_attempts: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            txns_per_conn: 1_000,
            pipeline_depth: 8,
            connect_attempts: 50,
        }
    }
}

/// Drives `config.connections` concurrent client connections against the
/// server at `addr`, each executing forks of `workload`, and returns the
/// aggregate report keyed by the client-side transaction kinds.
pub fn run_load(
    addr: SocketAddr,
    workload: &mut dyn Workload,
    config: &LoadConfig,
) -> Result<WorkloadReport, NetError> {
    let start = Instant::now();
    let mut handles = Vec::new();
    for conn in 0..config.connections {
        let mut gen = workload.fork();
        let cfg = config.clone();
        handles.push(std::thread::spawn(move || -> Result<WorkloadReport, NetError> {
            let mut client = Client::connect_with_backoff(
                addr,
                &ReconnectPolicy {
                    attempts: cfg.connect_attempts,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(200),
                    seed: conn as u64 + 1,
                },
            )?;
            let mut report = WorkloadReport::default();
            let mut remaining = cfg.txns_per_conn;
            while remaining > 0 {
                let n = remaining.min(cfg.pipeline_depth.max(1) as u64) as usize;
                let specs: Vec<TxnSpec> = (0..n).map(|_| gen.next_txn()).collect();
                let outcomes = client.run_pipelined(&specs)?;
                for (spec, outcome) in specs.iter().zip(&outcomes) {
                    report.record(spec.kind, spec.may_fail, outcome);
                }
                remaining -= n as u64;
            }
            Ok(report)
        }));
    }
    let mut report = WorkloadReport::default();
    let mut first_err = None;
    for h in handles {
        match h.join().expect("load thread") {
            Ok(r) => report.merge(r),
            Err(e) => first_err = Some(e),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    report.elapsed = start.elapsed();
    Ok(report)
}
