//! End-to-end tests: real sockets on ephemeral loopback ports.

use esdb_core::{Database, EngineConfig};
use esdb_net::{run_load, Client, LoadConfig, NetError, ReconnectPolicy, Server, ServerConfig};
use esdb_workload::{Tatp, TxnSpec, WorkloadOp};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(config: EngineConfig, max_sessions: usize) -> (Arc<Database>, Server) {
    let db = Arc::new(Database::open(config));
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions, ..ServerConfig::default() },
    )
    .expect("bind ephemeral port");
    (db, server)
}

#[test]
fn concurrent_clients_and_stats_match_observed_commits() {
    let (db, server) = start_server(EngineConfig::conventional_baseline(), 16);
    let mut workload = Tatp::new(200, 11);
    db.load_population(&workload).expect("population load");

    let report = run_load(
        server.local_addr(),
        &mut workload,
        &LoadConfig {
            connections: 3,
            txns_per_conn: 100,
            pipeline_depth: 4,
            connect_attempts: 10,
        },
    )
    .expect("load run");
    assert_eq!(report.attempts, 300);
    assert_eq!(report.failed, 0, "unexpected failures: {report}");
    assert!(report.committed > 150, "{report}");

    // The server's own counters must agree with what the clients observed.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.txns_executed, 300);
    assert_eq!(stats.txns_committed, report.committed);
    assert_eq!(stats.engine.commits, report.committed);
    assert_eq!(stats.sessions_shed, 0);
    assert!(stats.sessions_accepted >= 4); // 3 load connections + this one
    assert!(stats.engine.durable_lsn <= stats.engine.current_lsn);
    server.shutdown();
}

#[test]
fn pipelined_batches_share_wal_flushes() {
    let (db, server) = start_server(EngineConfig::conventional_baseline(), 4);
    let t = db.create_table("kv", 1).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut committed = 0u64;
    for batch in 0..25u64 {
        let specs: Vec<TxnSpec> = (0..8)
            .map(|i| TxnSpec {
                kind: "ins",
                ops: vec![WorkloadOp::Insert { table: t, key: batch * 8 + i, row: vec![1] }],
                may_fail: false,
            })
            .collect();
        let outcomes = client.run_pipelined(&specs).unwrap();
        committed += outcomes.iter().filter(|o| o.is_committed()).count() as u64;
    }
    assert_eq!(committed, 200);
    let stats = client.stats().unwrap();
    // Group commit: with 8 transactions in flight per batch, many commits
    // must share a physical flush — strictly fewer flushes than commits.
    assert!(
        stats.engine.wal_flushes < stats.engine.commits,
        "expected batched flushes: {} flushes for {} commits",
        stats.engine.wal_flushes,
        stats.engine.commits
    );
    server.shutdown();
}

#[test]
fn session_cap_sheds_with_structured_busy() {
    let (_db, server) = start_server(EngineConfig::conventional_baseline(), 2);
    let addr = server.local_addr();

    let _c1 = Client::connect(addr).expect("first session");
    let _c2 = Client::connect(addr).expect("second session");
    // Connection N+1 is refused with a Busy greeting — an error value on the
    // client, not a hang, not a server panic.
    match Client::connect(addr) {
        Err(NetError::ServerBusy) => {}
        Ok(_) => panic!("connection N+1 was admitted past the cap"),
        Err(other) => panic!("expected ServerBusy, got {other}"),
    }
    let stats = {
        drop(_c1);
        // The freed slot is reclaimed once the server notices the close.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match Client::connect(addr) {
                Ok(mut c) => break c.stats().unwrap(),
                Err(NetError::ServerBusy) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("reconnect failed: {e}"),
            }
        }
    };
    assert!(stats.sessions_shed >= 1);
    assert_eq!(stats.sessions_active, 2);
    server.shutdown();
}

#[test]
fn backoff_reconnect_rides_out_a_shedding_server() {
    let (_db, server) = start_server(EngineConfig::conventional_baseline(), 1);
    let addr = server.local_addr();

    // The single session slot is held; a plain connect is shed immediately.
    let holder = Client::connect(addr).expect("claim the only slot");
    match Client::connect(addr) {
        Err(NetError::ServerBusy) => {}
        Ok(_) => panic!("connection admitted past the cap"),
        Err(other) => panic!("expected ServerBusy, got {other}"),
    }

    // With the slot held for ~40ms, a backoff policy whose total budget
    // exceeds that must ride out the Busy sheds and land the connection.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        drop(holder);
    });
    let policy = ReconnectPolicy {
        attempts: 60,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(25),
        seed: 7,
    };
    let mut client = Client::connect_with_backoff(addr, &policy).expect("reconnect after release");
    client.ping().unwrap();
    release.join().unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.sessions_shed >= 1, "the server did shed: {stats:?}");

    // Bounded: with the slot held forever, the policy gives up with
    // ServerBusy rather than hanging.
    let policy = ReconnectPolicy {
        attempts: 3,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
        seed: 7,
    };
    match Client::connect_with_backoff(addr, &policy) {
        Err(NetError::ServerBusy) => {}
        Ok(_) => panic!("connection admitted while the slot is held"),
        Err(other) => panic!("expected bounded ServerBusy, got {other}"),
    }
    drop(client);
    server.shutdown();

    // Connection refused after shutdown is retryable but bounded too.
    match Client::connect_with_backoff(addr, &ReconnectPolicy {
        attempts: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
        seed: 7,
    }) {
        Err(NetError::Io(e)) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset
            ),
            "unexpected io error: {e}"
        ),
        Ok(_) => panic!("connected to a shut-down server"),
        Err(other) => panic!("expected io error after shutdown, got {other}"),
    }
}

#[test]
fn graceful_shutdown_leaves_wal_durable_for_recovery() {
    let (db, server) = start_server(EngineConfig::conventional_baseline(), 4);
    let t = db.create_table("t", 1).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    for k in 0..20 {
        let outcome = client
            .one_shot(&TxnSpec {
                kind: "ins",
                ops: vec![WorkloadOp::Insert { table: t, key: k, row: vec![k as i64] }],
                may_fail: false,
            })
            .unwrap();
        assert!(outcome.is_committed());
    }
    // Leave an interactive transaction open across shutdown: it must be
    // aborted, not half-committed.
    client.begin().unwrap();
    client.insert(t, 999, vec![-1]).unwrap();
    server.shutdown();

    // Crash without flushing dirty pages: recovery must rebuild all twenty
    // committed rows from the durable log alone, and nothing else.
    let recovered = db.simulate_crash(false);
    for k in 0..20 {
        assert_eq!(recovered.read_committed(t, k).unwrap(), vec![k as i64]);
    }
    assert!(recovered.read_committed(t, 999).is_err(), "open txn leaked");
}

#[test]
fn malformed_frames_get_error_and_close_without_crashing_server() {
    let (_db, server) = start_server(EngineConfig::conventional_baseline(), 4);
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    // Swallow the Hello greeting (5 bytes: u32 len + tag).
    let mut greeting = [0u8; 5];
    raw.read_exact(&mut greeting).unwrap();
    // A hostile length prefix claiming a 4 GiB frame.
    raw.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x00]).unwrap();
    // The server answers with an Error frame and closes; it must not hang
    // and must not allocate the claimed size.
    let mut reply = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = raw.read_to_end(&mut reply);
    assert!(!reply.is_empty(), "expected an Error frame before close");

    // The server survived: a fresh, well-behaved session works.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn dora_databases_serve_one_shots_and_reject_interactive() {
    let (db, server) = start_server(EngineConfig::scalable(2), 4);
    let t = db.create_table("t", 1).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let outcome = client
        .one_shot(&TxnSpec {
            kind: "ins",
            ops: vec![WorkloadOp::Insert { table: t, key: 7, row: vec![70] }],
            may_fail: false,
        })
        .unwrap();
    assert!(outcome.is_committed());
    assert_eq!(client.read_committed(t, 7).unwrap(), Some(vec![70]));
    // Interactive transactions need the conventional engine: structured
    // error, session stays usable.
    match client.begin() {
        Err(NetError::Server(msg)) => assert!(msg.contains("conventional")),
        other => panic!("expected server error, got {other:?}"),
    }
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn interactive_txn_roundtrip_with_conflict_abort() {
    let (db, server) = start_server(EngineConfig::conventional_baseline(), 4);
    let t = db.create_table("acct", 2).unwrap();
    let mut a = Client::connect(server.local_addr()).unwrap();
    a.begin().unwrap();
    a.insert(t, 1, vec![100, 0]).unwrap();
    a.insert(t, 2, vec![50, 0]).unwrap();
    a.commit().unwrap();

    // Read-modify-write across two statements.
    a.begin().unwrap();
    let row = a.read(t, 1).unwrap();
    a.update(t, 1, vec![row[0] - 10, row[1] + 1]).unwrap();
    a.commit().unwrap();
    assert_eq!(a.read_committed(t, 1).unwrap(), Some(vec![90, 1]));

    // A statement on a missing key aborts the transaction server-side.
    a.begin().unwrap();
    match a.read(t, 404) {
        Err(NetError::Server(msg)) => assert!(msg.contains("aborted")),
        other => panic!("expected abort, got {other:?}"),
    }
    // The session is reusable; the aborted transaction is gone.
    match a.commit() {
        Err(NetError::Server(msg)) => assert!(msg.contains("no open transaction")),
        other => panic!("expected no-open-txn, got {other:?}"),
    }
    a.begin().unwrap();
    a.update(t, 2, vec![55, 1]).unwrap();
    a.abort().unwrap();
    assert_eq!(a.read_committed(t, 2).unwrap(), Some(vec![50, 0]));
    server.shutdown();
}

/// Satellite: per-reactor drain-and-flush must not hang on a session that
/// stopped mid-frame. The complete prefix (a Ping) is answered, the
/// half-frame tail is discarded, and shutdown completes promptly.
#[test]
fn shutdown_with_mid_frame_peer_answers_prefix_and_exits() {
    let (db, server) = start_server(EngineConfig::conventional_baseline(), 4);
    let t = db.create_table("kv", 1).unwrap();

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut greeting = [0u8; 5];
    raw.read_exact(&mut greeting).unwrap(); // Hello
    // One complete Ping, then the first 3 bytes of a larger frame's length
    // prefix — a client that froze mid-send.
    let mut wire = Vec::new();
    esdb_net::protocol::encode_request(&esdb_net::Request::Ping, &mut wire);
    wire.extend_from_slice(&[0x40, 0x00, 0x00]);
    raw.write_all(&wire).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait for a frame that will never finish"
    );

    // The complete prefix was answered before the close.
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut replies = Vec::new();
    raw.read_to_end(&mut replies).unwrap();
    let mut decoded = Vec::new();
    while let Some((resp, used)) = esdb_net::protocol::decode_response(&replies).unwrap() {
        decoded.push(resp);
        replies.drain(..used);
    }
    assert_eq!(decoded, vec![esdb_net::Response::Pong]);
    assert!(replies.is_empty(), "no partial junk after the last frame");

    // The discarded half-frame left no mark on the engine.
    let recovered = db.simulate_crash(false);
    assert!(recovered.read_committed(t, 1).is_err(), "nothing was ever committed");
}
