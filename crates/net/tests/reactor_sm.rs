//! Reactor state-machine properties: the nonblocking frame cursor at the
//! heart of every reactor session must decode a byte stream *identically*
//! no matter how the kernel fragments it, must never lose or re-read a
//! byte, and must be a pure function of its buffered state — `Ok(None)` on
//! a partial frame is a stable answer, not a spin loop. The last test
//! drives the property end-to-end through a real socket: a byte-by-byte
//! dribbled session gets the same responses as a well-behaved one.

use esdb_core::{Database, EngineConfig};
use esdb_net::protocol::{decode_response, encode_request, FrameError, Request, Response};
use esdb_net::{Client, FrameCursor, Server, ServerConfig};
use esdb_workload::{TxnSpec, WorkloadOp};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn row_strategy() -> BoxedStrategy<Vec<i64>> {
    prop::collection::vec((-1_000i64..1_000).boxed(), 0..4).boxed()
}

fn ops_strategy() -> BoxedStrategy<Vec<WorkloadOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..8, 0u64..100).prop_map(|(table, key)| WorkloadOp::Read { table, key }),
            (0u32..8, 0u64..100, row_strategy())
                .prop_map(|(table, key, row)| WorkloadOp::Write { table, key, row }),
            (0u32..8, 0u64..100, row_strategy())
                .prop_map(|(table, key, row)| WorkloadOp::Insert { table, key, row }),
        ],
        1..4,
    )
    .boxed()
}

/// Every request shape a reactor session can see on its inline path.
fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping).boxed(),
        Just(Request::Stats).boxed(),
        Just(Request::Begin).boxed(),
        Just(Request::Commit).boxed(),
        Just(Request::Abort).boxed(),
        Just(Request::CommitToken).boxed(),
        ops_strategy().prop_map(|ops| Request::OneShot { may_fail: true, ops }).boxed(),
        (0u32..8, 0u64..100).prop_map(|(table, key)| Request::Read { table, key }).boxed(),
        (0u32..8, 0u64..100, row_strategy())
            .prop_map(|(table, key, row)| Request::Update { table, key, row })
            .boxed(),
        (0u32..8, 0u64..100, row_strategy())
            .prop_map(|(table, key, row)| Request::Insert { table, key, row })
            .boxed(),
        (0u64..10_000, 1u64..5).prop_map(|(lsn, term)| Request::ReplAck { lsn, term }).boxed(),
        (0u32..8, 0u64..100, 0u64..10_000)
            .prop_map(|(table, key, min_lsn)| Request::ReadAt { table, key, min_lsn })
            .boxed(),
    ]
    .boxed()
}

fn encode_all(reqs: &[Request]) -> Vec<u8> {
    let mut wire = Vec::new();
    for r in reqs {
        encode_request(r, &mut wire);
    }
    wire
}

/// Drains every complete frame currently buffered in `cursor`.
fn drain(cursor: &mut FrameCursor) -> Vec<Request> {
    let mut out = Vec::new();
    loop {
        match cursor.next() {
            Ok(Some(req)) => out.push(req),
            Ok(None) => return out,
            Err(e) => panic!("valid stream must never error: {e}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Tentpole property: for *any* fragmentation of a valid request
    /// stream — including pathological one-byte reads — the cursor yields
    /// exactly the original request sequence, with nothing buffered at the
    /// end. Fragmentation is invisible above the cursor.
    #[test]
    fn any_split_of_the_stream_decodes_identically(
        reqs in prop::collection::vec(request_strategy(), 1..6),
        chunks in prop::collection::vec(1usize..9, 1..64),
    ) {
        let wire = encode_all(&reqs);
        let mut cursor = FrameCursor::new();
        let mut got = Vec::new();
        let mut off = 0;
        let mut i = 0;
        while off < wire.len() {
            let n = chunks[i % chunks.len()].min(wire.len() - off);
            i += 1;
            cursor.feed(&wire[off..off + n]);
            off += n;
            got.extend(drain(&mut cursor));
        }
        prop_assert_eq!(got, reqs);
        prop_assert_eq!(cursor.buffered(), 0);
    }

    /// One byte at a time is the worst case the kernel can serve; it must
    /// still reconstruct the stream exactly.
    #[test]
    fn byte_by_byte_feed_loses_nothing(reqs in prop::collection::vec(request_strategy(), 1..4)) {
        let wire = encode_all(&reqs);
        let mut cursor = FrameCursor::new();
        let mut got = Vec::new();
        for b in &wire {
            cursor.feed(std::slice::from_ref(b));
            got.extend(drain(&mut cursor));
        }
        prop_assert_eq!(got, reqs);
        prop_assert_eq!(cursor.buffered(), 0);
    }

    /// No-busy-spin contract: a partial frame answers `Ok(None)` and calling
    /// `next()` again (as an over-eager reactor tick might) is a no-op — the
    /// buffered byte count never moves until new bytes arrive. Feeding the
    /// tail then completes the very request that was cut.
    #[test]
    fn partial_frame_is_a_stable_need_more(req in request_strategy(), cut_seed in 1usize..10_000) {
        let wire = encode_all(std::slice::from_ref(&req));
        let cut = 1 + cut_seed % (wire.len() - 1).max(1); // strict, non-empty prefix
        let cut = cut.min(wire.len() - 1);
        let mut cursor = FrameCursor::new();
        cursor.feed(&wire[..cut]);
        for _ in 0..16 {
            prop_assert_eq!(cursor.next().expect("prefix of a valid frame is not malformed"), None);
            prop_assert_eq!(cursor.buffered(), cut);
        }
        cursor.feed(&wire[cut..]);
        prop_assert_eq!(cursor.next().unwrap(), Some(req));
        prop_assert_eq!(cursor.buffered(), 0);
    }

    /// `take_rest` (the request→feed flip) hands back exactly the unconsumed
    /// suffix: frames already popped are gone, pipelined trailing bytes —
    /// complete or partial — survive verbatim, and the cursor is empty after.
    #[test]
    fn take_rest_returns_exactly_the_unconsumed_suffix(
        consumed in prop::collection::vec(request_strategy(), 0..3),
        trailing in prop::collection::vec(request_strategy(), 0..3),
        partial_tail in prop::collection::vec(any::<u8>(), 0..3),
    ) {
        let mut wire = encode_all(&consumed);
        let mut suffix = encode_all(&trailing);
        // A few raw bytes mimic a frame still in flight at flip time. Three
        // bytes is shorter than any length prefix, so they cannot complete
        // a frame and perturb the consumed count.
        suffix.extend_from_slice(&partial_tail);
        wire.extend_from_slice(&suffix);

        let mut cursor = FrameCursor::new();
        cursor.feed(&wire);
        for expected in &consumed {
            prop_assert_eq!(cursor.next().unwrap().as_ref(), Some(expected));
        }
        let mut rest = FrameCursor::from_bytes(cursor.take_rest());
        prop_assert_eq!(cursor.buffered(), 0);
        prop_assert_eq!(drain(&mut rest), trailing);
        prop_assert_eq!(rest.buffered(), partial_tail.len());
    }
}

/// Malformed input surfaces the typed decode error instead of panicking or
/// pretending to need more bytes; the error is sticky across retries.
#[test]
fn malformed_bytes_error_typed_and_sticky() {
    // An oversized length prefix — the same hostile frame net_server.rs
    // throws at the full server.
    let mut cursor = FrameCursor::new();
    cursor.feed(&[0xFF, 0xFF, 0xFF, 0xFF, 0x00]);
    assert_eq!(cursor.next(), Err(FrameError::Oversized(0xFFFF_FFFF)));
    assert_eq!(
        cursor.next(),
        Err(FrameError::Oversized(0xFFFF_FFFF)),
        "error must not self-heal"
    );
}

/// End-to-end: a session whose bytes arrive one at a time (forcing the
/// reactor through every partial-frame state) produces byte-identical
/// responses to the blocking client driving the same requests.
#[test]
fn dribbled_session_matches_blocking_path_responses() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 2).unwrap();
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { poll_interval: Duration::from_millis(2), ..ServerConfig::default() },
    )
    .unwrap();

    // Control path: the blocking client, one request per round trip.
    let mut control = Client::connect(server.local_addr()).unwrap();
    control.ping().unwrap();
    let spec = TxnSpec {
        kind: "ctl",
        ops: vec![WorkloadOp::Insert { table: t, key: 1, row: vec![7, 7] }],
        may_fail: false,
    };
    control.one_shot(&spec).unwrap();
    assert_eq!(control.read_committed(t, 1).unwrap(), Some(vec![7, 7]));

    // Dribble path: same request shapes (fresh key), one byte per write.
    let mut wire = Vec::new();
    encode_request(&Request::Ping, &mut wire);
    encode_request(
        &Request::OneShot {
            may_fail: false,
            ops: vec![WorkloadOp::Insert { table: t, key: 2, row: vec![7, 7] }],
        },
        &mut wire,
    );
    encode_request(&Request::Begin, &mut wire);
    encode_request(&Request::Read { table: t, key: 2 }, &mut wire);
    encode_request(&Request::Commit, &mut wire);

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut greeting = [0u8; 5];
    raw.read_exact(&mut greeting).unwrap(); // Hello
    for b in &wire {
        raw.write_all(std::slice::from_ref(b)).unwrap();
        raw.flush().unwrap();
    }
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let mut replies = Vec::new();
    let mut buf = [0u8; 4096];
    let mut decoded = Vec::new();
    while decoded.len() < 5 {
        let n = raw.read(&mut buf).expect("five responses are owed");
        assert!(n > 0, "server closed before answering everything");
        replies.extend_from_slice(&buf[..n]);
        while let Some((resp, used)) = decode_response(&replies).unwrap() {
            decoded.push(resp);
            replies.drain(..used);
        }
    }
    assert_eq!(decoded[0], Response::Pong);
    match &decoded[1] {
        Response::Outcome(outcome) if outcome.is_committed() => {}
        other => panic!("dribbled one-shot must commit exactly like the blocking path: {other:?}"),
    }
    assert_eq!(decoded[2], Response::Ok, "BEGIN");
    assert_eq!(decoded[3], Response::Row(vec![7, 7]));
    assert_eq!(decoded[4], Response::Ok, "COMMIT");
    server.shutdown();
}
