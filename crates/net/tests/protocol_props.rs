//! Property tests: wire frames round-trip, and arbitrary bytes never panic
//! the decoder — the server's parsing surface must be total.

use esdb_core::{ObsSnapshot, StatsSnapshot, OBS_SNAPSHOT_VERSION};
use esdb_net::protocol::{
    decode_request, decode_response, encode_request, encode_response, FrameError, Request, Response,
};
use esdb_obs::{HistogramSnapshot, WaitProfile, BUCKETS};
use esdb_workload::WorkloadOp;
use proptest::prelude::*;

fn row_strategy() -> BoxedStrategy<Vec<i64>> {
    prop::collection::vec((-1_000_000i64..1_000_000).boxed(), 0..5).boxed()
}

fn op_strategy() -> BoxedStrategy<WorkloadOp> {
    prop_oneof![
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| WorkloadOp::Read { table, key }),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| WorkloadOp::Write { table, key, row }),
        (0u32..64, 0u64..10_000, 0usize..8, -1000i64..1000)
            .prop_map(|(table, key, col, delta)| WorkloadOp::Add { table, key, col, delta }),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| WorkloadOp::Insert { table, key, row }),
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| WorkloadOp::Delete { table, key }),
    ]
    .boxed()
}

fn hist_strategy() -> BoxedStrategy<HistogramSnapshot> {
    prop::collection::vec(any::<u64>(), 0..12)
        .prop_map(|values| {
            let mut h = HistogramSnapshot::default();
            for v in values {
                h.record(v);
            }
            h
        })
        .boxed()
}

fn profile_strategy() -> BoxedStrategy<WaitProfile> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(useful, lock_wait, latch_spin, log_wait, io_retry, commit_flush)| {
            WaitProfile { useful, lock_wait, latch_spin, log_wait, io_retry, commit_flush }
        })
        .boxed()
}

fn snapshot_strategy() -> BoxedStrategy<ObsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        profile_strategy(),
        hist_strategy(),
        hist_strategy(),
        hist_strategy(),
        hist_strategy(),
    )
        .prop_map(|(s, breakdown, lock_wait, wal_flush, pool_miss, txn_latency)| ObsSnapshot {
            version: OBS_SNAPSHOT_VERSION,
            stats: StatsSnapshot {
                commits: s.0,
                aborts: s.1,
                durable_lsn: s.2,
                current_lsn: s.3,
                wal_flushes: s.4,
            },
            breakdown,
            lock_wait,
            wal_flush,
            pool_miss,
            txn_latency,
        })
        .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping).boxed(),
        Just(Request::Stats).boxed(),
        Just(Request::ObsStats).boxed(),
        Just(Request::Begin).boxed(),
        Just(Request::Commit).boxed(),
        Just(Request::Abort).boxed(),
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| Request::Read { table, key }).boxed(),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| Request::Update { table, key, row })
            .boxed(),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| Request::Insert { table, key, row })
            .boxed(),
        (any::<bool>(), prop::collection::vec(op_strategy(), 0..6))
            .prop_map(|(may_fail, ops)| Request::OneShot { may_fail, ops })
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in request_strategy()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (decoded, consumed) = decode_request(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_valid_frames_report_incomplete(req in request_strategy(), cut in 0usize..10_000) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = cut % buf.len();
        // Any strict prefix of a valid frame is incomplete, never malformed.
        prop_assert_eq!(decode_request(&buf[..cut]).unwrap(), None);
    }

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The decoders are total functions: any byte soup yields Ok or Err,
        // and whatever they decode must consume no more than the input.
        if let Ok(Some((_, used))) = decode_request(&bytes) {
            prop_assert!(used <= bytes.len());
        }
        if let Ok(Some((_, used))) = decode_response(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    #[test]
    fn obs_snapshots_roundtrip(snap in snapshot_strategy()) {
        let mut buf = Vec::new();
        let resp = Response::ObsStats(Box::new(snap));
        encode_response(&resp, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, resp);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn obs_histograms_survive_the_wire_exactly(snap in snapshot_strategy()) {
        // Quantiles read off a decoded snapshot must match the sender's —
        // the monitoring path cannot silently skew percentiles.
        let mut buf = Vec::new();
        encode_response(&Response::ObsStats(Box::new(snap.clone())), &mut buf);
        let (decoded, _) = decode_response(&buf).unwrap().unwrap();
        let Response::ObsStats(got) = decoded else { panic!("wrong variant") };
        for i in 0..BUCKETS {
            prop_assert_eq!(got.txn_latency.buckets[i], snap.txn_latency.buckets[i]);
        }
        prop_assert_eq!(got.txn_latency.p50(), snap.txn_latency.p50());
        prop_assert_eq!(got.txn_latency.p99(), snap.txn_latency.p99());
        prop_assert_eq!(got.breakdown.wall(), snap.breakdown.wall());
    }

    #[test]
    fn foreign_snapshot_versions_decode_to_typed_error(
        snap in snapshot_strategy(),
        version in any::<u32>(),
    ) {
        // The vendored proptest has no prop_assume; dodge the one valid value.
        let version = if version == OBS_SNAPSHOT_VERSION { version.wrapping_add(1) } else { version };
        let mut buf = Vec::new();
        encode_response(&Response::ObsStats(Box::new(snap)), &mut buf);
        // Rewrite the version field (4-byte length prefix, 1-byte tag, then
        // the little-endian version). A peer from the future must yield a
        // typed error — never a panic, never a misread layout.
        buf[5..9].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(decode_response(&buf), Err(FrameError::UnsupportedVersion(version)));
    }

    #[test]
    fn corrupted_tag_errors_cleanly(req in request_strategy(), evil in any::<u8>()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        // Smash the payload tag; decoding must not panic and must consume
        // nothing it should not.
        buf[4] = evil;
        let _ = decode_request(&buf);
    }
}
