//! Property tests: wire frames round-trip, and arbitrary bytes never panic
//! the decoder — the server's parsing surface must be total.

use esdb_net::protocol::{decode_request, decode_response, encode_request, Request};
use esdb_workload::WorkloadOp;
use proptest::prelude::*;

fn row_strategy() -> BoxedStrategy<Vec<i64>> {
    prop::collection::vec((-1_000_000i64..1_000_000).boxed(), 0..5).boxed()
}

fn op_strategy() -> BoxedStrategy<WorkloadOp> {
    prop_oneof![
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| WorkloadOp::Read { table, key }),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| WorkloadOp::Write { table, key, row }),
        (0u32..64, 0u64..10_000, 0usize..8, -1000i64..1000)
            .prop_map(|(table, key, col, delta)| WorkloadOp::Add { table, key, col, delta }),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| WorkloadOp::Insert { table, key, row }),
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| WorkloadOp::Delete { table, key }),
    ]
    .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping).boxed(),
        Just(Request::Stats).boxed(),
        Just(Request::Begin).boxed(),
        Just(Request::Commit).boxed(),
        Just(Request::Abort).boxed(),
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| Request::Read { table, key }).boxed(),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| Request::Update { table, key, row })
            .boxed(),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| Request::Insert { table, key, row })
            .boxed(),
        (any::<bool>(), prop::collection::vec(op_strategy(), 0..6))
            .prop_map(|(may_fail, ops)| Request::OneShot { may_fail, ops })
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in request_strategy()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (decoded, consumed) = decode_request(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_valid_frames_report_incomplete(req in request_strategy(), cut in 0usize..10_000) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = cut % buf.len();
        // Any strict prefix of a valid frame is incomplete, never malformed.
        prop_assert_eq!(decode_request(&buf[..cut]).unwrap(), None);
    }

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The decoders are total functions: any byte soup yields Ok or Err,
        // and whatever they decode must consume no more than the input.
        if let Ok(Some((_, used))) = decode_request(&bytes) {
            prop_assert!(used <= bytes.len());
        }
        if let Ok(Some((_, used))) = decode_response(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    #[test]
    fn corrupted_tag_errors_cleanly(req in request_strategy(), evil in any::<u8>()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        // Smash the payload tag; decoding must not panic and must consume
        // nothing it should not.
        buf[4] = evil;
        let _ = decode_request(&buf);
    }
}
