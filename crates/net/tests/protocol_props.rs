//! Property tests: wire frames round-trip, and arbitrary bytes never panic
//! the decoder — the server's parsing surface must be total.

use esdb_core::{ObsSnapshot, StatsSnapshot, OBS_SNAPSHOT_VERSION};
use esdb_net::protocol::{
    decode_request, decode_response, encode_request, encode_response, FrameError, Request, Response,
};
use esdb_obs::{HistogramSnapshot, WaitProfile, BUCKETS};
use esdb_workload::WorkloadOp;
use proptest::prelude::*;

fn row_strategy() -> BoxedStrategy<Vec<i64>> {
    prop::collection::vec((-1_000_000i64..1_000_000).boxed(), 0..5).boxed()
}

fn op_strategy() -> BoxedStrategy<WorkloadOp> {
    prop_oneof![
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| WorkloadOp::Read { table, key }),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| WorkloadOp::Write { table, key, row }),
        (0u32..64, 0u64..10_000, 0usize..8, -1000i64..1000)
            .prop_map(|(table, key, col, delta)| WorkloadOp::Add { table, key, col, delta }),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| WorkloadOp::Insert { table, key, row }),
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| WorkloadOp::Delete { table, key }),
    ]
    .boxed()
}

fn hist_strategy() -> BoxedStrategy<HistogramSnapshot> {
    prop::collection::vec(any::<u64>(), 0..12)
        .prop_map(|values| {
            let mut h = HistogramSnapshot::default();
            for v in values {
                h.record(v);
            }
            h
        })
        .boxed()
}

fn profile_strategy() -> BoxedStrategy<WaitProfile> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(useful, lock_wait, latch_spin, log_wait, io_retry, commit_flush)| {
            WaitProfile { useful, lock_wait, latch_spin, log_wait, io_retry, commit_flush }
        })
        .boxed()
}

fn snapshot_strategy() -> BoxedStrategy<ObsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        profile_strategy(),
        hist_strategy(),
        hist_strategy(),
        hist_strategy(),
        hist_strategy(),
    )
        .prop_map(|(s, breakdown, lock_wait, wal_flush, pool_miss, txn_latency)| ObsSnapshot {
            version: OBS_SNAPSHOT_VERSION,
            stats: StatsSnapshot {
                commits: s.0,
                aborts: s.1,
                durable_lsn: s.2,
                current_lsn: s.3,
                wal_flushes: s.4,
            },
            breakdown,
            lock_wait,
            wal_flush,
            pool_miss,
            txn_latency,
        })
        .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping).boxed(),
        Just(Request::Stats).boxed(),
        Just(Request::ObsStats).boxed(),
        Just(Request::Begin).boxed(),
        Just(Request::Commit).boxed(),
        Just(Request::Abort).boxed(),
        (0u32..64, 0u64..10_000).prop_map(|(table, key)| Request::Read { table, key }).boxed(),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| Request::Update { table, key, row })
            .boxed(),
        (0u32..64, 0u64..10_000, row_strategy())
            .prop_map(|(table, key, row)| Request::Insert { table, key, row })
            .boxed(),
        (any::<bool>(), prop::collection::vec(op_strategy(), 0..6))
            .prop_map(|(may_fail, ops)| Request::OneShot { may_fail, ops })
            .boxed(),
        Just(Request::ReplSnapshot).boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(from, term)| Request::ReplSubscribe { from, term })
            .boxed(),
        (any::<u64>(), any::<u64>())
            .prop_map(|(term, lsn)| Request::ReplAck { term, lsn })
            .boxed(),
        Just(Request::CommitToken).boxed(),
        (0u32..64, any::<u64>(), any::<u64>())
            .prop_map(|(table, key, min_lsn)| Request::ReadAt { table, key, min_lsn })
            .boxed(),
        (any::<u64>(), prop::collection::vec(op_strategy(), 0..6))
            .prop_map(|(gtid, ops)| Request::ShardPrepare { gtid, ops })
            .boxed(),
        (any::<u64>(), any::<bool>())
            .prop_map(|(gtid, commit)| Request::ShardDecide { gtid, commit })
            .boxed(),
        any::<u64>().prop_map(|gtid| Request::ShardStatus { gtid }).boxed(),
        Just(Request::ShardInDoubt).boxed(),
        Just(Request::RoutingSnapshot).boxed(),
        (0u32..64, any::<u32>(), 1u32..64)
            .prop_map(|(table, slot, slot_count)| Request::MigFetch { table, slot, slot_count })
            .boxed(),
    ]
    .boxed()
}

/// The rebalancing response frames: routing tables, migration row batches,
/// and wrong-shard refusals.
fn rebal_response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(any::<u32>(), 0..32))
            .prop_map(|(epoch, slots)| Response::Routing { epoch, slots })
            .boxed(),
        prop::collection::vec((any::<u64>(), row_strategy()).boxed(), 0..8)
            .prop_map(|rows| Response::MigRows { rows })
            .boxed(),
        (any::<u64>(), any::<u32>())
            .prop_map(|(epoch, hint)| Response::WrongShard { epoch, hint })
            .boxed(),
    ]
    .boxed()
}

fn outcome_strategy() -> BoxedStrategy<esdb_core::spec_exec::SpecOutcome> {
    use esdb_core::spec_exec::SpecOutcome;
    prop_oneof![
        prop::collection::vec(
            prop_oneof![
                Just(None).boxed(),
                row_strategy().prop_map(Some).boxed(),
            ]
            .boxed(),
            0..5,
        )
        .prop_map(|reads| SpecOutcome::Committed { reads })
        .boxed(),
        Just(SpecOutcome::LogicalFailure).boxed(),
        Just(SpecOutcome::ConflictFailure).boxed(),
    ]
    .boxed()
}

/// The 2PC response frames: votes, decisions, and in-doubt sets.
fn shard_response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        (any::<u64>(), outcome_strategy())
            .prop_map(|(gtid, outcome)| Response::ShardVote { gtid, outcome })
            .boxed(),
        (any::<u64>(), any::<bool>())
            .prop_map(|(gtid, commit)| Response::ShardDecision { gtid, commit })
            .boxed(),
        prop::collection::vec(any::<u64>(), 0..8).prop_map(Response::ShardGtids).boxed(),
    ]
    .boxed()
}

fn name_strategy() -> BoxedStrategy<String> {
    prop::collection::vec((0u8..26).boxed(), 0..12)
        .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
        .boxed()
}

fn catalog_strategy() -> BoxedStrategy<Vec<(u32, String, u32, Vec<u64>)>> {
    prop::collection::vec(
        (0u32..64, name_strategy(), 0u32..8, prop::collection::vec(any::<u64>(), 0..6))
            .prop_map(|(id, name, arity, pages)| (id, name, arity, pages))
            .boxed(),
        0..4,
    )
    .boxed()
}

fn index_catalog_strategy() -> BoxedStrategy<Vec<(u32, u32, String, u32, u8)>> {
    prop::collection::vec(
        (0u32..64, 0u32..4, name_strategy(), 0u32..8, 0u8..2)
            .prop_map(|(table, index, name, col, kind)| (table, index, name, col, kind))
            .boxed(),
        0..4,
    )
    .boxed()
}

/// The replication-only response frames: snapshot streaming, shipped log
/// chunks, and follower-read tokens.
fn repl_response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        (any::<u64>(), catalog_strategy(), index_catalog_strategy())
            .prop_map(|(start_lsn, catalog, indexes)| Response::SnapBegin {
                start_lsn,
                catalog,
                indexes,
            })
            .boxed(),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(page_id, bytes)| Response::SnapPage { page_id, bytes })
            .boxed(),
        any::<u64>().prop_map(|page_count| Response::SnapEnd { page_count }).boxed(),
        (any::<u64>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(term, start, bytes)| Response::LogChunk { term, start, bytes })
            .boxed(),
        any::<u64>().prop_map(|lsn| Response::Token { lsn }).boxed(),
        any::<u64>().prop_map(|applied| Response::Lagging { applied }).boxed(),
        any::<u64>().prop_map(|term| Response::Fenced { term }).boxed(),
        (any::<u64>(), any::<u32>(), any::<u32>())
            .prop_map(|(lsn, acked, needed)| Response::QuorumTimeout { lsn, acked, needed })
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in request_strategy()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (decoded, consumed) = decode_request(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, req);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_valid_frames_report_incomplete(req in request_strategy(), cut in 0usize..10_000) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = cut % buf.len();
        // Any strict prefix of a valid frame is incomplete, never malformed.
        prop_assert_eq!(decode_request(&buf[..cut]).unwrap(), None);
    }

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The decoders are total functions: any byte soup yields Ok or Err,
        // and whatever they decode must consume no more than the input.
        if let Ok(Some((_, used))) = decode_request(&bytes) {
            prop_assert!(used <= bytes.len());
        }
        if let Ok(Some((_, used))) = decode_response(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    #[test]
    fn obs_snapshots_roundtrip(snap in snapshot_strategy()) {
        let mut buf = Vec::new();
        let resp = Response::ObsStats(Box::new(snap));
        encode_response(&resp, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, resp);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn obs_histograms_survive_the_wire_exactly(snap in snapshot_strategy()) {
        // Quantiles read off a decoded snapshot must match the sender's —
        // the monitoring path cannot silently skew percentiles.
        let mut buf = Vec::new();
        encode_response(&Response::ObsStats(Box::new(snap.clone())), &mut buf);
        let (decoded, _) = decode_response(&buf).unwrap().unwrap();
        let Response::ObsStats(got) = decoded else { panic!("wrong variant") };
        for i in 0..BUCKETS {
            prop_assert_eq!(got.txn_latency.buckets[i], snap.txn_latency.buckets[i]);
        }
        prop_assert_eq!(got.txn_latency.p50(), snap.txn_latency.p50());
        prop_assert_eq!(got.txn_latency.p99(), snap.txn_latency.p99());
        prop_assert_eq!(got.breakdown.wall(), snap.breakdown.wall());
    }

    #[test]
    fn foreign_snapshot_versions_decode_to_typed_error(
        snap in snapshot_strategy(),
        version in any::<u32>(),
    ) {
        // The vendored proptest has no prop_assume; dodge the one valid value.
        let version = if version == OBS_SNAPSHOT_VERSION { version.wrapping_add(1) } else { version };
        let mut buf = Vec::new();
        encode_response(&Response::ObsStats(Box::new(snap)), &mut buf);
        // Rewrite the version field (4-byte length prefix, 1-byte tag, then
        // the little-endian version). A peer from the future must yield a
        // typed error — never a panic, never a misread layout.
        buf[5..9].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(decode_response(&buf), Err(FrameError::UnsupportedVersion(version)));
    }

    #[test]
    fn corrupted_tag_errors_cleanly(req in request_strategy(), evil in any::<u8>()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        // Smash the payload tag; decoding must not panic and must consume
        // nothing it should not.
        buf[4] = evil;
        let _ = decode_request(&buf);
    }

    #[test]
    fn repl_responses_roundtrip(resp in repl_response_strategy()) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, resp);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_repl_responses_report_incomplete(
        resp in repl_response_strategy(),
        cut in 0usize..10_000,
    ) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let cut = cut % buf.len();
        // A replica reading a half-arrived snapshot page or log chunk must
        // see "incomplete", never a malformed-frame error or a panic.
        prop_assert_eq!(decode_response(&buf[..cut]).unwrap(), None);
    }

    #[test]
    fn bit_flipped_repl_frames_never_panic(
        resp in repl_response_strategy(),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        // Flip one bit past the length prefix: the decoder must stay total —
        // typed error, incomplete, or a (different) decoded frame, but never
        // a panic and never an over-read.
        let i = 4 + (byte as usize) % (buf.len() - 4).max(1);
        if i < buf.len() {
            buf[i] ^= 1 << bit;
        }
        if let Ok(Some((_, used))) = decode_response(&buf) {
            prop_assert!(used <= buf.len());
        }
    }

    #[test]
    fn shard_responses_roundtrip(resp in shard_response_strategy()) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, resp);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_shard_responses_report_incomplete(
        resp in shard_response_strategy(),
        cut in 0usize..10_000,
    ) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let cut = cut % buf.len();
        // A coordinator reading a half-arrived vote must see "incomplete",
        // never a malformed-frame error — it would abort a healthy txn.
        prop_assert_eq!(decode_response(&buf[..cut]).unwrap(), None);
    }

    #[test]
    fn bit_flipped_shard_frames_never_panic(
        resp in shard_response_strategy(),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        // A corrupted vote or decision must decode to a typed error or a
        // different frame — never a panic, never an over-read.
        let i = 4 + (byte as usize) % (buf.len() - 4).max(1);
        if i < buf.len() {
            buf[i] ^= 1 << bit;
        }
        if let Ok(Some((_, used))) = decode_response(&buf) {
            prop_assert!(used <= buf.len());
        }
    }

    #[test]
    fn rebal_responses_roundtrip(resp in rebal_response_strategy()) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let (decoded, consumed) = decode_response(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(decoded, resp);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn truncated_rebal_responses_report_incomplete(
        resp in rebal_response_strategy(),
        cut in 0usize..10_000,
    ) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let cut = cut % buf.len();
        // A router reading a half-arrived routing table or WrongShard must
        // see "incomplete" — treating it as malformed would drop a healthy
        // connection mid-refresh.
        prop_assert_eq!(decode_response(&buf[..cut]).unwrap(), None);
    }

    #[test]
    fn bit_flipped_rebal_frames_never_panic(
        resp in rebal_response_strategy(),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        // A corrupted routing table must decode to a typed error or a
        // different frame — never a panic, never an over-read.
        let i = 4 + (byte as usize) % (buf.len() - 4).max(1);
        if i < buf.len() {
            buf[i] ^= 1 << bit;
        }
        if let Ok(Some((_, used))) = decode_response(&buf) {
            prop_assert!(used <= buf.len());
        }
    }

    #[test]
    fn bit_flipped_repl_requests_never_panic(
        req in request_strategy(),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let i = 4 + (byte as usize) % (buf.len() - 4).max(1);
        if i < buf.len() {
            buf[i] ^= 1 << bit;
        }
        if let Ok(Some((_, used))) = decode_request(&buf) {
            prop_assert!(used <= buf.len());
        }
    }
}
