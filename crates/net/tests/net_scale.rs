//! Connection-scale soak: the reactor server's claim to fame is holding
//! thousands of sessions on a handful of threads. These tests open a 1000+
//! idle herd (the thread-per-session server would need a thousand stacks),
//! verify the active set's latency doesn't degrade with herd size, and
//! prove graceful drain still flushes pipelined in-flight transactions
//! when the server shuts down under load.
//!
//! `NET_SCALE_CONNS` overrides the herd size (default 1000) so CI smoke
//! runs can shrink it without editing the test.

use esdb_core::{Database, EngineConfig};
use esdb_net::protocol::{decode_response, encode_request, Request, Response};
use esdb_net::{Client, Server, ServerConfig};
use esdb_workload::{TxnSpec, WorkloadOp};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn herd_size() -> usize {
    std::env::var("NET_SCALE_CONNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

fn spec_write(t: u32, key: u64) -> TxnSpec {
    TxnSpec {
        kind: "scale",
        ops: vec![WorkloadOp::Write { table: t, key, row: vec![1] }],
        may_fail: false,
    }
}

/// Runs `n` one-shots and returns the sorted per-op latencies.
fn measure(client: &mut Client, t: u32, key: u64, n: usize) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let started = Instant::now();
        client.one_shot(&spec_write(t, key)).unwrap();
        samples.push(started.elapsed());
    }
    samples.sort();
    samples
}

fn p99(sorted: &[Duration]) -> Duration {
    sorted[(sorted.len() * 99) / 100 - 1]
}

/// Tentpole scale proof: a 1000+ connection idle herd coexists with an
/// active session whose p99 stays in the same regime as an empty server.
/// Every herd member still answers a ping afterwards — the sessions are
/// live, not merely accepted-and-leaked.
#[test]
fn idle_herd_leaves_active_latency_unaffected() {
    let herd = herd_size();
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 1).unwrap();
    db.execute(|txn| txn.insert(t, 1, &[0])).unwrap();
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions: herd + 64, ..ServerConfig::default() },
    )
    .unwrap();

    // Baseline on an otherwise empty server.
    let mut active = Client::connect(server.local_addr()).unwrap();
    measure(&mut active, t, 1, 50); // warm-up: page in, prime the WAL
    let base = measure(&mut active, t, 1, 300);
    let base_p99 = p99(&base);

    // Open the herd. Connect failures are real failures: admission has
    // headroom, and the reactor design exists precisely so this works.
    let mut idles = Vec::with_capacity(herd);
    for i in 0..herd {
        match Client::connect(server.local_addr()) {
            Ok(c) => idles.push(c),
            Err(e) => panic!("connection {i}/{herd} refused: {e}"),
        }
    }
    let stats = active.stats().unwrap();
    assert!(
        stats.sessions_active as usize > herd,
        "herd not registered: {} active for {} opened",
        stats.sessions_active,
        herd
    );

    // The active session must not feel the herd. The bound is deliberately
    // loose (shared CI boxes, single-vCPU hosts) but far below what any
    // per-connection scan, wakeup storm, or herd-sized lock would cost.
    let busy = measure(&mut active, t, 1, 300);
    let busy_p99 = p99(&busy);
    let ceiling = (base_p99 * 10).max(Duration::from_millis(50));
    assert!(
        busy_p99 <= ceiling,
        "active p99 degraded under the idle herd: {base_p99:?} empty vs {busy_p99:?} \
         with {herd} idles (ceiling {ceiling:?})"
    );

    // Spot-check liveness across the herd, including both ends.
    for idx in [0, herd / 2, herd - 1] {
        idles[idx].ping().unwrap_or_else(|e| panic!("herd member {idx} dead: {e}"));
    }

    // Dropping the herd releases the sessions (bounded wait: reactors only
    // notice hangups on their next poll tick).
    drop(idles);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now_active = active.stats().unwrap().sessions_active;
        if (now_active as usize) < 16 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "herd sessions never released: {now_active} still active"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

/// Graceful drain under pipelining: a client writes a burst of one-shot
/// frames and the server is told to shut down before reading a single
/// response. Every in-flight transaction must be executed, made durable,
/// and answered — shutdown drains, it does not guillotine.
#[test]
fn graceful_drain_flushes_in_flight_pipelined_txns() {
    const BURST: usize = 50;
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 1).unwrap();
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut greeting = [0u8; 5];
    raw.read_exact(&mut greeting).unwrap(); // Hello
    let mut wire = Vec::new();
    for key in 0..BURST as u64 {
        encode_request(
            &Request::OneShot {
                may_fail: false,
                ops: vec![WorkloadOp::Insert { table: t, key, row: vec![9] }],
            },
            &mut wire,
        );
    }
    raw.write_all(&wire).unwrap();
    raw.flush().unwrap();
    // Give loopback delivery a beat so the burst is in the server's socket
    // buffer (drain ingests what has *arrived*, it cannot read the future).
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    // After shutdown returns, all 50 outcomes are on the wire.
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut replies = Vec::new();
    raw.read_to_end(&mut replies).unwrap();
    let mut outcomes = 0;
    while let Some((resp, used)) = decode_response(&replies).unwrap() {
        match resp {
            Response::Outcome(o) if o.is_committed() => outcomes += 1,
            other => panic!("expected a committed outcome, got {other:?}"),
        }
        replies.drain(..used);
    }
    assert_eq!(outcomes, BURST, "drain must answer every pipelined txn");

    // And the commits survived: shutdown forced the WAL durable.
    let recovered = db.simulate_crash(false);
    for key in 0..BURST as u64 {
        assert_eq!(
            recovered.read_committed(t, key).unwrap(),
            vec![9],
            "txn {key} lost across the drain"
        );
    }
}
