//! Wire-level failover behavior: stalled-peer timeouts, semi-sync quorum
//! commit over real sockets, term fencing on the ship handshake, and the
//! dead-feed fast path for follower reads.

use esdb_core::{Database, EngineConfig, QuorumPolicy, ReplGroup};
use esdb_net::protocol::FrameError;
use esdb_net::{Client, NetError, Server, ServerConfig};
use esdb_workload::{TxnSpec, WorkloadOp};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spec_insert(t: u32, key: u64) -> TxnSpec {
    TxnSpec {
        kind: "ins",
        ops: vec![WorkloadOp::Insert { table: t, key, row: vec![1] }],
        may_fail: false,
    }
}

/// Satellite 1, server side: a peer that sends part of a frame and then goes
/// quiet must be cut loose with a typed timeout error, not hold its session
/// thread forever — while a merely *idle* peer (no partial frame) keeps its
/// session indefinitely.
#[test]
fn stalled_peer_is_closed_with_typed_timeout() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            stall_timeout: Some(Duration::from_millis(100)),
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // An idle (but complete-frame-silent) client first: it must survive far
    // past the stall budget, because it owes the server nothing.
    let mut idle = Client::connect(server.local_addr()).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    idle.ping().expect("idle sessions are not stalled sessions");

    // Now a hung peer: half a frame, then silence.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let mut greeting = [0u8; 5];
    raw.read_exact(&mut greeting).unwrap(); // Hello frame
    raw.write_all(&[9, 0, 0]).unwrap(); // 3 bytes of a 4-byte length prefix
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("server closes after the error frame");
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.contains(&FrameError::Timeout.to_string()),
        "expected a typed timeout error frame, got {reply:?}"
    );
    server.shutdown();
}

/// Satellite 1, client side: an armed op timeout turns a stalled server into
/// the typed `Protocol(Timeout)` error instead of blocking forever.
#[test]
fn client_op_timeout_surfaces_typed() {
    // A fake "server" that greets and then never answers anything.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut hello = Vec::new();
        esdb_net::protocol::encode_response(&esdb_net::protocol::Response::Hello, &mut hello);
        sock.write_all(&hello).unwrap();
        std::thread::sleep(Duration::from_secs(2)); // hold the socket open, say nothing
    });
    let mut client = Client::connect(addr).unwrap();
    client.set_op_timeout(Some(Duration::from_millis(80))).unwrap();
    let started = Instant::now();
    match client.ping() {
        Err(NetError::Protocol(FrameError::Timeout)) => {}
        other => panic!("expected typed timeout, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(1), "must not block to the bitter end");
    stall.join().unwrap();
}

/// Tentpole, quorum over the wire: with no follower acks the commit path
/// degrades to a typed QuorumTimeout (the txn *is* durable locally); once a
/// subscriber acks durability past the commit LSN, commits succeed again.
#[test]
fn semisync_commit_degrades_typed_and_recovers_on_ack() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 1).unwrap();
    let group = Arc::new(ReplGroup::new(1));
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            repl_group: Some(Arc::clone(&group)),
            quorum: Some(QuorumPolicy { k: 1, timeout: Duration::from_millis(60) }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // No followers at all: bounded wait, typed degradation, never a hang.
    let started = Instant::now();
    match client.one_shot(&spec_insert(t, 1)) {
        Err(NetError::QuorumTimeout { acked, needed, .. }) => {
            assert_eq!((acked, needed), (0, 1));
        }
        other => panic!("expected QuorumTimeout, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(2));
    // The commit is durable locally despite the degraded ack.
    assert_eq!(db.read_committed(t, 1).unwrap(), vec![1]);

    // A follower subscribes and acks everything the primary could ever ship.
    let mut follower = Client::connect(server.local_addr()).unwrap();
    follower.subscribe(db.wal().durable_lsn(), 1).unwrap();
    follower.send_ack(1, u64::MAX / 2).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while group.acked(db.wal().durable_lsn()) == 0 {
        assert!(Instant::now() < deadline, "ack never reached the group");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.one_shot(&spec_insert(t, 2)).expect("quorum satisfied by the ack");
    server.shutdown();
}

/// Tentpole, fencing on the wire: a subscriber announcing a higher term
/// fences the primary — the handshake answers `Fenced` instead of shipping,
/// and subsequent quorum commits fail typed with the higher term.
#[test]
fn higher_term_subscriber_fences_the_primary() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 1).unwrap();
    let group = Arc::new(ReplGroup::new(1));
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            repl_group: Some(Arc::clone(&group)),
            quorum: Some(QuorumPolicy { k: 1, timeout: Duration::from_millis(60) }),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A subscriber that has seen term 3 (a promotion happened elsewhere).
    let mut messenger = Client::connect(server.local_addr()).unwrap();
    messenger.subscribe(0, 3).unwrap();
    match messenger.next_chunk() {
        Err(NetError::Fenced { term }) => assert_eq!(term, 3),
        other => panic!("a fenced primary must refuse to ship, got {other:?}"),
    }
    assert_eq!(group.fenced_by(), Some(3));

    // The write path is fenced too: typed, carrying the superseding term.
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.one_shot(&spec_insert(t, 9)) {
        Err(NetError::Fenced { term }) => assert_eq!(term, 3),
        other => panic!("expected Fenced, got {other:?}"),
    }

    // And a fresh subscriber at any term is refused as well.
    let mut late = Client::connect(server.local_addr()).unwrap();
    late.subscribe(0, 1).unwrap();
    assert!(matches!(late.next_chunk(), Err(NetError::Fenced { term: 3 })));
    server.shutdown();
}

/// Acks only belong on a subscribe feed; on a request session they are a
/// protocol error, answered typed without killing the server.
#[test]
fn ack_outside_a_feed_is_rejected() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.send_ack(1, 100).unwrap();
    match client.ping() {
        Err(NetError::Server(msg)) => assert!(msg.contains("subscribe"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    server.shutdown();
}

/// Satellite 2: a follower whose feed thread is dead answers `Lagging`
/// immediately — the frontier will never advance, so burning the full
/// bounded wait is pure added latency.
#[test]
fn dead_feed_answers_lagging_immediately() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 1).unwrap();
    db.execute(|txn| txn.insert(t, 1, &[7])).unwrap();
    let watermark = Arc::new(AtomicU64::new(50));
    let feed_live = Arc::new(AtomicBool::new(true));
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            applied_watermark: Some(Arc::clone(&watermark)),
            feed_live: Some(Arc::clone(&feed_live)),
            read_at_wait: Duration::from_secs(3),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Feed alive: a satisfiable token is served, an unsatisfiable one waits.
    assert_eq!(client.read_at(t, 1, 40).unwrap(), Ok(vec![7]));

    // Feed dies. An unsatisfiable token must come back Lagging at once,
    // carrying the stuck frontier, instead of burning the 3s budget.
    feed_live.store(false, std::sync::atomic::Ordering::SeqCst);
    let started = Instant::now();
    let lag = client
        .read_at(t, 1, 1_000_000)
        .unwrap()
        .expect_err("dead feed must report Lagging");
    assert_eq!(lag, 50);
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "dead-feed Lagging took {:?}, should be immediate",
        started.elapsed()
    );

    // Already-satisfied tokens still read fine on a dead feed.
    assert_eq!(client.read_at(t, 1, 40).unwrap(), Ok(vec![7]));
    server.shutdown();
}

/// Satellite: the reactor refactor's nastiest hazard, pinned. With exactly
/// ONE reactor the committing session and the follower feed that must ack
/// it share a thread. A blocking quorum wait inside the tick would
/// deadlock — the thread waiting for the ack is the only thread that can
/// read it — and surface here as a QuorumTimeout. The parked AwaitQuorum
/// phase keeps the tick turning, so the commit succeeds.
#[test]
fn single_reactor_commit_is_acked_by_a_feed_on_the_same_reactor() {
    let db = Arc::new(Database::open(EngineConfig::conventional_baseline()));
    let t = db.create_table("kv", 1).unwrap();
    let group = Arc::new(ReplGroup::new(1));
    let server = Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            reactors: 1,
            repl_group: Some(Arc::clone(&group)),
            // Generous timeout: on a correct server the ack arrives in
            // milliseconds; on a deadlocked one we'd burn all of it and
            // fail typed below.
            quorum: Some(QuorumPolicy { k: 1, timeout: Duration::from_secs(5) }),
            poll_interval: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // The follower lives on the same (only) reactor and acks every chunk.
    let stop = Arc::new(AtomicBool::new(false));
    let feed_stop = Arc::clone(&stop);
    let addr = server.local_addr();
    let start_from = db.wal().durable_lsn();
    let feed = std::thread::spawn(move || {
        let mut follower = Client::connect(addr).unwrap();
        follower.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        follower.subscribe(start_from, 1).unwrap();
        while !feed_stop.load(std::sync::atomic::Ordering::SeqCst) {
            match follower.try_next_chunk() {
                Ok(Some((_term, start, bytes))) => {
                    follower.send_ack(1, start + bytes.len() as u64).unwrap();
                }
                Ok(None) => {}
                Err(e) => panic!("feed died: {e:?}"),
            }
        }
    });

    let mut client = Client::connect(server.local_addr()).unwrap();
    let started = Instant::now();
    for key in 0..5 {
        client.one_shot(&spec_insert(t, key)).unwrap_or_else(|e| {
            panic!("semi-sync commit on a single reactor must succeed, got {e:?}")
        });
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "commits took {:?} — the reactor was not draining acks while parked",
        started.elapsed()
    );

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    feed.join().unwrap();
    server.shutdown();
}
