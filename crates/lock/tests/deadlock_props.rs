//! Property tests for the waits-for graph: random operation sequences are
//! replayed against a naive reference model (transitive-closure reachability
//! instead of the production DFS), and every observable — the cycle verdict,
//! the rolled-back state, the waiting count — must agree. Transaction ids
//! are drawn from a tiny domain so cycles and re-blocks are common.

use esdb_lock::deadlock::WaitsForGraph;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Naive model of the waits-for graph: same interface contract, different
/// algorithm (iterate-to-fixpoint closure rather than an explicit DFS).
#[derive(Default)]
struct ModelGraph {
    edges: BTreeMap<u64, BTreeSet<u64>>,
}

impl ModelGraph {
    /// Mirrors `WaitsForGraph::block_or_detect`: edges accumulate onto any
    /// existing entry, self-edges are dropped, and on a detected cycle the
    /// waiter's whole entry (old edges included) is rolled back.
    fn block_or_detect(&mut self, waiter: u64, blockers: &[u64]) -> bool {
        let entry = self.edges.entry(waiter).or_default();
        for &b in blockers {
            if b != waiter {
                entry.insert(b);
            }
        }
        if self.closure_reaches(waiter, waiter) {
            self.edges.remove(&waiter);
            return true;
        }
        false
    }

    fn clear(&mut self, waiter: u64) {
        self.edges.remove(&waiter);
    }

    fn waiting_count(&self) -> usize {
        self.edges.len()
    }

    /// Reachability by iterating the reachable set to a fixpoint.
    fn closure_reaches(&self, from: u64, target: u64) -> bool {
        let mut reach: BTreeSet<u64> = self.edges.get(&from).cloned().unwrap_or_default();
        loop {
            let mut grew = false;
            for n in reach.clone() {
                if let Some(next) = self.edges.get(&n) {
                    for &m in next {
                        grew |= reach.insert(m);
                    }
                }
            }
            if !grew {
                break;
            }
        }
        reach.contains(&target)
    }

    /// The whole graph is acyclic (no node reaches itself).
    fn acyclic(&self) -> bool {
        self.edges.keys().all(|&n| !self.closure_reaches(n, n))
    }
}

/// One operation against both graphs.
#[derive(Debug, Clone)]
enum Op {
    Block { waiter: u64, blockers: Vec<u64> },
    Clear { waiter: u64 },
}

fn ops() -> BoxedStrategy<Vec<Op>> {
    // Tiny id domain (0..6) so waits collide and cycles actually form.
    let op = prop_oneof![
        (0u64..6, prop::collection::vec(0u64..6, 1..4))
            .prop_map(|(waiter, blockers)| Op::Block { waiter, blockers }),
        (0u64..6).prop_map(|waiter| Op::Clear { waiter }),
    ];
    prop::collection::vec(op, 1..40).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every verdict and every waiting count agrees with the reference
    /// model across arbitrary operation sequences.
    #[test]
    fn agrees_with_reference_model(ops in ops()) {
        let real = WaitsForGraph::new();
        let mut model = ModelGraph::default();
        for op in &ops {
            match op {
                Op::Block { waiter, blockers } => {
                    let got = real.block_or_detect(*waiter, blockers);
                    let want = model.block_or_detect(*waiter, blockers);
                    prop_assert_eq!(got, want, "verdict diverged on {:?}", op);
                }
                Op::Clear { waiter } => {
                    real.clear(*waiter);
                    model.clear(*waiter);
                }
            }
            prop_assert_eq!(real.waiting_count(), model.waiting_count());
        }
    }

    /// The victim-rollback contract keeps the graph acyclic at all times:
    /// any accepted wait leaves no cycle (checked on the model, which the
    /// first property proves equivalent to the real graph).
    #[test]
    fn accepted_waits_never_leave_a_cycle(ops in ops()) {
        let mut model = ModelGraph::default();
        for op in &ops {
            match op {
                Op::Block { waiter, blockers } => {
                    model.block_or_detect(*waiter, blockers);
                }
                Op::Clear { waiter } => model.clear(*waiter),
            }
            prop_assert!(model.acyclic(), "cycle survived after {:?}", op);
        }
    }

    /// A detected cycle rolls back *all* of the waiter's edges, including
    /// ones accumulated by earlier successful blocks.
    #[test]
    fn victim_rollback_is_complete(extra in 0u64..6) {
        let g = WaitsForGraph::new();
        // 1 waits on `extra` (self-edges filtered), then 1→2→1 closes a
        // cycle: 1 is the victim and must vanish from the graph entirely.
        prop_assert!(!g.block_or_detect(1, &[extra]));
        let cycle = if extra == 2 {
            true // 1→2 already present; 2→1 closes it with 2 as victim
        } else {
            prop_assert!(!g.block_or_detect(2, &[1]));
            g.block_or_detect(1, &[2])
        };
        prop_assert!(cycle);
        // The victim's entry is gone: re-adding the same edges succeeds
        // only because the other direction still stands alone.
        prop_assert_eq!(g.waiting_count(), 1);
    }
}
