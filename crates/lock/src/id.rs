//! Hierarchical lock identifiers: database → table → row.

/// What a lock protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockId {
    /// The whole database.
    Database,
    /// One table.
    Table(u32),
    /// One row (table, primary key).
    Row(u32, u64),
}

impl LockId {
    /// The parent granule, if any.
    pub fn parent(self) -> Option<LockId> {
        match self {
            LockId::Database => None,
            LockId::Table(_) => Some(LockId::Database),
            LockId::Row(t, _) => Some(LockId::Table(t)),
        }
    }

    /// Path from the root down to (and including) this granule.
    pub fn path(self) -> Vec<LockId> {
        let mut path = vec![self];
        let mut cur = self;
        while let Some(p) = cur.parent() {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Stable hash used for lock-table partitioning.
    pub fn partition_hash(self) -> u64 {
        let v = match self {
            LockId::Database => 0u64,
            LockId::Table(t) => 1 << 56 | t as u64,
            LockId::Row(t, k) => {
                (2u64 << 56) ^ ((t as u64) << 40) ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
        };
        v.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
    }
}

impl std::fmt::Display for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockId::Database => write!(f, "db"),
            LockId::Table(t) => write!(f, "table:{t}"),
            LockId::Row(t, k) => write!(f, "row:{t}:{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_chain() {
        let row = LockId::Row(3, 42);
        assert_eq!(row.parent(), Some(LockId::Table(3)));
        assert_eq!(LockId::Table(3).parent(), Some(LockId::Database));
        assert_eq!(LockId::Database.parent(), None);
    }

    #[test]
    fn path_is_root_first() {
        assert_eq!(
            LockId::Row(1, 2).path(),
            vec![LockId::Database, LockId::Table(1), LockId::Row(1, 2)]
        );
        assert_eq!(LockId::Database.path(), vec![LockId::Database]);
    }

    #[test]
    fn partition_hash_spreads_rows() {
        use std::collections::HashSet;
        let buckets: HashSet<u64> = (0..1_000u64)
            .map(|k| LockId::Row(1, k).partition_hash() % 16)
            .collect();
        assert!(buckets.len() >= 12, "rows should spread over partitions");
    }
}
