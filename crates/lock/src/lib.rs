//! # esdb-lock — centralized hierarchical lock manager
//!
//! The keynote identifies "by-definition centralized operations, such as
//! locking" as the obstacle to converting concurrency into parallelism. This
//! crate is that centralized operation, built the way Shore (and System R
//! before it) built it:
//!
//! * Multi-granularity modes **IS / IX / S / SIX / X** over a
//!   database → table → row hierarchy ([`mode`], [`id`]).
//! * A hash **lock table** with per-partition latches, FIFO queueing, in-place
//!   upgrades, and condition-variable waiting ([`manager`]).
//! * **Deadlock detection** by cycle search in a waits-for graph at block
//!   time, with a timeout backstop ([`deadlock`]).
//!
//! The partition count is configurable precisely so the benchmarks can show
//! the keynote's point: even with a perfectly partitioned lock *table*, the
//! logical contention of hot locks and the cost of queue maintenance make the
//! centralized manager the scalability ceiling — which is what
//! `esdb-dora` then removes by design.

pub mod deadlock;
pub mod id;
pub mod manager;
pub mod mode;

pub use id::LockId;
pub use manager::{LockError, LockManager, LockStatsSnapshot};
pub use mode::LockMode;

/// Transaction identifier used by the lock manager.
pub type TxnId = u64;
