//! Waits-for graph and cycle detection.
//!
//! Every blocked request registers edges from the waiter to the transactions
//! it waits behind (holders and earlier incompatible waiters). Before
//! sleeping, the requester runs a DFS from itself; if it can reach itself the
//! wait would close a cycle and the requester is chosen as the victim —
//! cheap, immediate, and biased against the newcomer, which matches what
//! Shore-style engines ship.

use crate::TxnId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// A concurrent waits-for graph.
#[derive(Debug, Default)]
pub struct WaitsForGraph {
    edges: Mutex<HashMap<TxnId, HashSet<TxnId>>>,
}

impl WaitsForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds edges `waiter → blocker` for every blocker. Returns `true` if the
    /// resulting graph would contain a cycle through `waiter` — in which case
    /// the edges are *not* kept and the caller must abort the wait.
    pub fn block_or_detect(&self, waiter: TxnId, blockers: &[TxnId]) -> bool {
        let mut edges = self.edges.lock();
        let entry = edges.entry(waiter).or_default();
        for &b in blockers {
            if b != waiter {
                entry.insert(b);
            }
        }
        if Self::reaches(&edges, waiter, waiter) {
            edges.remove(&waiter);
            return true;
        }
        false
    }

    /// Removes every outgoing edge of `waiter` (wait over, granted or aborted).
    pub fn clear(&self, waiter: TxnId) {
        self.edges.lock().remove(&waiter);
    }

    /// DFS: can `from`'s successors reach `target`?
    fn reaches(edges: &HashMap<TxnId, HashSet<TxnId>>, from: TxnId, target: TxnId) -> bool {
        let mut stack: Vec<TxnId> = edges
            .get(&from)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen: HashSet<TxnId> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == target {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Number of transactions currently waiting (diagnostics).
    pub fn waiting_count(&self) -> usize {
        self.edges.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_on_simple_chain() {
        let g = WaitsForGraph::new();
        assert!(!g.block_or_detect(1, &[2]));
        assert!(!g.block_or_detect(2, &[3]));
        assert_eq!(g.waiting_count(), 2);
    }

    #[test]
    fn two_txn_cycle_detected() {
        let g = WaitsForGraph::new();
        assert!(!g.block_or_detect(1, &[2]));
        assert!(g.block_or_detect(2, &[1]), "2→1→2 must be a cycle");
        // The victim's edges were rolled back.
        assert_eq!(g.waiting_count(), 1);
    }

    #[test]
    fn three_txn_cycle_detected() {
        let g = WaitsForGraph::new();
        assert!(!g.block_or_detect(1, &[2]));
        assert!(!g.block_or_detect(2, &[3]));
        assert!(g.block_or_detect(3, &[1]));
    }

    #[test]
    fn clear_breaks_cycles() {
        let g = WaitsForGraph::new();
        assert!(!g.block_or_detect(1, &[2]));
        g.clear(1);
        assert!(!g.block_or_detect(2, &[1]), "1 no longer waits");
    }

    #[test]
    fn self_edges_ignored() {
        let g = WaitsForGraph::new();
        assert!(!g.block_or_detect(1, &[1]), "waiting behind self is filtered");
    }
}
